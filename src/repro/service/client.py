"""Client SDKs for the simulation service: blocking and asyncio.

Both clients speak the same five-route JSON API and raise
:class:`ClientError` (a :class:`repro.errors.ServiceError`) on HTTP-level
failures, carrying the status code and the server's ``error`` message.
The blocking client rides on :mod:`http.client`; the async client writes
HTTP/1.1 directly over asyncio streams, mirroring the server — neither
pulls in anything outside the stdlib.

Typical use::

    client = ServiceClient("http://127.0.0.1:8787")
    job = client.submit("jacobi", paradigm="gps", gpus=4)
    payload = client.wait(job["id"], timeout=120)
    print(payload["result"]["total_time"])

The default URL comes from ``REPRO_SERVICE_URL`` (falling back to
``http://127.0.0.1:8787``), so CLI verbs and scripts against a local
service need no configuration at all.

Observability: :meth:`ServiceClient.submit` mints a W3C trace context and
sends it as a ``traceparent`` header (``trace=False`` opts out), so the
server's spans parent under the client's trace; the submit payload echoes
the minted ids as ``client_trace``. :meth:`ServiceClient.events` follows a
job's lifecycle event stream, :meth:`ServiceClient.series` fetches bucketed
metric time-series, :meth:`ServiceClient.trace` downloads the distributed
trace (optionally as Perfetto/Chrome-trace JSON), and
:meth:`ServiceClient.slo` reads the live SLO evaluation off ``/healthz``.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import time
import urllib.parse
from typing import Iterator

from ..errors import ServiceError
from ..obs.distributed import TraceContext

#: Default service URL when neither an argument nor the env knob is given.
DEFAULT_URL = "http://127.0.0.1:8787"


def service_url(url: "str | None" = None) -> str:
    """Resolve the service URL: argument, ``REPRO_SERVICE_URL``, default."""
    return url or os.environ.get("REPRO_SERVICE_URL") or DEFAULT_URL


class ClientError(ServiceError):
    """An HTTP request to the service failed.

    ``status`` is the HTTP status code, or ``None`` for transport-level
    failures (connection refused, timeout).
    """

    def __init__(
        self,
        message: str,
        status: "int | None" = None,
        retry_after_s: "float | None" = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        #: Server-suggested backoff for 429s (token-bucket rate limiting).
        self.retry_after_s = retry_after_s


class JobFailed(ServiceError):
    """The submitted job exhausted its retries and failed server-side."""


def _job_body(
    workload: str,
    paradigm: str,
    gpus: int,
    link: str,
    scale: float,
    iterations: int,
    priority: int,
) -> dict:
    return {
        "workload": workload,
        "paradigm": paradigm,
        "gpus": gpus,
        "link": link,
        "scale": scale,
        "iterations": iterations,
        "priority": priority,
    }


def _check(status: int, payload: dict, accept: "tuple[int, ...]") -> dict:
    if status not in accept:
        message = retry_after = None
        if isinstance(payload, dict):
            message = payload.get("error")
            retry_after = payload.get("retry_after_s")
        raise ClientError(
            message or f"service returned HTTP {status}",
            status=status,
            retry_after_s=retry_after,
        )
    return payload


class ServiceClient:
    """Blocking SDK over :mod:`http.client`.

    ``client`` is this caller's identity for the server's weighted fair
    queueing and per-client rate limiting; it travels as the
    ``x-repro-client`` header on submissions.
    """

    def __init__(
        self,
        url: "str | None" = None,
        timeout: float = 30.0,
        client: "str | None" = None,
    ) -> None:
        parsed = urllib.parse.urlsplit(service_url(url))
        if parsed.scheme != "http" or not parsed.hostname:
            raise ClientError(f"unsupported service URL: {service_url(url)!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self.client = client

    def _request(
        self,
        method: str,
        path: str,
        body: "dict | None" = None,
        headers: "dict | None" = None,
    ) -> "tuple[int, dict]":
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            send_headers = {"Content-Type": "application/json"} if payload else {}
            send_headers.update(headers or {})
            conn.request(method, path, body=payload, headers=send_headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw) if raw else {}
            except ValueError:
                decoded = {}
            return response.status, decoded
        except (ConnectionError, TimeoutError, OSError) as exc:
            raise ClientError(
                f"cannot reach service at http://{self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            conn.close()

    def healthz(self) -> dict:
        """Liveness probe payload (includes the live ``slo`` evaluation)."""
        return _check(*self._request("GET", "/healthz"), accept=(200,))

    def metrics(self) -> dict:
        """The service's counter-registry snapshot."""
        return _check(*self._request("GET", "/metrics"), accept=(200,))["metrics"]

    def metrics_text(self) -> str:
        """The Prometheus text-exposition scrape (``?format=prometheus``)."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", "/metrics?format=prometheus")
            response = conn.getresponse()
            raw = response.read()
            if response.status != 200:
                raise ClientError(
                    f"service returned HTTP {response.status}", status=response.status
                )
            return raw.decode("utf-8")
        except (ConnectionError, TimeoutError, OSError) as exc:
            raise ClientError(
                f"cannot reach service at http://{self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            conn.close()

    def submit(
        self,
        workload: str,
        paradigm: str = "gps",
        gpus: int = 4,
        link: str = "pcie6",
        scale: float = 0.5,
        iterations: int = 8,
        priority: int = 0,
        trace: bool = True,
    ) -> dict:
        """Submit one simulation; returns the job status payload.

        With ``trace`` on (default), a fresh W3C trace context is minted
        and propagated via the ``traceparent`` header; its ids are echoed
        back in the returned payload under ``client_trace`` so callers can
        fetch ``GET /traces/{trace_id}`` later.
        """
        body = _job_body(workload, paradigm, gpus, link, scale, iterations, priority)
        headers = {}
        if self.client:
            headers["x-repro-client"] = self.client
        context = None
        if trace:
            context = TraceContext.mint()
            headers["traceparent"] = context.to_traceparent()
        payload = _check(
            *self._request("POST", "/jobs", body, headers=headers), accept=(200, 202)
        )
        if context is not None:
            payload["client_trace"] = {
                "trace_id": context.trace_id,
                "span_id": context.span_id,
            }
        return payload

    def events(self, job_id: str, follow: bool = True) -> "Iterator[dict]":
        """Stream one job's lifecycle events as they happen.

        Yields one dict per event (``{"seq", "t", "event", ...}``). With
        ``follow`` the stream stays open until the job reaches a terminal
        state; ``follow=False`` dumps the log so far and closes.
        """
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            path = f"/jobs/{job_id}/events" + ("" if follow else "?follow=0")
            conn.request("GET", path)
            response = conn.getresponse()
            if response.status != 200:
                raw = response.read()
                try:
                    message = json.loads(raw).get("error")
                except ValueError:
                    message = None
                raise ClientError(
                    message or f"service returned HTTP {response.status}",
                    status=response.status,
                )
            # http.client undoes the chunked transfer encoding; readline
            # yields one JSON event per line as the server flushes them.
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line)
        except (ConnectionError, TimeoutError, OSError) as exc:
            raise ClientError(
                f"cannot reach service at http://{self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            conn.close()

    def series(
        self,
        name: "str | None" = None,
        bucket_s: float = 60.0,
        start: "float | None" = None,
        end: "float | None" = None,
    ) -> dict:
        """Bucketed time-series for ``name`` (or the series catalog)."""
        if name is None:
            return _check(*self._request("GET", "/metrics/series"), accept=(200,))
        params = {"name": name, "bucket": str(bucket_s)}
        if start is not None:
            params["start"] = str(start)
        if end is not None:
            params["end"] = str(end)
        query = urllib.parse.urlencode(params)
        return _check(*self._request("GET", f"/metrics/series?{query}"), accept=(200,))

    def trace(self, trace_id: str, perfetto: bool = False) -> dict:
        """One distributed trace's span closure (optionally Perfetto JSON)."""
        path = f"/traces/{trace_id}" + ("?format=perfetto" if perfetto else "")
        return _check(*self._request("GET", path), accept=(200,))

    def slo(self) -> "list[dict]":
        """The live SLO evaluation from ``/healthz``."""
        return self.healthz().get("slo", [])

    def status(self, job_id: str) -> dict:
        """Job status payload for one id."""
        return _check(*self._request("GET", f"/jobs/{job_id}"), accept=(200,))

    def result(self, job_id: str) -> "dict | None":
        """Full result payload once done, ``None`` while pending.

        Raises :class:`JobFailed` once the job has failed server-side.
        """
        status, payload = self._request("GET", f"/results/{job_id}")
        if status == 202:
            return None
        if status == 500:
            raise JobFailed(payload.get("error") or f"job {job_id} failed")
        return _check(status, payload, accept=(200,))

    def wait(self, job_id: str, timeout: float = 300.0, poll_s: float = 0.05) -> dict:
        """Poll until the job completes; returns the result payload."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.result(job_id)
            if payload is not None:
                return payload
            if time.monotonic() >= deadline:
                raise ClientError(f"timed out after {timeout:.0f}s waiting for {job_id}")
            time.sleep(poll_s)

    def run(self, workload: str, timeout: float = 300.0, **kwargs) -> dict:
        """Submit + wait in one call; returns the result payload."""
        job = self.submit(workload, **kwargs)
        return self.wait(job["id"], timeout=timeout)

    def drain(self, shard: int) -> dict:
        """Quiesce one scheduler shard (``POST /drain?shard=i``)."""
        return _check(*self._request("POST", f"/drain?shard={shard}"), accept=(202,))

    def shutdown(self, drain: bool = True) -> dict:
        """Ask the service to shut down (draining by default)."""
        return _check(
            *self._request("POST", "/shutdown", {"drain": drain}), accept=(202,)
        )


class AsyncServiceClient:
    """Asyncio SDK speaking HTTP/1.1 over raw streams (mirrors the server)."""

    def __init__(
        self,
        url: "str | None" = None,
        timeout: float = 30.0,
        client: "str | None" = None,
    ) -> None:
        parsed = urllib.parse.urlsplit(service_url(url))
        if parsed.scheme != "http" or not parsed.hostname:
            raise ClientError(f"unsupported service URL: {service_url(url)!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self.client = client

    async def _request(
        self,
        method: str,
        path: str,
        body: "dict | None" = None,
        headers: "dict | None" = None,
    ) -> "tuple[int, dict]":
        payload = json.dumps(body).encode("utf-8") if body is not None else b""
        extra = "".join(f"{name}: {value}\r\n" for name, value in (headers or {}).items())
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extra}"
            "Connection: close\r\n"
            "\r\n"
        )
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.timeout
            )
        except (ConnectionError, TimeoutError, OSError) as exc:
            raise ClientError(
                f"cannot reach service at http://{self.host}:{self.port}: {exc}"
            ) from exc
        try:
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), self.timeout)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        header, _, body_bytes = raw.partition(b"\r\n\r\n")
        try:
            status = int(header.split(None, 2)[1])
        except (IndexError, ValueError) as exc:
            raise ClientError("malformed response from service") from exc
        try:
            decoded = json.loads(body_bytes) if body_bytes else {}
        except ValueError:
            decoded = {}
        return status, decoded

    async def healthz(self) -> dict:
        """Liveness probe payload."""
        return _check(*await self._request("GET", "/healthz"), accept=(200,))

    async def metrics(self) -> dict:
        """The service's counter-registry snapshot."""
        return _check(*await self._request("GET", "/metrics"), accept=(200,))["metrics"]

    async def submit(
        self,
        workload: str,
        paradigm: str = "gps",
        gpus: int = 4,
        link: str = "pcie6",
        scale: float = 0.5,
        iterations: int = 8,
        priority: int = 0,
        trace: bool = True,
    ) -> dict:
        """Submit one simulation; returns the job status payload."""
        body = _job_body(workload, paradigm, gpus, link, scale, iterations, priority)
        headers = {}
        if self.client:
            headers["x-repro-client"] = self.client
        context = None
        if trace:
            context = TraceContext.mint()
            headers["traceparent"] = context.to_traceparent()
        payload = _check(
            *await self._request("POST", "/jobs", body, headers=headers),
            accept=(200, 202),
        )
        if context is not None:
            payload["client_trace"] = {
                "trace_id": context.trace_id,
                "span_id": context.span_id,
            }
        return payload

    async def series(self, name: "str | None" = None, bucket_s: float = 60.0) -> dict:
        """Bucketed time-series for ``name`` (or the series catalog)."""
        if name is None:
            return _check(*await self._request("GET", "/metrics/series"), accept=(200,))
        query = urllib.parse.urlencode({"name": name, "bucket": str(bucket_s)})
        return _check(
            *await self._request("GET", f"/metrics/series?{query}"), accept=(200,)
        )

    async def trace(self, trace_id: str, perfetto: bool = False) -> dict:
        """One distributed trace's span closure (optionally Perfetto JSON)."""
        path = f"/traces/{trace_id}" + ("?format=perfetto" if perfetto else "")
        return _check(*await self._request("GET", path), accept=(200,))

    async def slo(self) -> "list[dict]":
        """The live SLO evaluation from ``/healthz``."""
        return (await self.healthz()).get("slo", [])

    async def status(self, job_id: str) -> dict:
        """Job status payload for one id."""
        return _check(*await self._request("GET", f"/jobs/{job_id}"), accept=(200,))

    async def result(self, job_id: str) -> "dict | None":
        """Full result payload once done, ``None`` while pending."""
        status, payload = await self._request("GET", f"/results/{job_id}")
        if status == 202:
            return None
        if status == 500:
            raise JobFailed(payload.get("error") or f"job {job_id} failed")
        return _check(status, payload, accept=(200,))

    async def wait(self, job_id: str, timeout: float = 300.0, poll_s: float = 0.05) -> dict:
        """Poll until the job completes; returns the result payload."""
        deadline = time.monotonic() + timeout
        while True:
            payload = await self.result(job_id)
            if payload is not None:
                return payload
            if time.monotonic() >= deadline:
                raise ClientError(f"timed out after {timeout:.0f}s waiting for {job_id}")
            await asyncio.sleep(poll_s)

    async def run(self, workload: str, timeout: float = 300.0, **kwargs) -> dict:
        """Submit + wait in one call; returns the result payload."""
        job = await self.submit(workload, **kwargs)
        return await self.wait(job["id"], timeout=timeout)

    async def drain(self, shard: int) -> dict:
        """Quiesce one scheduler shard (``POST /drain?shard=i``)."""
        return _check(
            *await self._request("POST", f"/drain?shard={shard}"), accept=(202,)
        )

    async def shutdown(self, drain: bool = True) -> dict:
        """Ask the service to shut down (draining by default)."""
        return _check(
            *await self._request("POST", "/shutdown", {"drain": drain}), accept=(202,)
        )
