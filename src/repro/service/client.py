"""Client SDKs for the simulation service: blocking and asyncio.

Both clients speak the same five-route JSON API and raise
:class:`ClientError` (a :class:`repro.errors.ServiceError`) on HTTP-level
failures, carrying the status code and the server's ``error`` message.
The blocking client rides on :mod:`http.client`; the async client writes
HTTP/1.1 directly over asyncio streams, mirroring the server — neither
pulls in anything outside the stdlib.

Typical use::

    client = ServiceClient("http://127.0.0.1:8787")
    job = client.submit("jacobi", paradigm="gps", gpus=4)
    payload = client.wait(job["id"], timeout=120)
    print(payload["result"]["total_time"])

The default URL comes from ``REPRO_SERVICE_URL`` (falling back to
``http://127.0.0.1:8787``), so CLI verbs and scripts against a local
service need no configuration at all.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import time
import urllib.parse

from ..errors import ServiceError

#: Default service URL when neither an argument nor the env knob is given.
DEFAULT_URL = "http://127.0.0.1:8787"


def service_url(url: "str | None" = None) -> str:
    """Resolve the service URL: argument, ``REPRO_SERVICE_URL``, default."""
    return url or os.environ.get("REPRO_SERVICE_URL") or DEFAULT_URL


class ClientError(ServiceError):
    """An HTTP request to the service failed.

    ``status`` is the HTTP status code, or ``None`` for transport-level
    failures (connection refused, timeout).
    """

    def __init__(self, message: str, status: "int | None" = None) -> None:
        super().__init__(message)
        self.status = status


class JobFailed(ServiceError):
    """The submitted job exhausted its retries and failed server-side."""


def _job_body(
    workload: str,
    paradigm: str,
    gpus: int,
    link: str,
    scale: float,
    iterations: int,
    priority: int,
) -> dict:
    return {
        "workload": workload,
        "paradigm": paradigm,
        "gpus": gpus,
        "link": link,
        "scale": scale,
        "iterations": iterations,
        "priority": priority,
    }


def _check(status: int, payload: dict, accept: "tuple[int, ...]") -> dict:
    if status not in accept:
        message = payload.get("error") if isinstance(payload, dict) else None
        raise ClientError(message or f"service returned HTTP {status}", status=status)
    return payload


class ServiceClient:
    """Blocking SDK over :mod:`http.client`."""

    def __init__(self, url: "str | None" = None, timeout: float = 30.0) -> None:
        parsed = urllib.parse.urlsplit(service_url(url))
        if parsed.scheme != "http" or not parsed.hostname:
            raise ClientError(f"unsupported service URL: {service_url(url)!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout

    def _request(
        self, method: str, path: str, body: "dict | None" = None
    ) -> "tuple[int, dict]":
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw) if raw else {}
            except ValueError:
                decoded = {}
            return response.status, decoded
        except (ConnectionError, TimeoutError, OSError) as exc:
            raise ClientError(
                f"cannot reach service at http://{self.host}:{self.port}: {exc}"
            ) from exc
        finally:
            conn.close()

    def healthz(self) -> dict:
        """Liveness probe payload."""
        return _check(*self._request("GET", "/healthz"), accept=(200,))

    def metrics(self) -> dict:
        """The service's counter-registry snapshot."""
        return _check(*self._request("GET", "/metrics"), accept=(200,))["metrics"]

    def submit(
        self,
        workload: str,
        paradigm: str = "gps",
        gpus: int = 4,
        link: str = "pcie6",
        scale: float = 0.5,
        iterations: int = 8,
        priority: int = 0,
    ) -> dict:
        """Submit one simulation; returns the job status payload."""
        body = _job_body(workload, paradigm, gpus, link, scale, iterations, priority)
        return _check(*self._request("POST", "/jobs", body), accept=(200, 202))

    def status(self, job_id: str) -> dict:
        """Job status payload for one id."""
        return _check(*self._request("GET", f"/jobs/{job_id}"), accept=(200,))

    def result(self, job_id: str) -> "dict | None":
        """Full result payload once done, ``None`` while pending.

        Raises :class:`JobFailed` once the job has failed server-side.
        """
        status, payload = self._request("GET", f"/results/{job_id}")
        if status == 202:
            return None
        if status == 500:
            raise JobFailed(payload.get("error") or f"job {job_id} failed")
        return _check(status, payload, accept=(200,))

    def wait(self, job_id: str, timeout: float = 300.0, poll_s: float = 0.05) -> dict:
        """Poll until the job completes; returns the result payload."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.result(job_id)
            if payload is not None:
                return payload
            if time.monotonic() >= deadline:
                raise ClientError(f"timed out after {timeout:.0f}s waiting for {job_id}")
            time.sleep(poll_s)

    def run(self, workload: str, timeout: float = 300.0, **kwargs) -> dict:
        """Submit + wait in one call; returns the result payload."""
        job = self.submit(workload, **kwargs)
        return self.wait(job["id"], timeout=timeout)

    def shutdown(self, drain: bool = True) -> dict:
        """Ask the service to shut down (draining by default)."""
        return _check(
            *self._request("POST", "/shutdown", {"drain": drain}), accept=(202,)
        )


class AsyncServiceClient:
    """Asyncio SDK speaking HTTP/1.1 over raw streams (mirrors the server)."""

    def __init__(self, url: "str | None" = None, timeout: float = 30.0) -> None:
        parsed = urllib.parse.urlsplit(service_url(url))
        if parsed.scheme != "http" or not parsed.hostname:
            raise ClientError(f"unsupported service URL: {service_url(url)!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout

    async def _request(
        self, method: str, path: str, body: "dict | None" = None
    ) -> "tuple[int, dict]":
        payload = json.dumps(body).encode("utf-8") if body is not None else b""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.timeout
            )
        except (ConnectionError, TimeoutError, OSError) as exc:
            raise ClientError(
                f"cannot reach service at http://{self.host}:{self.port}: {exc}"
            ) from exc
        try:
            writer.write(head.encode("latin-1") + payload)
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), self.timeout)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        header, _, body_bytes = raw.partition(b"\r\n\r\n")
        try:
            status = int(header.split(None, 2)[1])
        except (IndexError, ValueError) as exc:
            raise ClientError("malformed response from service") from exc
        try:
            decoded = json.loads(body_bytes) if body_bytes else {}
        except ValueError:
            decoded = {}
        return status, decoded

    async def healthz(self) -> dict:
        """Liveness probe payload."""
        return _check(*await self._request("GET", "/healthz"), accept=(200,))

    async def metrics(self) -> dict:
        """The service's counter-registry snapshot."""
        return _check(*await self._request("GET", "/metrics"), accept=(200,))["metrics"]

    async def submit(
        self,
        workload: str,
        paradigm: str = "gps",
        gpus: int = 4,
        link: str = "pcie6",
        scale: float = 0.5,
        iterations: int = 8,
        priority: int = 0,
    ) -> dict:
        """Submit one simulation; returns the job status payload."""
        body = _job_body(workload, paradigm, gpus, link, scale, iterations, priority)
        return _check(*await self._request("POST", "/jobs", body), accept=(200, 202))

    async def status(self, job_id: str) -> dict:
        """Job status payload for one id."""
        return _check(*await self._request("GET", f"/jobs/{job_id}"), accept=(200,))

    async def result(self, job_id: str) -> "dict | None":
        """Full result payload once done, ``None`` while pending."""
        status, payload = await self._request("GET", f"/results/{job_id}")
        if status == 202:
            return None
        if status == 500:
            raise JobFailed(payload.get("error") or f"job {job_id} failed")
        return _check(status, payload, accept=(200,))

    async def wait(self, job_id: str, timeout: float = 300.0, poll_s: float = 0.05) -> dict:
        """Poll until the job completes; returns the result payload."""
        deadline = time.monotonic() + timeout
        while True:
            payload = await self.result(job_id)
            if payload is not None:
                return payload
            if time.monotonic() >= deadline:
                raise ClientError(f"timed out after {timeout:.0f}s waiting for {job_id}")
            await asyncio.sleep(poll_s)

    async def run(self, workload: str, timeout: float = 300.0, **kwargs) -> dict:
        """Submit + wait in one call; returns the result payload."""
        job = await self.submit(workload, **kwargs)
        return await self.wait(job["id"], timeout=timeout)

    async def shutdown(self, drain: bool = True) -> dict:
        """Ask the service to shut down (draining by default)."""
        return _check(
            *await self._request("POST", "/shutdown", {"drain": drain}), accept=(202,)
        )
