"""Ring-buffered metric time-series with server-side bucketing.

Counters and histograms answer "how much, ever"; capacity planning and SLO
evaluation need "how much, *when*". :class:`SeriesStore` keeps a bounded
ring of ``(timestamp, value)`` samples per named series (latency samples,
queue-depth snapshots, per-job success bits) and serves them **bucketed on
the server**: ``GET /metrics/series?name=...&bucket=...`` returns one
summary row per time bucket — count / min / max / avg / p50 / p99 — so a
dashboard polling a busy service downloads O(window/bucket) rows instead of
every sample.

The ring bound (``REPRO_SERVICE_SERIES_SAMPLES``, default 4096 samples per
series) makes a long-lived process's series memory a hard constant; evicted
samples are counted per store. Percentiles use linear interpolation between
order statistics (the common "type 7" estimator), matching numpy's default.
"""

from __future__ import annotations

import time
from collections import deque

from ..obs.registry import Number

#: Default per-series ring capacity when the setting is absent.
DEFAULT_SERIES_SAMPLES = 4096


def percentile(values: "list[float]", q: float) -> float:
    """Linear-interpolated percentile of an already-sorted value list."""
    if not values:
        raise ValueError("percentile of an empty list")
    if len(values) == 1:
        return values[0]
    rank = (len(values) - 1) * (q / 100.0)
    lo = int(rank)
    hi = min(lo + 1, len(values) - 1)
    frac = rank - lo
    return values[lo] * (1.0 - frac) + values[hi] * frac


class SeriesStore:
    """Named, bounded time-series of ``(t, value)`` samples.

    Loop-confined like the queue — all access happens on the server's event
    loop (or under the test's single thread), so no locks. Series are
    created on first :meth:`record`.
    """

    def __init__(self, max_samples: int = DEFAULT_SERIES_SAMPLES, clock=time.time) -> None:
        if max_samples < 1:
            raise ValueError("max_samples must be at least 1")
        self.max_samples = max_samples
        self.evicted = 0
        self._clock = clock
        self._series: "dict[str, deque[tuple[float, float]]]" = {}

    def record(self, name: str, value: Number, t: "float | None" = None) -> None:
        """Append one sample to ``name`` (evicting the oldest when full)."""
        ring = self._series.get(name)
        if ring is None:
            ring = self._series[name] = deque(maxlen=self.max_samples)
        if len(ring) == self.max_samples:
            self.evicted += 1
        ring.append((self._clock() if t is None else t, float(value)))

    def names(self) -> "list[str]":
        """Every series name, sorted."""
        return sorted(self._series)

    def window(
        self, name: str, start: "float | None" = None, end: "float | None" = None
    ) -> "list[tuple[float, float]]":
        """Raw samples of one series inside ``[start, end)`` (whole ring by default)."""
        ring = self._series.get(name)
        if ring is None:
            return []
        return [
            (t, v)
            for t, v in ring
            if (start is None or t >= start) and (end is None or t < end)
        ]

    def bucketed(
        self,
        name: str,
        bucket_s: float,
        start: "float | None" = None,
        end: "float | None" = None,
    ) -> "list[dict]":
        """Per-bucket summaries of one series, oldest bucket first.

        Buckets are aligned to ``floor(t / bucket_s) * bucket_s`` so two
        polls of the same window return identical bucket edges. Empty
        buckets are skipped (a sparse series yields sparse rows). Each row:
        ``{"t": bucket_start, "count", "min", "max", "avg", "p50", "p99"}``.
        """
        if bucket_s <= 0:
            raise ValueError("bucket_s must be positive")
        samples = self.window(name, start, end)
        buckets: "dict[float, list[float]]" = {}
        for t, value in samples:
            buckets.setdefault(int(t / bucket_s) * bucket_s, []).append(value)
        rows = []
        for bucket_start in sorted(buckets):
            values = sorted(buckets[bucket_start])
            rows.append(
                {
                    "t": bucket_start,
                    "count": len(values),
                    "min": values[0],
                    "max": values[-1],
                    "avg": sum(values) / len(values),
                    "p50": percentile(values, 50.0),
                    "p99": percentile(values, 99.0),
                }
            )
        return rows

    def summary(self, name: str, window_s: "float | None" = None) -> "dict | None":
        """One summary row over a trailing window (``None`` when empty)."""
        start = None if window_s is None else self._clock() - window_s
        samples = self.window(name, start=start)
        if not samples:
            return None
        values = sorted(value for _, value in samples)
        return {
            "count": len(values),
            "min": values[0],
            "max": values[-1],
            "avg": sum(values) / len(values),
            "p50": percentile(values, 50.0),
            "p99": percentile(values, 99.0),
        }
