"""Unit tests for the DRAM efficiency model."""

import pytest

from repro.config import GPUConfig
from repro.gpu.dram import DRAMModel
from repro.trace.records import PatternKind


@pytest.fixture
def dram():
    return DRAMModel(GPUConfig())


class TestEfficiency:
    def test_sequential_fastest(self, dram):
        kinds = list(PatternKind)
        sequential = dram.efficiency(PatternKind.SEQUENTIAL)
        assert all(sequential >= dram.efficiency(k) for k in kinds)

    def test_random_slowest(self, dram):
        kinds = list(PatternKind)
        random = dram.efficiency(PatternKind.RANDOM)
        assert all(random <= dram.efficiency(k) for k in kinds)

    def test_achieved_below_peak(self, dram):
        for kind in PatternKind:
            assert dram.achieved_bandwidth(kind) < GPUConfig().dram_bandwidth


class TestBlended:
    def test_empty_mix_returns_peak(self, dram):
        assert dram.blended_bandwidth({}) == GPUConfig().dram_bandwidth

    def test_single_kind_equals_achieved(self, dram):
        blended = dram.blended_bandwidth({PatternKind.RANDOM: 1000})
        assert blended == pytest.approx(dram.achieved_bandwidth(PatternKind.RANDOM))

    def test_harmonic_between_components(self, dram):
        mix = {PatternKind.SEQUENTIAL: 1000, PatternKind.RANDOM: 1000}
        blended = dram.blended_bandwidth(mix)
        assert dram.achieved_bandwidth(PatternKind.RANDOM) < blended
        assert blended < dram.achieved_bandwidth(PatternKind.SEQUENTIAL)

    def test_weights_matter(self, dram):
        mostly_seq = dram.blended_bandwidth(
            {PatternKind.SEQUENTIAL: 10_000, PatternKind.RANDOM: 100}
        )
        mostly_rand = dram.blended_bandwidth(
            {PatternKind.SEQUENTIAL: 100, PatternKind.RANDOM: 10_000}
        )
        assert mostly_seq > mostly_rand
