"""Unit tests for the intra-SM coalescer."""

import numpy as np

from repro.gpu.sm_coalescer import sm_coalesce
from repro.trace.expand import LineStream


def stream(lines, payload=32):
    lines = np.asarray(lines, dtype=np.int64)
    return LineStream(lines, np.full(len(lines), payload, dtype=np.int32))


class TestSMCoalesce:
    def test_empty(self):
        assert len(sm_coalesce(stream([]))) == 0

    def test_adjacent_duplicates_merge(self):
        out = sm_coalesce(stream([5, 5, 5, 6]))
        assert out.lines.tolist() == [5, 6]

    def test_payload_sums_capped_at_line(self):
        out = sm_coalesce(stream([5] * 10, payload=32))
        assert out.bytes_per_txn.tolist() == [128]  # 320 capped at 128

    def test_payload_sums_below_cap(self):
        out = sm_coalesce(stream([5, 5], payload=32))
        assert out.bytes_per_txn.tolist() == [64]

    def test_non_adjacent_duplicates_not_merged(self):
        # The SM coalescer only sees a warp window; temporally distant
        # revisits survive to the remote write queue.
        out = sm_coalesce(stream([5, 6, 5]))
        assert out.lines.tolist() == [5, 6, 5]

    def test_sequential_stream_unchanged(self):
        out = sm_coalesce(stream([1, 2, 3, 4]))
        assert out.lines.tolist() == [1, 2, 3, 4]

    def test_total_payload_preserved_when_uncapped(self):
        before = stream([1, 1, 2, 2, 3], payload=16)
        after = sm_coalesce(before)
        assert after.total_bytes == before.total_bytes
