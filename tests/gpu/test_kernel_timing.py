"""Unit tests for the kernel roofline timing model."""

import pytest

from repro.config import GPUConfig, PCIE6
from repro.gpu.kernel_timing import KernelTiming, KernelTimingModel
from repro.trace.records import PatternKind


@pytest.fixture
def model():
    return KernelTimingModel(GPUConfig())


class TestLocalMemoryTime:
    def test_empty_is_zero(self, model):
        assert model.local_memory_time({}, 0.5) == 0.0

    def test_l2_hits_faster(self, model):
        mix = {PatternKind.SEQUENTIAL: 10_000_000}
        cold = model.local_memory_time(mix, 0.0)
        warm = model.local_memory_time(mix, 1.0)
        assert warm < cold

    def test_hit_rate_clamped(self, model):
        mix = {PatternKind.SEQUENTIAL: 1_000_000}
        assert model.local_memory_time(mix, 2.0) == model.local_memory_time(mix, 1.0)
        assert model.local_memory_time(mix, -1.0) == model.local_memory_time(mix, 0.0)

    def test_random_slower_than_sequential(self, model):
        seq = model.local_memory_time({PatternKind.SEQUENTIAL: 10**7}, 0.0)
        rnd = model.local_memory_time({PatternKind.RANDOM: 10**7}, 0.0)
        assert rnd > seq


class TestTimeKernel:
    def test_compute_bound(self, model):
        timing = model.time_kernel(
            compute_ops=1e9, local_bytes_by_kind={PatternKind.SEQUENTIAL: 1000}, l2_hit_rate=0
        )
        assert timing.total == pytest.approx(
            timing.compute_time + timing.launch_overhead
        )

    def test_memory_bound(self, model):
        timing = model.time_kernel(
            compute_ops=10,
            local_bytes_by_kind={PatternKind.SEQUENTIAL: 10**8},
            l2_hit_rate=0,
        )
        assert timing.base == timing.local_mem_time

    def test_remote_bw_extends_when_bottleneck(self, model):
        timing = model.time_kernel(
            compute_ops=10,
            local_bytes_by_kind={},
            l2_hit_rate=0,
            remote_read_bytes=10**8,
            link=PCIE6,
        )
        assert timing.total > timing.base
        assert timing.remote_bw_time == pytest.approx(10**8 / PCIE6.effective_bandwidth)

    def test_remote_latency_reduced_by_hiding(self, model):
        kw = dict(
            compute_ops=10,
            local_bytes_by_kind={},
            l2_hit_rate=0,
            remote_read_bytes=1000,
            remote_read_txns=10_000,
            link=PCIE6,
        )
        exposed = model.time_kernel(latency_hiding=0.0, **kw)
        hidden = model.time_kernel(latency_hiding=0.9, **kw)
        assert hidden.remote_latency_time < exposed.remote_latency_time

    def test_mlp_divides_latency(self, model):
        kw = dict(
            compute_ops=10,
            local_bytes_by_kind={},
            l2_hit_rate=0,
            remote_read_bytes=1000,
            remote_read_txns=10_000,
            link=PCIE6,
        )
        low = model.time_kernel(remote_mlp=8, **kw)
        high = model.time_kernel(remote_mlp=1024, **kw)
        assert low.remote_latency_time > high.remote_latency_time

    def test_launch_overhead_always_charged(self, model):
        timing = model.time_kernel(0, {}, 0, launch_overhead=7e-6)
        assert timing.total == 7e-6


class TestKernelTiming:
    def test_base_is_roofline_max(self):
        timing = KernelTiming(2.0, 3.0, 0.0, 0.0, 0.0)
        assert timing.base == 3.0

    def test_total_composition(self):
        timing = KernelTiming(
            compute_time=1.0,
            local_mem_time=2.0,
            remote_bw_time=5.0,
            remote_latency_time=0.5,
            launch_overhead=0.1,
        )
        assert timing.total == pytest.approx(5.6)

    def test_achieved_throughput_fraction(self):
        gpu = GPUConfig()
        model = KernelTimingModel(gpu, ops_per_cycle_fraction=0.5)
        assert model.achieved_throughput == pytest.approx(0.5 * gpu.throughput_ops)
