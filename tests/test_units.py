"""Unit tests for :mod:`repro.units`."""

import pytest

from repro.units import (
    GB_S,
    GiB,
    KiB,
    MiB,
    US,
    ceil_div,
    fmt_bandwidth,
    fmt_bytes,
    fmt_time,
    is_power_of_two,
)


class TestConstants:
    def test_binary_sizes_chain(self):
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB

    def test_bandwidth_decimal(self):
        assert GB_S == 1e9


class TestFmtBytes:
    def test_bytes(self):
        assert fmt_bytes(512) == "512.0 B"

    def test_kib(self):
        assert fmt_bytes(65536) == "64.0 KiB"

    def test_mib(self):
        assert fmt_bytes(6 * MiB) == "6.0 MiB"

    def test_large_values_stay_tib(self):
        assert fmt_bytes(5000 * 1024 * GiB).endswith("TiB")


class TestFmtBandwidth:
    def test_gb_s(self):
        assert fmt_bandwidth(16e9) == "16.0 GB/s"

    def test_b_s(self):
        assert fmt_bandwidth(500.0) == "500.0 B/s"


class TestFmtTime:
    def test_zero(self):
        assert fmt_time(0) == "0 s"

    def test_microseconds(self):
        assert fmt_time(32 * US) == "32.00 us"

    def test_seconds(self):
        assert fmt_time(1.5) == "1.500 s"

    def test_milliseconds(self):
        assert fmt_time(2.5e-3) == "2.50 ms"

    def test_nanoseconds(self):
        assert fmt_time(5e-9) == "5.0 ns"


class TestHelpers:
    @pytest.mark.parametrize("n", [1, 2, 4, 64, 65536, 2**30])
    def test_powers_of_two(self, n):
        assert is_power_of_two(n)

    @pytest.mark.parametrize("n", [0, -2, 3, 6, 100, 2**30 + 1])
    def test_non_powers_of_two(self, n):
        assert not is_power_of_two(n)

    def test_ceil_div_exact(self):
        assert ceil_div(8, 4) == 2

    def test_ceil_div_rounds_up(self):
        assert ceil_div(9, 4) == 3

    def test_ceil_div_zero_numerator(self):
        assert ceil_div(0, 4) == 0
