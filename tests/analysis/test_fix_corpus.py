"""Fix-corpus goldens: the repair engine is deterministic and complete.

Ten fuzz-generated programs, each with one injected defect, live under
``fixcorpus/`` as ``*.before.json``.  The committed ``*.after.json`` files
pin the fixer's exact output: re-running ``fix_program`` must reproduce
them byte for byte, and every repaired program must be strict-clean.

Regenerate with ``PYTHONPATH=src python tests/analysis/fixcorpus/regen.py``
after intentional fixer changes.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import Severity, analyze_program, fix_program
from repro.trace.io import load_program, program_to_dict

CORPUS = Path(__file__).parent / "fixcorpus"
NAMES = sorted(p.name[: -len(".before.json")] for p in CORPUS.glob("*.before.json"))


def test_corpus_has_ten_entries():
    assert len(NAMES) == 10
    for name in NAMES:
        assert (CORPUS / f"{name}.after.json").exists(), name


@pytest.mark.parametrize("name", NAMES)
class TestFixCorpus:
    def test_before_is_dirty(self, name):
        before = load_program(CORPUS / f"{name}.before.json")
        assert any(
            d.severity.rank >= Severity.WARNING.rank
            for d in analyze_program(before)
        ), f"{name}: corpus entry no longer fires anything"

    def test_fixer_reproduces_committed_after(self, name):
        before = load_program(CORPUS / f"{name}.before.json")
        report = fix_program(before, min_severity=Severity.WARNING)
        assert report.converged
        assert report.changed
        got = json.dumps(program_to_dict(report.program), indent=2, sort_keys=True)
        want = (CORPUS / f"{name}.after.json").read_text()
        assert got + "\n" == want, (
            f"{name}: fixer output drifted from the committed golden — "
            "regenerate fixcorpus/ if the change is intentional"
        )

    def test_after_is_strict_clean(self, name):
        after = load_program(CORPUS / f"{name}.after.json")
        assert not [
            d for d in analyze_program(after)
            if d.severity.rank >= Severity.WARNING.rank
        ], f"{name}: repaired program still fires warnings"

    def test_after_is_a_fixed_point(self, name):
        after = load_program(CORPUS / f"{name}.after.json")
        report = fix_program(after, min_severity=Severity.WARNING)
        assert report.program is after
        assert not report.changed
