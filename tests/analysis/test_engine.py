"""Engine-level behaviour: selection, suppression, and the simulation gate."""

from __future__ import annotations

import pytest

from repro.analysis import RULES, analyze_program, check_program
from repro.errors import AnalysisError
from repro.trace.program import Phase
from repro.trace.records import MemOp

from .conftest import PAGE, access, kernel, program, setup_phase


def codes(diagnostics):
    return {d.code for d in diagnostics}


class TestBrokenFixture:
    def test_fires_every_rule_code(self, broken_program):
        assert codes(analyze_program(broken_program)) == set(RULES)

    def test_check_program_raises_with_diagnostics(self, broken_program):
        with pytest.raises(AnalysisError) as excinfo:
            check_program(broken_program)
        assert "fails static analysis" in str(excinfo.value)
        assert codes(excinfo.value.diagnostics) == set(RULES)


class TestSelection:
    def test_select_prefix(self, broken_program):
        hygiene = codes(analyze_program(broken_program, select=["GPS1"]))
        assert hygiene == {"GPS101", "GPS102", "GPS103", "GPS104"}

    def test_select_exact_codes_comma_separated(self, broken_program):
        found = codes(analyze_program(broken_program, select=["GPS001,GPS005"]))
        assert found == {"GPS001", "GPS005"}

    def test_ignore_drops_after_select(self, broken_program):
        found = codes(
            analyze_program(broken_program, select=["GPS1"], ignore=["GPS102"])
        )
        assert found == {"GPS101", "GPS103", "GPS104"}

    def test_metadata_suppression(self):
        phases = [
            Phase("it0", (
                kernel("w", 0, access(length=PAGE, op=MemOp.WRITE)),
            ), iteration=0),
        ]
        noisy = program(phases, num_gpus=2)
        quiet = program(
            phases,
            num_gpus=2,
            metadata={"analysis_ignore": "GPS102,GPS103"},
        )
        assert {"GPS102", "GPS103"} <= codes(analyze_program(noisy))
        assert codes(analyze_program(quiet)) & {"GPS102", "GPS103"} == set()

    def test_explicit_select_overrides_metadata_ignore(self):
        """metadata_ignore composes with --select like any other ignore list."""
        p = program(
            [Phase("it0", (
                kernel("w", 0, access(length=PAGE, op=MemOp.WRITE)),
            ), iteration=0)],
            metadata={"analysis_ignore": "GPS103"},
        )
        # Still suppressed: ignore always wins over select.
        assert "GPS103" not in codes(analyze_program(p, select=["GPS103"]))


class TestCheckProgram:
    def test_clean_program_returns_diagnostics(self):
        p = program([
            setup_phase(),
            Phase("it0", (
                kernel("r", 0, access(length=PAGE, op=MemOp.READ)),
                kernel("r1", 1, access(offset=PAGE, length=PAGE, op=MemOp.READ)),
            ), iteration=0),
        ])
        diagnostics = check_program(p)
        assert all(d.severity != "error" for d in diagnostics)

    def test_warnings_do_not_raise(self):
        p = program(
            [setup_phase(), Phase("it0", (
                kernel("r", 0, access(length=PAGE)),
                kernel("r1", 1, access(offset=PAGE, length=PAGE)),
            ), iteration=0)],
            buffers=(("buf", 4 * PAGE), ("ghost", PAGE)),
        )
        diagnostics = check_program(p)
        assert "GPS101" in codes(diagnostics)


class TestHarnessGate:
    class _Broken:
        """Minimal stand-in workload whose trace has a write-write race."""

        def build(self, num_gpus, scale=1.0, iterations=5):
            return program(
                [
                    setup_phase(),
                    Phase("it0", (
                        kernel("a", 0, access(offset=0, length=256, op=MemOp.WRITE)),
                        kernel("b", 1, access(offset=128, length=256, op=MemOp.WRITE)),
                    ), iteration=0),
                ],
                num_gpus=num_gpus,
                name="brokenw",
            )

    @pytest.fixture
    def broken_workload(self, monkeypatch):
        import repro.workloads.registry as registry
        from repro.harness.runner import clear_run_cache

        monkeypatch.setitem(registry.WORKLOADS, "brokenw", self._Broken())
        clear_run_cache()
        yield
        clear_run_cache()

    def test_runner_refuses_broken_trace(self, broken_workload):
        from repro.harness.runner import run_simulation

        with pytest.raises(AnalysisError, match="GPS001"):
            run_simulation("brokenw", "gps", 2, scale=0.1, iterations=2)

    def test_no_analyze_env_bypasses_gate(self, broken_workload, monkeypatch):
        from repro.harness.runner import run_simulation

        monkeypatch.setenv("REPRO_NO_ANALYZE", "1")
        result = run_simulation("brokenw", "gps", 2, scale=0.1, iterations=2)
        assert result.total_time > 0
