"""Analysis-result cache and the deterministic-ordering contract."""

from __future__ import annotations

import pytest

from repro.analysis import (
    analyze_program,
    cache_size,
    cache_stats,
    clear_cache,
    sort_diagnostics,
    sort_key,
)
from repro.trace.program import Phase
from repro.trace.records import MemOp

from .conftest import PAGE, access, kernel, program, setup_phase


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def make_program(name="cachy", length=PAGE):
    return program([
        setup_phase(),
        Phase("it0", (
            kernel("r", 0, access(length=length, op=MemOp.READ)),
            kernel("r1", 1, access(offset=PAGE, length=PAGE, op=MemOp.READ)),
        ), iteration=0),
    ], name=name)


class TestAnalysisCache:
    def test_second_analysis_hits(self):
        p = make_program()
        analyze_program(p)
        before = cache_stats().hits
        analyze_program(p)
        assert cache_stats().hits == before + 1

    def test_equal_programs_share_an_entry(self):
        """The key is the fingerprint, not object identity."""
        analyze_program(make_program())
        analyze_program(make_program())
        assert cache_size() == 1
        assert cache_stats().hits == 1

    def test_different_select_is_a_different_entry(self):
        p = make_program()
        analyze_program(p)
        analyze_program(p, select=["GPS1"])
        assert cache_size() == 2

    def test_cached_results_equal_cold_results(self):
        p = make_program()
        warm = analyze_program(p)
        cached = analyze_program(p)
        cold = analyze_program(p, use_cache=False)
        assert warm == cached == cold

    def test_cached_list_is_a_copy(self):
        p = make_program()
        first = analyze_program(p)
        first.clear()
        assert analyze_program(p) != []

    def test_use_cache_false_skips_the_cache(self):
        p = make_program()
        analyze_program(p, use_cache=False)
        assert cache_size() == 0

    def test_env_knob_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_ANALYSIS_CACHE", "1")
        p = make_program()
        analyze_program(p)
        analyze_program(p)
        assert cache_size() == 0
        assert cache_stats().lookups == 0

    def test_eviction_is_bounded(self):
        from repro.analysis.cache import MAX_ENTRIES

        for i in range(MAX_ENTRIES + 5):
            analyze_program(make_program(name=f"p{i}", length=128 + i * 128))
        assert cache_size() == MAX_ENTRIES
        assert cache_stats().evictions == 5


class TestDeterministicOrdering:
    def test_analysis_order_is_reproducible(self, broken_program):
        a = analyze_program(broken_program, use_cache=False)
        b = analyze_program(broken_program, use_cache=False)
        assert [d.to_dict() for d in a] == [d.to_dict() for d in b]

    def test_diagnostics_come_back_sorted(self, broken_program):
        diagnostics = analyze_program(broken_program)
        assert [sort_key(d) for d in diagnostics] == sorted(
            sort_key(d) for d in diagnostics
        )

    def test_sort_is_location_major(self, broken_program):
        """Same-site findings group together regardless of rule registry order."""
        diagnostics = analyze_program(broken_program)
        shuffled = list(reversed(diagnostics))
        assert sort_diagnostics(shuffled) == diagnostics

    def test_renderings_are_byte_stable(self, broken_program):
        from repro.analysis import render_json, render_sarif, render_text

        diagnostics = analyze_program(broken_program)
        for render in (render_text, render_json, render_sarif):
            assert render(broken_program, diagnostics) == \
                render(broken_program, list(diagnostics))
