"""Shared builders for analyzer tests: tiny hand-rolled trace programs."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.trace.io import load_program
from repro.trace.program import BufferSpec, KernelSpec, Phase, TraceProgram
from repro.trace.records import AccessRange, MemOp, Scope

PAGE = 65536

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN = Path(__file__).parent / "golden"
BROKEN_TRACE = FIXTURES / "broken_trace.json"


def access(
    buffer: str = "buf",
    offset: int = 0,
    length: int = 128,
    op: MemOp = MemOp.READ,
    scope: Scope = Scope.WEAK,
) -> AccessRange:
    return AccessRange(buffer, offset, length, op, scope=scope)


def kernel(name: str, gpu: int, *accesses: AccessRange) -> KernelSpec:
    return KernelSpec(name, gpu, 1.0, tuple(accesses))


def program(
    phases,
    *,
    num_gpus: int = 2,
    buffers=(("buf", 4 * PAGE),),
    metadata=None,
    name: str = "t",
) -> TraceProgram:
    specs = tuple(
        b if isinstance(b, BufferSpec) else BufferSpec(*b) for b in buffers
    )
    return TraceProgram(name, num_gpus, specs, tuple(phases), metadata=metadata or {})


def setup_phase(buffers=(("buf", 4 * PAGE),)) -> Phase:
    """A setup phase where GPU 0 initialises every buffer end to end."""
    writes = tuple(
        access(
            b.name if isinstance(b, BufferSpec) else b[0],
            0,
            b.size if isinstance(b, BufferSpec) else b[1],
            MemOp.WRITE,
        )
        for b in buffers
    )
    return Phase("setup", (kernel("init", 0, *writes),), iteration=-1)


@pytest.fixture(scope="session")
def broken_program() -> TraceProgram:
    return load_program(BROKEN_TRACE)
