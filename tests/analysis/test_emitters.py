"""Emitter tests: text rendering plus golden-file JSON and SARIF output.

The goldens pin the exact serialised form — any emitter change must come
with a deliberate golden refresh (rerun the two ``render_*`` calls and
rewrite the files), never an accidental drift.
"""

from __future__ import annotations

import json

from repro.analysis import (
    Severity,
    analyze_program,
    max_severity,
    render_json,
    render_sarif,
    render_text,
    severity_counts,
)

from .conftest import GOLDEN


def test_json_matches_golden(broken_program):
    rendered = render_json(broken_program, analyze_program(broken_program)) + "\n"
    assert rendered == (GOLDEN / "broken_trace.json.golden").read_text()


def test_sarif_matches_golden(broken_program):
    rendered = render_sarif(broken_program, analyze_program(broken_program)) + "\n"
    assert rendered == (GOLDEN / "broken_trace.sarif.golden").read_text()


def test_json_is_valid_and_structured(broken_program):
    diagnostics = analyze_program(broken_program)
    payload = json.loads(render_json(broken_program, diagnostics))
    assert payload["program"] == "broken-fixture"
    assert payload["num_gpus"] == 4
    assert payload["max_severity"] == "error"
    assert len(payload["diagnostics"]) == len(diagnostics)
    first = payload["diagnostics"][0]
    assert set(first) == {
        "severity", "code", "rule", "message",
        "phase", "kernel", "gpu", "buffer", "interval",
        "witness", "fix",
    }
    # Every conformance (GPS0xx) finding carries a concrete witness site.
    for entry in payload["diagnostics"]:
        if entry["code"].startswith("GPS0"):
            assert entry["witness"] is not None
            assert entry["witness"]["site"]["kernel"]
    # The portability matrix covers every paradigm with a verdict.
    matrix = payload["portability"]
    verdicts = {v["paradigm"]: v["verdict"] for v in matrix["verdicts"]}
    from repro.analysis import ALL_PARADIGMS

    assert set(verdicts) == set(ALL_PARADIGMS)
    assert set(verdicts.values()) <= {"safe", "hazard", "unsafe"}
    assert verdicts["gps"] == "unsafe"


def test_sarif_levels_and_locations(broken_program):
    diagnostics = analyze_program(broken_program)
    sarif = json.loads(render_sarif(broken_program, diagnostics))
    (run,) = sarif["runs"]
    rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
    results = run["results"]
    assert len(results) == len(diagnostics)
    assert {r["ruleId"] for r in results} <= rules
    assert {r["level"] for r in results} == {"error", "warning", "note"}
    gps001 = next(r for r in results if r["ruleId"] == "GPS001")
    logical = gps001["locations"][0]["logicalLocations"][0]
    assert logical["fullyQualifiedName"] == "it0/mix/k_w1@gpu1"
    assert gps001["properties"]["interval"] == [4096, 8192]


def test_text_rendering(broken_program):
    diagnostics = analyze_program(broken_program)
    text = render_text(broken_program, diagnostics)
    assert "broken-fixture:" in text
    assert "error" in text
    assert "[error] GPS001 weak-write-write-race" in text
    clean = render_text(broken_program, [])
    assert "clean" in clean


def test_severity_counts_and_max(broken_program):
    diagnostics = analyze_program(broken_program)
    counts = severity_counts(diagnostics)
    assert counts["error"] >= 1
    assert counts["warning"] >= 1
    assert counts["info"] >= 1
    assert sum(counts.values()) == len(diagnostics)
    assert max_severity(diagnostics) is Severity.ERROR
    assert max_severity([]) is None
