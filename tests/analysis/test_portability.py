"""Portability matrix: per-paradigm verdicts and the runner's selective gate."""

from __future__ import annotations

import pytest

from repro.analysis import (
    ALL_PARADIGMS,
    HAZARD,
    RULE_IMPACT,
    SAFE,
    UNSAFE,
    Severity,
    analyze_program,
    blocking_diagnostics,
    check_program,
    portability_report,
    render_portability_text,
    rule_impact,
)
from repro.errors import AnalysisError
from repro.trace.program import Phase
from repro.trace.records import MemOp

from .conftest import PAGE, access, kernel, program, setup_phase


def stale_read_program():
    """Minimal GPS006: GPU 1 first reads page 1 after the profile iteration."""
    phases = [setup_phase()]
    for it, offset in ((0, 0), (1, PAGE)):
        phases.append(
            Phase(f"it{it}", (
                kernel("w", 0, access(offset=0, length=2 * PAGE, op=MemOp.WRITE)),
                kernel("r", 1, access(offset=offset, length=PAGE, op=MemOp.READ)),
            ), iteration=it)
        )
    return program(phases, name="stale")


class TestParadigmRegistry:
    def test_matches_paradigm_registry(self):
        """The literal tuple must track repro.paradigms exactly."""
        from repro.paradigms import PARADIGMS

        assert set(ALL_PARADIGMS) == set(PARADIGMS)

    def test_rule_impact_covers_known_paradigms_only(self):
        for code, table in RULE_IMPACT.items():
            assert set(table) <= set(ALL_PARADIGMS), code
            assert set(table.values()) <= {HAZARD, UNSAFE}, code

    def test_unknown_error_code_is_unsafe_everywhere(self):
        table = rule_impact("GPS999", Severity.ERROR)
        assert set(table) == set(ALL_PARADIGMS)
        assert set(table.values()) == {UNSAFE}

    def test_unknown_info_code_has_no_impact(self):
        assert rule_impact("GPS999", Severity.INFO) == {}


class TestPortabilityReport:
    def test_clean_program_safe_everywhere(self):
        p = program([
            setup_phase(),
            Phase("it0", (
                kernel("r", 0, access(length=PAGE, op=MemOp.READ)),
                kernel("r1", 1, access(offset=PAGE, length=PAGE, op=MemOp.READ)),
            ), iteration=0),
        ])
        report = portability_report(p, analyze_program(p))
        assert all(report.verdict(paradigm) == SAFE for paradigm in ALL_PARADIGMS)
        assert set(report.safe_paradigms()) == set(ALL_PARADIGMS)
        assert report.unsafe_paradigms() == ()

    def test_stale_read_unsafe_only_under_tracking(self):
        p = stale_read_program()
        report = portability_report(p, analyze_program(p))
        assert set(report.unsafe_paradigms()) == {"gps", "gps_nocoalesce"}
        # gps_nosub subscribes everything: the stale replica cannot exist.
        assert "gps_nosub" in report.safe_paradigms()
        by_paradigm = {v.paradigm: v for v in report.verdicts}
        assert ("GPS006", UNSAFE) in by_paradigm["gps"].reasons

    def test_warning_only_findings_cap_at_hazard(self):
        """UNSAFE needs an error-severity witness, not just a warning."""
        from repro.trace.records import Scope

        p = program([
            setup_phase(),
            Phase("it0", (
                kernel("w", 0, access(length=128, op=MemOp.WRITE,
                                      scope=Scope.SYS)),
            ), iteration=0),
        ])
        report = portability_report(p, analyze_program(p))
        assert report.unsafe_paradigms() == ()
        verdicts = {v.paradigm: v.verdict for v in report.verdicts}
        assert HAZARD in verdicts.values()

    def test_render_text_lists_every_paradigm(self):
        p = stale_read_program()
        text = render_portability_text(portability_report(p, analyze_program(p)))
        for paradigm in ALL_PARADIGMS:
            assert paradigm in text
        assert "unsafe" in text


class TestBlockingDiagnostics:
    def test_none_paradigm_blocks_on_any_error(self):
        p = stale_read_program()
        diagnostics = analyze_program(p)
        assert blocking_diagnostics(diagnostics, None)

    def test_unaffected_paradigm_not_blocked(self):
        p = stale_read_program()
        diagnostics = analyze_program(p)
        assert blocking_diagnostics(diagnostics, "gps")
        assert not blocking_diagnostics(diagnostics, "memcpy")
        assert not blocking_diagnostics(diagnostics, "gps_nosub")


class TestSelectiveGate:
    def test_check_program_refuses_only_affected_paradigms(self):
        p = stale_read_program()
        with pytest.raises(AnalysisError, match="under paradigm 'gps'"):
            check_program(p, paradigm="gps")
        diagnostics = check_program(p, paradigm="memcpy")
        assert any(d.code == "GPS006" for d in diagnostics)

    def test_global_gate_message_unchanged(self):
        p = stale_read_program()
        with pytest.raises(AnalysisError, match=r"fails static analysis with"):
            check_program(p)

    def test_runner_gate_is_per_paradigm(self, monkeypatch):
        """End to end: the runner simulates memcpy but refuses gps."""
        import repro.workloads.registry as registry
        from repro.harness.runner import clear_run_cache, run_simulation

        class _Stale:
            def build(self, num_gpus, scale=1.0, iterations=2):
                return stale_read_program()

        monkeypatch.setitem(registry.WORKLOADS, "stalew", _Stale())
        clear_run_cache()
        try:
            result = run_simulation("stalew", "memcpy", 2, scale=0.1, iterations=2)
            assert result.total_time > 0
            with pytest.raises(AnalysisError, match="GPS006"):
                run_simulation("stalew", "gps", 2, scale=0.1, iterations=2)
        finally:
            clear_run_cache()
