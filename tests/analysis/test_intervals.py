"""IntervalSet and sweep primitives, checked against brute-force models."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.intervals import (
    IntervalSet,
    merge_intervals,
    page_round,
    sweep_overlaps,
)

SPAN = 256

intervals = st.lists(
    st.tuples(st.integers(0, SPAN), st.integers(0, SPAN)).map(
        lambda p: (min(p), max(p))
    ),
    max_size=12,
)


def model(pairs) -> set:
    """The byte-set an IntervalSet built from ``pairs`` must represent."""
    covered: set = set()
    for start, end in pairs:
        covered.update(range(start, end))
    return covered


class TestIntervalSet:
    def test_coalesces_overlap_and_abutment(self):
        s = IntervalSet([(0, 10), (10, 20), (30, 40), (35, 50), (60, 70)])
        assert list(s) == [(0, 20), (30, 50), (60, 70)]

    def test_add_bridges_many_intervals(self):
        s = IntervalSet([(0, 10), (20, 30), (40, 50)])
        s.add(5, 45)
        assert list(s) == [(0, 50)]

    def test_empty_interval_ignored(self):
        s = IntervalSet()
        s.add(10, 10)
        s.add(10, 5)
        assert not s and len(s) == 0

    def test_uncovered_gaps(self):
        s = IntervalSet([(10, 20), (30, 40)])
        assert s.uncovered(0, 50) == [(0, 10), (20, 30), (40, 50)]
        assert s.uncovered(12, 18) == []
        assert s.uncovered(15, 35) == [(20, 30)]

    def test_intersection(self):
        s = IntervalSet([(10, 20), (30, 40)])
        assert s.intersection(0, 50) == [(10, 20), (30, 40)]
        assert s.intersection(15, 35) == [(15, 20), (30, 35)]
        assert s.intersection(20, 30) == []

    @given(intervals)
    def test_membership_matches_set_model(self, pairs):
        s = IntervalSet(pairs)
        covered = model(pairs)
        for probe in range(0, SPAN):
            assert s.overlaps(probe, probe + 1) == (probe in covered)
        assert s.total_bytes() == len(covered)

    @given(intervals, st.integers(0, SPAN), st.integers(0, SPAN))
    def test_queries_match_set_model(self, pairs, a, b):
        start, end = min(a, b), max(a, b)
        s = IntervalSet(pairs)
        covered = model(pairs)
        probe = set(range(start, end))
        assert s.overlaps(start, end) == bool(probe & covered)
        assert s.covers(start, end) == (probe <= covered)
        assert model(s.uncovered(start, end)) == probe - covered
        assert model(s.intersection(start, end)) == probe & covered

    @given(intervals)
    def test_canonical_form(self, pairs):
        """Stored intervals are sorted, disjoint, non-abutting, non-empty."""
        s = IntervalSet(pairs)
        stored = list(s)
        assert all(start < end for start, end in stored)
        assert all(
            stored[i][1] < stored[i + 1][0] for i in range(len(stored) - 1)
        )

    @given(intervals, intervals)
    def test_update_is_union(self, left, right):
        s = IntervalSet(left)
        s.update(IntervalSet(right))
        assert model(s) == model(left) | model(right)


class TestHelpers:
    def test_page_round(self):
        assert page_round(100, 200, 64) == (64, 256)
        assert page_round(0, 64, 64) == (0, 64)
        assert page_round(64, 65, 64) == (64, 128)

    def test_merge_intervals(self):
        assert merge_intervals([(5, 10), (0, 6), (20, 30)]) == [(0, 10), (20, 30)]

    def test_sweep_overlaps_pairs(self):
        items = [(0, 10, "a"), (5, 15, "b"), (20, 30, "c"), (25, 26, "d")]
        pairs = {(x, y): span for x, y, span in sweep_overlaps(items)}
        assert pairs == {("a", "b"): (5, 10), ("c", "d"): (25, 26)}

    def test_sweep_overlaps_disjoint_yields_nothing(self):
        assert list(sweep_overlaps([(0, 1, 1), (1, 2, 2), (2, 3, 3)])) == []

    @given(
        st.lists(
            st.tuples(st.integers(0, 40), st.integers(1, 10), st.integers(0, 99)),
            max_size=10,
        )
    )
    def test_sweep_matches_all_pairs(self, raw):
        items = [(start, start + length) for start, length, _ in raw]
        got = sorted(
            (min(a, b), max(a, b), span)
            for a, b, span in sweep_overlaps(
                [(s, e, i) for i, (s, e) in enumerate(items)]
            )
        )
        expected = sorted(
            (i, j, (max(items[i][0], items[j][0]), min(items[i][1], items[j][1])))
            for i in range(len(items))
            for j in range(i + 1, len(items))
            if max(items[i][0], items[j][0]) < min(items[i][1], items[j][1])
        )
        assert got == expected
