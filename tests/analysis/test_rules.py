"""Per-rule tests: one minimal violating program and one clean near-miss each."""

from __future__ import annotations

import pytest

from repro.analysis import RULES, Severity, analyze_program
from repro.trace.program import Phase
from repro.trace.records import MemOp, Scope

from .conftest import PAGE, access, kernel, program, setup_phase


def codes(diagnostics):
    return {d.code for d in diagnostics}


def only(diagnostics, code):
    found = [d for d in diagnostics if d.code == code]
    assert found, f"expected a {code} finding, got {sorted(codes(diagnostics))}"
    return found[0]


class TestRegistry:
    def test_expected_rule_codes(self):
        assert sorted(RULES) == [
            "GPS001", "GPS002", "GPS003", "GPS004", "GPS005", "GPS006",
            "GPS007", "GPS008", "GPS101", "GPS102", "GPS103", "GPS104",
        ]

    def test_every_rule_has_metadata(self):
        for rule in RULES.values():
            assert rule.name and rule.summary and rule.paper
            assert isinstance(rule.severity, Severity)

    def test_duplicate_code_rejected(self):
        from repro.analysis.rules import rule

        with pytest.raises(ValueError, match="duplicate"):
            rule("GPS001", "again", Severity.INFO, "x", "-")(lambda ctx: iter(()))


class TestWeakWriteWriteRace:
    def test_overlapping_plain_stores_race(self):
        p = program([
            setup_phase(),
            Phase("it0", (
                kernel("a", 0, access(offset=0, length=256, op=MemOp.WRITE)),
                kernel("b", 1, access(offset=128, length=256, op=MemOp.WRITE)),
            ), iteration=0),
        ])
        d = only(analyze_program(p), "GPS001")
        assert d.severity is Severity.ERROR
        assert d.location.phase == "it0"
        assert d.location.buffer == "buf"
        assert d.location.interval == (128, 256)

    def test_disjoint_stores_clean(self):
        p = program([
            setup_phase(),
            Phase("it0", (
                kernel("a", 0, access(offset=0, length=128, op=MemOp.WRITE)),
                kernel("b", 1, access(offset=128, length=128, op=MemOp.WRITE)),
            ), iteration=0),
        ])
        assert "GPS001" not in codes(analyze_program(p))

    def test_atomic_accumulation_is_not_a_race(self):
        p = program([
            setup_phase(),
            Phase("it0", (
                kernel("a", 0, access(length=256, op=MemOp.ATOMIC)),
                kernel("b", 1, access(length=256, op=MemOp.ATOMIC)),
            ), iteration=0),
        ])
        assert "GPS001" not in codes(analyze_program(p))

    def test_same_gpu_overlap_is_not_a_race(self):
        p = program([
            setup_phase(),
            Phase("it0", (
                kernel(
                    "a", 0,
                    access(offset=0, length=256, op=MemOp.WRITE),
                    access(offset=128, length=256, op=MemOp.WRITE),
                ),
            ), iteration=0),
        ])
        assert "GPS001" not in codes(analyze_program(p))


class TestWeakWriteReadRace:
    def test_cross_gpu_store_read_overlap_is_info(self):
        p = program([
            setup_phase(),
            Phase("it0", (
                kernel("w", 0, access(offset=0, length=256, op=MemOp.WRITE)),
                kernel("r", 1, access(offset=0, length=128, op=MemOp.READ)),
            ), iteration=0),
        ])
        d = only(analyze_program(p), "GPS002")
        assert d.severity is Severity.INFO
        assert "1 reader/writer GPU pair(s)" in d.message

    def test_own_store_read_clean(self):
        p = program([
            setup_phase(),
            Phase("it0", (
                kernel(
                    "rw", 0,
                    access(length=256, op=MemOp.WRITE),
                    access(length=256, op=MemOp.READ),
                ),
            ), iteration=0),
        ])
        assert "GPS002" not in codes(analyze_program(p))


class TestReadBeforeWrite:
    def test_uninitialised_read(self):
        p = program([
            Phase("setup", (
                kernel("init", 0, access(offset=0, length=PAGE, op=MemOp.WRITE)),
            ), iteration=-1),
            Phase("it0", (
                kernel("r", 0, access(offset=0, length=2 * PAGE, op=MemOp.READ)),
            ), iteration=0),
        ])
        d = only(analyze_program(p), "GPS003")
        assert d.severity is Severity.ERROR
        assert d.location.kernel == "r"
        # Gap = the second, never-written page.
        assert d.location.interval == (PAGE, 2 * PAGE)
        assert f"{PAGE} B" in d.message

    def test_own_same_phase_write_initialises(self):
        """A GPU's own prior store is locally visible before the barrier."""
        p = program([
            Phase("p0", (
                kernel(
                    "rw", 0,
                    access(length=PAGE, op=MemOp.WRITE),
                    access(length=PAGE, op=MemOp.READ),
                ),
            ), iteration=-1),
        ])
        assert "GPS003" not in codes(analyze_program(p))

    def test_cross_gpu_same_phase_write_does_not_initialise(self):
        """Weak stores publish at the barrier: another GPU's read sees nothing."""
        p = program([
            Phase("p0", (
                kernel("w", 0, access(length=PAGE, op=MemOp.WRITE)),
                kernel("r", 1, access(length=PAGE, op=MemOp.READ)),
            ), iteration=-1),
        ])
        assert "GPS003" in codes(analyze_program(p))

    def test_read_before_own_write_still_uninitialised(self):
        """Program order matters: reading first, then writing, is still a bug."""
        p = program([
            Phase("p0", (
                kernel(
                    "rw", 0,
                    access(length=PAGE, op=MemOp.READ),
                    access(length=PAGE, op=MemOp.WRITE),
                ),
            ), iteration=-1),
        ])
        assert "GPS003" in codes(analyze_program(p))

    def test_initialised_read_clean(self):
        p = program([
            setup_phase(),
            Phase("it0", (
                kernel("r", 0, access(length=4 * PAGE, op=MemOp.READ)),
            ), iteration=0),
        ])
        assert "GPS003" not in codes(analyze_program(p))


class TestScopeRules:
    def test_sys_scope_on_data_buffer_warns(self):
        p = program([
            setup_phase(),
            Phase("it0", (
                kernel(
                    "w", 0,
                    access(length=128, op=MemOp.WRITE, scope=Scope.SYS),
                ),
            ), iteration=0),
        ])
        d = only(analyze_program(p), "GPS004")
        assert d.severity is Severity.WARNING
        assert d.location.buffer == "buf"

    def test_weak_access_to_sync_buffer_errors(self):
        from repro.trace.program import BufferSpec

        buffers = (("buf", 4 * PAGE), BufferSpec("flag", PAGE, sync=True))
        p = program(
            [
                setup_phase(),
                Phase("it0", (
                    kernel("w", 0, access("flag", length=64, op=MemOp.WRITE)),
                ), iteration=0),
            ],
            buffers=buffers,
        )
        d = only(analyze_program(p), "GPS005")
        assert d.severity is Severity.ERROR
        assert d.location.buffer == "flag"

    def test_sys_scope_on_sync_buffer_clean(self):
        from repro.trace.program import BufferSpec

        buffers = (("buf", 4 * PAGE), BufferSpec("flag", PAGE, sync=True))
        p = program(
            [
                setup_phase(),
                Phase("it0", (
                    kernel(
                        "w", 0,
                        access("flag", length=64, op=MemOp.WRITE, scope=Scope.SYS),
                        access(length=128, op=MemOp.READ),
                    ),
                ), iteration=0),
            ],
            buffers=buffers,
        )
        found = codes(analyze_program(p))
        assert "GPS004" not in found and "GPS005" not in found


class TestStaleReadHazard:
    def _steady(self, reader_it1_offset: int) -> list:
        """GPU 0 writes both pages every iteration; GPU 1 reads page 0 in the
        profile iteration and ``reader_it1_offset`` afterwards."""
        phases = [setup_phase()]
        for it, offset in ((0, 0), (1, reader_it1_offset)):
            phases.append(
                Phase(f"it{it}", (
                    kernel("w", 0, access(offset=0, length=2 * PAGE, op=MemOp.WRITE)),
                    kernel("r", 1, access(offset=offset, length=PAGE, op=MemOp.READ)),
                ), iteration=it)
            )
        return analyze_program(program(phases))

    def test_unprofiled_page_read_in_steady_state(self):
        d = only(self._steady(reader_it1_offset=PAGE), "GPS006")
        assert d.severity is Severity.ERROR
        assert d.location.gpu == 1
        assert d.location.interval == (PAGE, 2 * PAGE)

    def test_profiled_page_reads_clean(self):
        assert "GPS006" not in codes(self._steady(reader_it1_offset=0))

    def test_unshared_buffer_not_flagged(self):
        """Nobody else writes the buffer, so the stale replica never diverges."""
        phases = [setup_phase()]
        for it, offset in ((0, 0), (1, PAGE)):
            phases.append(
                Phase(f"it{it}", (
                    kernel("r", 1, access(offset=offset, length=PAGE, op=MemOp.READ)),
                ), iteration=it)
            )
        assert "GPS006" not in codes(analyze_program(program(phases)))


class TestAtomicPlainMix:
    def test_overlapping_atomic_and_plain_store(self):
        p = program([
            setup_phase(),
            Phase("it0", (
                kernel("w", 0, access(length=256, op=MemOp.WRITE)),
                kernel("a", 1, access(length=128, op=MemOp.ATOMIC)),
            ), iteration=0),
        ])
        d = only(analyze_program(p), "GPS007")
        assert d.severity is Severity.INFO
        assert "atomic and plain stores" in d.message

    def test_disjoint_atomic_and_plain_clean(self):
        p = program([
            setup_phase(),
            Phase("it0", (
                kernel("w", 0, access(offset=0, length=128, op=MemOp.WRITE)),
                kernel("a", 1, access(offset=PAGE, length=128, op=MemOp.ATOMIC)),
            ), iteration=0),
        ])
        assert "GPS007" not in codes(analyze_program(p))


class TestSyncHandshakeCycle:
    def _flag(self, offset: int, op: MemOp):
        return access("flags", offset=offset, length=128, op=op, scope=Scope.SYS)

    def _program(self, phases):
        from repro.trace.program import BufferSpec

        return program(
            phases,
            buffers=(("buf", 4 * PAGE), BufferSpec("flags", PAGE, sync=True)),
        )

    def test_circular_wait_is_flagged(self):
        """Each GPU waits for the flag the other sets afterwards: deadlock."""
        p = self._program([
            setup_phase(),
            Phase("dead", (
                kernel("k0", 0, self._flag(128, MemOp.READ), self._flag(0, MemOp.WRITE)),
                kernel("k1", 1, self._flag(0, MemOp.READ), self._flag(128, MemOp.WRITE)),
            ), iteration=0),
        ])
        d = only(analyze_program(p), "GPS008")
        assert d.severity is Severity.ERROR
        assert "form a cycle" in d.message
        assert d.witness is not None and d.witness.kind == "sync-cycle"

    def test_one_way_handshake_clean(self):
        """Set-then-wait in opposite program order resolves: no cycle."""
        p = self._program([
            setup_phase(),
            Phase("hs", (
                kernel("k0", 0, self._flag(0, MemOp.WRITE), self._flag(128, MemOp.READ)),
                kernel("k1", 1, self._flag(0, MemOp.READ), self._flag(128, MemOp.WRITE)),
            ), iteration=0),
        ])
        assert "GPS008" not in codes(analyze_program(p))

    def test_atomic_flag_accumulation_is_not_a_cycle(self):
        """Atomic-atomic SYS pairs are accumulation, not a handoff direction."""
        p = self._program([
            setup_phase(),
            Phase("acc", (
                kernel("k0", 0, self._flag(0, MemOp.ATOMIC)),
                kernel("k1", 1, self._flag(0, MemOp.ATOMIC)),
            ), iteration=0),
        ])
        assert "GPS008" not in codes(analyze_program(p))


class TestHygieneRules:
    def test_unused_buffer(self):
        p = program(
            [setup_phase(), Phase("it0", (
                kernel("r", 0, access(length=128)),
            ), iteration=0)],
            buffers=(("buf", 4 * PAGE), ("ghost", PAGE)),
        )
        d = only(analyze_program(p), "GPS101")
        assert d.severity is Severity.WARNING
        assert d.location.buffer == "ghost"

    def test_idle_gpus(self):
        p = program(
            [setup_phase(), Phase("it0", (
                kernel("r", 0, access(length=128)),
            ), iteration=0)],
            num_gpus=4,
        )
        d = only(analyze_program(p), "GPS102")
        assert "[1, 2, 3]" in d.message

    def test_no_setup_phase(self):
        p = program([
            Phase("it0", (
                kernel("w", 0, access(length=PAGE, op=MemOp.WRITE)),
            ), iteration=0),
        ])
        d = only(analyze_program(p), "GPS103")
        assert d.severity is Severity.WARNING

    def test_setup_only_program_needs_no_setup_warning(self):
        p = program([setup_phase()])
        assert "GPS103" not in codes(analyze_program(p))

    def test_payload_imbalance_ratio(self):
        p = program([
            setup_phase(),
            Phase("it0", (
                kernel("big", 0, access(offset=0, length=4 * PAGE, op=MemOp.READ)),
                kernel("small", 1, access(offset=0, length=128, op=MemOp.READ)),
            ), iteration=0),
        ])
        d = only(analyze_program(p), "GPS104")
        assert d.severity is Severity.INFO
        assert "varies" in d.message

    def test_zero_payload_kernel_is_reported(self):
        """Regression: the old ``low > 0`` guard skipped empty kernels."""
        p = program([
            setup_phase(),
            Phase("it0", (
                kernel("busy", 0, access(length=4 * PAGE, op=MemOp.READ)),
                kernel("idle", 1),
            ), iteration=0),
        ])
        d = only(analyze_program(p), "GPS104")
        assert "0 bytes" in d.message
        assert d.location.kernel == "idle"
        assert d.location.gpu == 1

    def test_balanced_payloads_clean(self):
        p = program([
            setup_phase(),
            Phase("it0", (
                kernel("a", 0, access(offset=0, length=PAGE, op=MemOp.READ)),
                kernel("b", 1, access(offset=PAGE, length=PAGE, op=MemOp.READ)),
            ), iteration=0),
        ])
        assert "GPS104" not in codes(analyze_program(p))
