"""Vector-clock happens-before engine: ordering, sync edges, and cycles."""

from __future__ import annotations

from repro.analysis import build_context
from repro.trace.program import BufferSpec, Phase
from repro.trace.records import MemOp, Scope

from .conftest import PAGE, access, kernel, program, setup_phase


def ctx_for(phases, **kwargs):
    return build_context(program(phases, **kwargs))


def site(ctx, kernel_name, index=0):
    found = [s for s in ctx.dataflow.sites if s.kernel == kernel_name]
    return found[index]


def flag_buffers():
    return (("buf", 4 * PAGE), BufferSpec("flags", PAGE, sync=True))


def flag(offset, op, scope=Scope.SYS):
    return access("flags", offset=offset, length=128, op=op, scope=scope)


class TestCrossPhaseOrdering:
    def test_barrier_orders_earlier_phase_before_later(self):
        ctx = ctx_for([
            Phase("p0", (kernel("a", 0, access(op=MemOp.WRITE)),), iteration=0),
            Phase("p1", (kernel("b", 1, access(op=MemOp.READ)),), iteration=0),
        ])
        a, b = site(ctx, "a"), site(ctx, "b")
        assert ctx.hb.ordered(a, b)
        assert not ctx.hb.ordered(b, a)
        assert not ctx.hb.concurrent(a, b)

    def test_program_order_within_kernel(self):
        ctx = ctx_for([
            Phase("p0", (
                kernel("k", 0, access(op=MemOp.WRITE), access(op=MemOp.READ)),
            ), iteration=0),
        ])
        write, read = ctx.dataflow.sites
        assert ctx.hb.ordered(write, read)
        assert not ctx.hb.ordered(read, write)

    def test_cross_gpu_same_phase_unordered(self):
        ctx = ctx_for([
            Phase("p0", (
                kernel("a", 0, access(op=MemOp.WRITE)),
                kernel("b", 1, access(op=MemOp.WRITE)),
            ), iteration=0),
        ])
        a, b = site(ctx, "a"), site(ctx, "b")
        assert ctx.hb.concurrent(a, b)
        assert not ctx.hb.ordered(a, b)
        assert not ctx.hb.ordered(b, a)


class TestSyncEdges:
    def test_sys_flag_handshake_orders_cross_gpu(self):
        """Release (sys store) -> acquire (sys read) of a flag orders GPUs."""
        ctx = ctx_for(
            [
                setup_phase(),
                Phase("hs", (
                    kernel(
                        "producer", 0,
                        access(offset=0, length=256, op=MemOp.WRITE),
                        flag(0, MemOp.WRITE),
                    ),
                    kernel(
                        "consumer", 1,
                        flag(0, MemOp.READ),
                        access(offset=0, length=256, op=MemOp.READ),
                    ),
                ), iteration=0),
            ],
            buffers=flag_buffers(),
        )
        assert ctx.hb.has_sync_edges
        store = site(ctx, "producer", 0)
        read = site(ctx, "consumer", 1)
        assert ctx.hb.ordered(store, read)
        assert not ctx.hb.concurrent(store, read)

    def test_weak_flag_store_creates_no_edge(self):
        """A weak store to the flag is not a release: no ordering."""
        ctx = ctx_for(
            [
                setup_phase(),
                Phase("hs", (
                    kernel(
                        "producer", 0,
                        access(offset=0, length=256, op=MemOp.WRITE),
                        flag(0, MemOp.WRITE, scope=Scope.WEAK),
                    ),
                    kernel(
                        "consumer", 1,
                        flag(0, MemOp.READ),
                        access(offset=0, length=256, op=MemOp.READ),
                    ),
                ), iteration=0),
            ],
            buffers=flag_buffers(),
        )
        store = site(ctx, "producer", 0)
        read = site(ctx, "consumer", 1)
        assert ctx.hb.concurrent(store, read)

    def test_sys_scope_on_data_buffer_creates_no_edge(self):
        """Only sync-declared buffers carry release/acquire semantics."""
        ctx = ctx_for([
            setup_phase(),
            Phase("p", (
                kernel("w", 0, access(offset=0, length=128, op=MemOp.WRITE,
                                      scope=Scope.SYS)),
                kernel("r", 1, access(offset=0, length=128, op=MemOp.READ,
                                      scope=Scope.SYS)),
            ), iteration=0),
        ])
        assert not ctx.hb.has_sync_edges

    def test_missing_edge_names_the_handshake(self):
        ctx = ctx_for([
            setup_phase(),
            Phase("p0", (
                kernel("a", 0, access(op=MemOp.WRITE)),
                kernel("b", 1, access(op=MemOp.WRITE)),
            ), iteration=0),
        ])
        edge = ctx.hb.missing_edge(site(ctx, "a"), site(ctx, "b"))
        assert "sys-scoped flag handshake" in edge
        assert "barrier only publishes at phase end" in edge


class TestCycles:
    def _deadlock(self):
        return ctx_for(
            [
                setup_phase(),
                Phase("dead", (
                    kernel("k0", 0, flag(128, MemOp.READ), flag(0, MemOp.WRITE)),
                    kernel("k1", 1, flag(0, MemOp.READ), flag(128, MemOp.WRITE)),
                ), iteration=0),
            ],
            buffers=flag_buffers(),
        )

    def test_circular_wait_detected(self):
        ctx = self._deadlock()
        assert len(ctx.hb.cycles) == 1
        cycle = ctx.hb.cycles[0]
        assert cycle.phase == "dead"
        assert {s.gpu for s in cycle.sites} == {0, 1}
        assert "->" in cycle.describe()

    def test_cycle_members_fall_back_to_concurrent(self):
        """Intra-cycle sync edges are dropped: members stay unordered."""
        ctx = self._deadlock()
        k0_read = site(ctx, "k0", 0)
        k1_read = site(ctx, "k1", 0)
        assert ctx.hb.concurrent(k0_read, k1_read)

    def test_acyclic_handshake_has_no_cycles(self):
        ctx = ctx_for(
            [
                setup_phase(),
                Phase("hs", (
                    kernel("k0", 0, flag(0, MemOp.WRITE), flag(128, MemOp.READ)),
                    kernel("k1", 1, flag(0, MemOp.READ), flag(128, MemOp.WRITE)),
                ), iteration=0),
            ],
            buffers=flag_buffers(),
        )
        assert ctx.hb.cycles == []

    def test_transitive_ordering_through_chain(self):
        """g0 releases to g1, g1 releases to g2: g0's store orders before g2."""
        ctx = ctx_for(
            [
                setup_phase(),
                Phase("chain", (
                    kernel("k0", 0,
                           access(offset=0, length=128, op=MemOp.WRITE),
                           flag(0, MemOp.WRITE)),
                    kernel("k1", 1, flag(0, MemOp.READ), flag(128, MemOp.WRITE)),
                    kernel("k2", 2,
                           flag(128, MemOp.READ),
                           access(offset=0, length=128, op=MemOp.READ)),
                ), iteration=0),
            ],
            num_gpus=3,
            buffers=flag_buffers(),
        )
        first = site(ctx, "k0", 0)
        last = site(ctx, "k2", 1)
        assert ctx.hb.ordered(first, last)
