"""Auto-fix engine: every rule/fix pair kills its own diagnostic.

Mutation-style tests: each fixable rule gets a minimal program that fires
it; the planned fix must exist, apply cleanly, and the re-analyzed program
must no longer fire that rule. Unfixable rules must plan nothing.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    FIXABLE_CODES,
    RULES,
    Severity,
    analyze_program,
    apply_fix,
    fix_program,
    plan_fix,
    plan_fixes,
)
from repro.trace.program import BufferSpec, Phase
from repro.trace.records import MemOp, Scope

from .conftest import PAGE, access, kernel, program, setup_phase


def codes(diagnostics):
    return {d.code for d in diagnostics}


def first(diagnostics, code):
    found = [d for d in diagnostics if d.code == code]
    assert found, f"expected {code}, got {sorted(codes(diagnostics))}"
    return found[0]


def fix_kills(p, code):
    """Plan the fix for ``code``, apply it, assert the rule stops firing."""
    diagnostics = analyze_program(p)
    diagnostic = first(diagnostics, code)
    fix = plan_fix(p, diagnostic)
    assert fix is not None, f"{code} should be fixable"
    assert fix.code == code
    assert fix.description
    repaired = apply_fix(p, fix)
    assert repaired is not p
    assert code not in codes(analyze_program(repaired)), (
        f"{code} survived its own fix"
    )
    return repaired


class TestFixableRegistry:
    def test_fixable_codes(self):
        assert FIXABLE_CODES == {
            "GPS001", "GPS003", "GPS004", "GPS005", "GPS006", "GPS007",
            "GPS101", "GPS103",
        }

    def test_every_fixable_code_is_a_rule(self):
        assert FIXABLE_CODES <= set(RULES)


class TestRuleFixPairs:
    def test_gps001_split_phase(self):
        p = program([
            setup_phase(),
            Phase("it0", (
                kernel("a", 0, access(offset=0, length=256, op=MemOp.WRITE)),
                kernel("b", 1, access(offset=128, length=256, op=MemOp.WRITE)),
            ), iteration=0),
        ])
        repaired = fix_kills(p, "GPS001")
        # The racing phase became two, each a barrier apart.
        assert len(repaired.phases) == len(p.phases) + 1

    def test_gps003_init_gaps(self):
        p = program([
            Phase("setup", (
                kernel("init", 0, access(offset=0, length=PAGE, op=MemOp.WRITE)),
            ), iteration=-1),
            Phase("it0", (
                kernel("r", 0, access(offset=0, length=2 * PAGE, op=MemOp.READ)),
            ), iteration=0),
        ])
        fix_kills(p, "GPS003")

    def test_gps003_without_any_setup_phase_inserts_one(self):
        p = program([
            Phase("it0", (
                kernel("r", 0, access(offset=0, length=PAGE, op=MemOp.READ)),
            ), iteration=0),
        ])
        repaired = fix_kills(p, "GPS003")
        assert repaired.phases[0].iteration == -1

    def test_gps004_scope_back_to_weak(self):
        p = program([
            setup_phase(),
            Phase("it0", (
                kernel("w", 0, access(length=128, op=MemOp.WRITE,
                                      scope=Scope.SYS)),
            ), iteration=0),
        ])
        repaired = fix_kills(p, "GPS004")
        (phase,) = [ph for ph in repaired.phases if ph.name == "it0"]
        assert phase.kernels[0].accesses[0].scope is Scope.WEAK

    def test_gps005_scope_up_to_sys(self):
        p = program(
            [
                setup_phase(),
                Phase("it0", (
                    kernel("w", 0, access("flag", length=64, op=MemOp.WRITE)),
                ), iteration=0),
            ],
            buffers=(("buf", 4 * PAGE), BufferSpec("flag", PAGE, sync=True)),
        )
        repaired = fix_kills(p, "GPS005")
        (phase,) = [ph for ph in repaired.phases if ph.name == "it0"]
        assert phase.kernels[0].accesses[0].scope is Scope.SYS

    def test_gps006_profile_touch(self):
        phases = [setup_phase()]
        for it, offset in ((0, 0), (1, PAGE)):
            phases.append(
                Phase(f"it{it}", (
                    kernel("w", 0, access(offset=0, length=2 * PAGE,
                                          op=MemOp.WRITE)),
                    kernel("r", 1, access(offset=offset, length=PAGE,
                                          op=MemOp.READ)),
                ), iteration=it)
            )
        repaired = fix_kills(program(phases), "GPS006")
        # The reader touched the page during profiling instead of moving data.
        touches = [
            k for ph in repaired.phases if ph.iteration == 0
            for k in ph.kernels if k.gpu == 1
        ]
        assert any(
            a.op is MemOp.READ and a.offset <= PAGE < a.end
            for k in touches for a in k.accesses
        )

    def test_gps007_split_buffer(self):
        p = program([
            setup_phase(),
            Phase("it0", (
                kernel("w", 0, access(length=256, op=MemOp.WRITE)),
                kernel("a", 1, access(length=128, op=MemOp.ATOMIC)),
            ), iteration=0),
        ])
        repaired = fix_kills(p, "GPS007")
        assert any(b.name.startswith("buf.plain") for b in repaired.buffers)

    def test_gps101_drop_buffer(self):
        p = program(
            [setup_phase(), Phase("it0", (
                kernel("r", 0, access(length=128)),
            ), iteration=0)],
            buffers=(("buf", 4 * PAGE), ("ghost", PAGE)),
        )
        repaired = fix_kills(p, "GPS101")
        assert all(b.name != "ghost" for b in repaired.buffers)

    def test_gps103_insert_setup(self):
        p = program([
            Phase("it0", (
                kernel("w", 0, access(length=PAGE, op=MemOp.WRITE)),
            ), iteration=0),
        ])
        repaired = fix_kills(p, "GPS103")
        assert repaired.phases[0].iteration == -1

    @pytest.mark.parametrize("code", sorted(set(RULES) - FIXABLE_CODES))
    def test_unfixable_rules_plan_nothing(self, code, broken_program):
        diagnostics = analyze_program(broken_program)
        for diagnostic in diagnostics:
            if diagnostic.code == code:
                assert plan_fix(broken_program, diagnostic) is None


class TestPlanFixes:
    def test_orders_most_severe_first(self, broken_program):
        plans = plan_fixes(
            broken_program, analyze_program(broken_program),
            min_severity=Severity.INFO,
        )
        ranks = [d.severity.rank for d, _ in plans]
        assert ranks == sorted(ranks, reverse=True)

    def test_min_severity_filters(self, broken_program):
        diagnostics = analyze_program(broken_program)
        errors_only = plan_fixes(
            broken_program, diagnostics, min_severity=Severity.ERROR
        )
        assert all(d.severity is Severity.ERROR for d, _ in errors_only)


class TestFixProgram:
    def test_clean_program_is_identity(self):
        p = program([
            setup_phase(),
            Phase("it0", (
                kernel("r", 0, access(length=PAGE, op=MemOp.READ)),
                kernel("r1", 1, access(offset=PAGE, length=PAGE, op=MemOp.READ)),
            ), iteration=0),
        ])
        report = fix_program(p)
        assert report.program is p
        assert not report.changed
        assert report.converged
        assert report.rounds == 1

    def test_broken_fixture_converges_without_errors(self, broken_program):
        report = fix_program(broken_program, min_severity=Severity.WARNING)
        assert report.converged
        assert report.changed
        after = analyze_program(report.program)
        # GPS008 is the one error the engine cannot repair — the fixture's
        # deadlock phase has no mechanical rewrite. Everything else clears.
        errors = {d.code for d in after if d.severity is Severity.ERROR}
        assert errors == {"GPS008"}
        assert {d.code for d in report.remaining} == {"GPS008"}

    def test_rounds_bounded(self, broken_program):
        report = fix_program(broken_program, max_rounds=2)
        assert report.rounds <= 2

    def test_simulation_matches_for_clean_program(self):
        """Byte-identical simulation for programs the fixer does not touch."""
        from repro.config import default_system
        from repro.system.executor import simulate
        from repro.verify import canonical_payload

        p = program([
            setup_phase(),
            Phase("it0", (
                kernel("r", 0, access(length=PAGE, op=MemOp.READ)),
                kernel("r1", 1, access(offset=PAGE, length=PAGE, op=MemOp.READ)),
            ), iteration=0),
        ], name="fixclean")
        report = fix_program(p)
        config = default_system(2)
        assert canonical_payload(simulate(report.program, "gps", config)) == \
            canonical_payload(simulate(p, "gps", config))
