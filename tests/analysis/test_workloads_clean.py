"""Every registered workload must pass the analyzer strict-clean.

Strict-clean means no error- and no warning-severity findings at any system
size — exactly what CI's ``python -m repro lint all --strict`` gate enforces.
Info-level findings are allowed: the graph workloads deliberately mix plain
shard resets with cross-GPU atomic scatters (GPS002/GPS007 territory).
"""

from __future__ import annotations

import pytest

import repro
from repro.analysis import Severity, analyze_program

ALL_WORKLOADS = repro.workload_names() + ["mvmul"]


@pytest.mark.parametrize("name", ALL_WORKLOADS)
@pytest.mark.parametrize("num_gpus", [2, 4, 16])
def test_workload_is_strict_clean(name, num_gpus):
    program = repro.get_workload(name).build(num_gpus, scale=0.25, iterations=4)
    bad = [
        d
        for d in analyze_program(program)
        if d.severity in (Severity.ERROR, Severity.WARNING)
    ]
    assert bad == [], [str(d) for d in bad]


def test_suite_is_complete():
    """The strict-clean matrix really covers the paper's eight applications."""
    assert len(repro.workload_names()) == 8
