"""Regenerate the committed SARIF baselines.

One baseline per registered workload (built at the pinned parameters
below) and one per committed fuzz-corpus program.  The drift test and the
CI ``analysis-diff`` job re-run the analyzer and demand byte-identical
SARIF, so any diagnostic added, dropped, reworded, or reordered shows up
as a reviewable diff in this directory.

Run from the repo root after intentional analyzer changes:

    PYTHONPATH=src python tests/analysis/baselines/regen.py
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_program, render_sarif
from repro.trace.io import load_program
from repro.workloads.registry import WORKLOADS

HERE = Path(__file__).parent
VERIFY_CORPUS = HERE.parent.parent / "verify" / "corpus"

#: Pinned build parameters — change these and every baseline moves.
NUM_GPUS = 4
SCALE = 0.25
ITERATIONS = 2


def baseline_programs():
    for name in sorted(WORKLOADS):
        yield f"workload-{name}", WORKLOADS[name].build(
            NUM_GPUS, scale=SCALE, iterations=ITERATIONS
        )
    for path in sorted(VERIFY_CORPUS.glob("corpus-s*.json")):
        yield path.stem, load_program(path)


def main() -> None:
    for stale in HERE.glob("*.sarif"):
        stale.unlink()
    for name, program in baseline_programs():
        sarif = render_sarif(program, analyze_program(program))
        (HERE / f"{name}.sarif").write_text(sarif + "\n")
        print(name)


if __name__ == "__main__":
    main()
