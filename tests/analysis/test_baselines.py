"""Baseline-drift guard: analyzer output over real inputs is pinned.

``baselines/`` holds one SARIF document per registered workload (built at
pinned parameters) and per committed fuzz-corpus program.  Any change to
rules, witnesses, ordering, or the SARIF emitter must regenerate them
(``PYTHONPATH=src python tests/analysis/baselines/regen.py``) so the drift
is a reviewable diff rather than a silent behavior change.  The CI
``analysis-diff`` job runs this same comparison.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import analyze_program, render_sarif
from repro.trace.io import load_program
from repro.workloads.registry import WORKLOADS

BASELINES = Path(__file__).parent / "baselines"
VERIFY_CORPUS = Path(__file__).parent.parent / "verify" / "corpus"

NUM_GPUS = 4
SCALE = 0.25
ITERATIONS = 2

WORKLOAD_NAMES = sorted(WORKLOADS)
CORPUS_NAMES = sorted(p.stem for p in VERIFY_CORPUS.glob("corpus-s*.json"))


def assert_matches_baseline(name, program):
    path = BASELINES / f"{name}.sarif"
    assert path.exists(), f"missing baseline {path.name} — run baselines/regen.py"
    got = render_sarif(program, analyze_program(program)) + "\n"
    assert got == path.read_text(), (
        f"{name}: analyzer output drifted from the committed SARIF baseline — "
        "regenerate baselines/ if the change is intentional"
    )


def test_every_baseline_has_a_source():
    expected = {f"workload-{n}" for n in WORKLOAD_NAMES}
    expected |= set(CORPUS_NAMES)
    assert {p.stem for p in BASELINES.glob("*.sarif")} == expected


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_workload_baseline(name):
    program = WORKLOADS[name].build(NUM_GPUS, scale=SCALE, iterations=ITERATIONS)
    assert_matches_baseline(f"workload-{name}", program)


@pytest.mark.parametrize("name", CORPUS_NAMES)
def test_corpus_baseline(name):
    assert_matches_baseline(name, load_program(VERIFY_CORPUS / f"{name}.json"))


@pytest.mark.parametrize("name", CORPUS_NAMES)
def test_corpus_baselines_are_error_free(name):
    """The fuzz corpus is analyzer-clean: baselines pin only benign notes."""
    sarif = json.loads((BASELINES / f"{name}.sarif").read_text())
    (run,) = sarif["runs"]
    assert all(r["level"] != "error" for r in run["results"])
