"""Footprints and fingerprints: page math and cache-key stability."""

from __future__ import annotations

from repro.analysis import build_context, page_count, program_fingerprint
from repro.analysis.footprints import Footprint
from repro.trace.program import Phase
from repro.trace.records import MemOp

from .conftest import PAGE, access, kernel, program, setup_phase


class TestPageCount:
    def test_exact_pages(self):
        assert page_count(0, 2 * PAGE, PAGE) == 2

    def test_partial_page_rounds_up(self):
        assert page_count(0, 1, PAGE) == 1
        assert page_count(PAGE - 1, PAGE + 1, PAGE) == 2

    def test_empty_interval(self):
        assert page_count(PAGE, PAGE, PAGE) == 0


class TestFootprint:
    def test_of_interval_page_rounding(self):
        fp = Footprint.of_interval("buf", 100, PAGE + 100, PAGE)
        assert fp.byte_start == 100 and fp.byte_end == PAGE + 100
        assert fp.page_start == 0 and fp.page_end == 2 * PAGE
        assert fp.pages == 2
        assert fp.bytes == PAGE

    def test_of_site(self):
        ctx = build_context(
            program([
                Phase("p", (
                    kernel("k", 0, access(offset=64, length=128, op=MemOp.WRITE)),
                ), iteration=0),
            ])
        )
        fp = Footprint.of_site(ctx.dataflow.sites[0], PAGE)
        assert fp.buffer == "buf"
        assert (fp.byte_start, fp.byte_end) == (64, 192)
        assert fp.pages == 1

    def test_byte_overlap_and_page_sharing(self):
        a = Footprint.of_interval("buf", 0, 128, PAGE)
        b = Footprint.of_interval("buf", 256, 512, PAGE)
        assert a.byte_overlap(b) is None  # disjoint bytes...
        assert a.shares_pages(b)  # ...but the same 64 KiB page
        c = Footprint.of_interval("buf", 64, 256, PAGE)
        assert a.byte_overlap(c) == (64, 128)
        d = Footprint.of_interval("other", 0, 128, PAGE)
        assert not a.shares_pages(d)


class TestProgramFingerprint:
    def _program(self, length=128):
        return program([
            setup_phase(),
            Phase("it0", (
                kernel("r", 0, access(length=length, op=MemOp.READ)),
            ), iteration=0),
        ])

    def test_deterministic(self):
        assert program_fingerprint(self._program(), PAGE) == \
            program_fingerprint(self._program(), PAGE)

    def test_sensitive_to_program_content(self):
        assert program_fingerprint(self._program(128), PAGE) != \
            program_fingerprint(self._program(256), PAGE)

    def test_sensitive_to_page_size(self):
        p = self._program()
        assert program_fingerprint(p, PAGE) != program_fingerprint(p, 2 * PAGE)

    def test_sensitive_to_analyzer_revision(self):
        p = self._program()
        assert program_fingerprint(p, PAGE) != \
            program_fingerprint(p, PAGE, revision="test-revision")

    def test_is_hex_sha256(self):
        digest = program_fingerprint(self._program(), PAGE)
        assert len(digest) == 64
        int(digest, 16)
