"""Regenerate the fix-corpus goldens.

Each corpus entry is a fuzz-generated program with one sanitizer mutator's
defect injected (the ``before``), paired with the output of running
``fix_program`` at warning severity over it (the ``after``).  The test
suite re-runs the fixer over every ``before`` and demands byte-identical
convergence to the committed ``after``.

Run from the repo root after changing the fixer or the mutators:

    PYTHONPATH=src python tests/analysis/fixcorpus/regen.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import DEFAULT_PAGE_SIZE, Severity, fix_program
from repro.trace.io import program_to_dict
from repro.trace.program import TraceProgram
from repro.verify import generate_program
from repro.verify.sanitizer import MUTATORS

HERE = Path(__file__).parent
CORPUS_SIZE = 10


def corpus_entries():
    """Yield ``(name, before)`` pairs: mutators cycled over fuzz seeds."""
    produced = 0
    seed = 0
    while produced < CORPUS_SIZE:
        base = generate_program(seed, num_gpus=4, scale=0.25, iterations=2)
        name, _code, mutate = MUTATORS[produced % len(MUTATORS)]
        mutant = mutate(base, DEFAULT_PAGE_SIZE)
        seed += 1
        if mutant is None:
            continue
        yield f"{name}-s{seed - 1}", mutant
        produced += 1


def dump(program: TraceProgram, path: Path) -> None:
    payload = json.dumps(program_to_dict(program), indent=2, sort_keys=True)
    path.write_text(payload + "\n")


def main() -> None:
    for stale in HERE.glob("*.before.json"):
        stale.unlink()
    for stale in HERE.glob("*.after.json"):
        stale.unlink()
    for name, before in corpus_entries():
        report = fix_program(before, min_severity=Severity.WARNING)
        assert report.converged, name
        dump(before, HERE / f"{name}.before.json")
        dump(report.program, HERE / f"{name}.after.json")
        print(f"{name}: {len(report.applied)} fix(es) in {report.rounds} round(s)")


if __name__ == "__main__":
    main()
