"""Unit tests for the conventional page table with the GPS bit."""

import pytest

from repro.errors import TranslationError
from repro.memory.page_table import PageTable


@pytest.fixture
def table():
    return PageTable(gpu_id=0, page_size=65536)


class TestMapping:
    def test_map_and_lookup(self, table):
        table.map(5, resident_gpu=1, frame=42)
        pte = table.lookup(5)
        assert pte.resident_gpu == 1
        assert pte.frame == 42
        assert not pte.gps

    def test_map_with_gps_bit(self, table):
        table.map(5, resident_gpu=0, frame=1, gps=True)
        assert table.lookup(5).gps

    def test_lookup_miss_raises(self, table):
        with pytest.raises(TranslationError):
            table.lookup(99)

    def test_try_lookup_returns_none(self, table):
        assert table.try_lookup(99) is None

    def test_remap_replaces(self, table):
        table.map(5, resident_gpu=0, frame=1)
        table.map(5, resident_gpu=2, frame=7)
        assert table.lookup(5).resident_gpu == 2

    def test_contains_and_len(self, table):
        table.map(1, 0, 0)
        table.map(2, 0, 1)
        assert 1 in table
        assert 3 not in table
        assert len(table) == 2


class TestUnmap:
    def test_unmap_returns_entry(self, table):
        table.map(5, resident_gpu=0, frame=9)
        pte = table.unmap(5)
        assert pte.frame == 9
        assert 5 not in table

    def test_unmap_missing_raises(self, table):
        with pytest.raises(TranslationError):
            table.unmap(5)


class TestGPSBit:
    def test_set_and_clear(self, table):
        table.map(5, 0, 0)
        table.set_gps_bit(5, True)
        assert table.lookup(5).gps
        table.set_gps_bit(5, False)
        assert not table.lookup(5).gps

    def test_gps_pages_lists_only_marked(self, table):
        table.map(1, 0, 0, gps=True)
        table.map(2, 0, 1, gps=False)
        table.map(3, 0, 2, gps=True)
        assert sorted(table.gps_pages()) == [1, 3]


class TestLocality:
    def test_is_local(self, table):
        table.map(1, resident_gpu=0, frame=0)
        table.map(2, resident_gpu=3, frame=0)
        assert table.is_local(1)
        assert not table.is_local(2)

    def test_entries_iterates_all(self, table):
        for vpn in range(5):
            table.map(vpn, 0, vpn)
        assert len(list(table.entries())) == 5
