"""Unit tests for address arithmetic."""

import pytest

from repro.errors import TraceError
from repro.memory.address import VirtualRange, page_number, page_offset, page_range


class TestPageArithmetic:
    def test_page_number(self):
        assert page_number(0, 65536) == 0
        assert page_number(65535, 65536) == 0
        assert page_number(65536, 65536) == 1

    def test_page_offset(self):
        assert page_offset(65536 + 17, 65536) == 17

    def test_page_range_spans_boundary(self):
        assert list(page_range(65000, 2000, 65536)) == [0, 1]

    def test_page_range_single_page(self):
        assert list(page_range(0, 100, 65536)) == [0]

    def test_page_range_empty(self):
        assert list(page_range(100, 0, 65536)) == []


class TestVirtualRange:
    def test_end(self):
        assert VirtualRange(100, 50).end == 150

    def test_contains(self):
        r = VirtualRange(100, 50)
        assert r.contains(100)
        assert r.contains(149)
        assert not r.contains(150)
        assert not r.contains(99)

    def test_overlaps(self):
        a = VirtualRange(0, 100)
        assert a.overlaps(VirtualRange(50, 100))
        assert a.overlaps(VirtualRange(99, 1))
        assert not a.overlaps(VirtualRange(100, 10))

    def test_rejects_negative(self):
        with pytest.raises(TraceError):
            VirtualRange(-1, 10)
        with pytest.raises(TraceError):
            VirtualRange(0, -10)

    def test_aligned_expands_both_ends(self):
        r = VirtualRange(100, 50).aligned(64)
        assert r.start == 64
        assert r.end == 192

    def test_aligned_noop_when_aligned(self):
        r = VirtualRange(128, 128).aligned(64)
        assert (r.start, r.length) == (128, 128)

    def test_aligned_rejects_non_power_of_two(self):
        with pytest.raises(TraceError):
            VirtualRange(0, 10).aligned(48)

    def test_pages(self):
        r = VirtualRange(0, 3 * 65536)
        assert list(r.pages(65536)) == [0, 1, 2]

    def test_blocks(self):
        r = VirtualRange(0, 256)
        assert list(r.blocks(128)) == [0, 1]

    def test_split_evenly_exact(self):
        parts = VirtualRange(0, 400).split_evenly(4)
        assert [p.length for p in parts] == [100] * 4
        assert parts[0].start == 0
        assert parts[3].end == 400

    def test_split_evenly_remainder_spreads(self):
        parts = VirtualRange(0, 10).split_evenly(3)
        assert sum(p.length for p in parts) == 10
        assert [p.length for p in parts] == [4, 3, 3]

    def test_split_contiguous(self):
        parts = VirtualRange(7, 100).split_evenly(3)
        for a, b in zip(parts, parts[1:]):
            assert a.end == b.start

    def test_split_zero_parts(self):
        with pytest.raises(TraceError):
            VirtualRange(0, 10).split_evenly(0)
