"""Unit tests for the set-associative TLB."""

import pytest

from repro.errors import ConfigError
from repro.memory.tlb import TLB, TLBStats


class TestGeometry:
    def test_rejects_indivisible(self):
        with pytest.raises(ConfigError):
            TLB(entries=30, assoc=8)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            TLB(entries=0, assoc=1)

    def test_num_sets(self):
        assert TLB(entries=32, assoc=8).num_sets == 4


class TestAccess:
    def test_first_access_misses(self):
        tlb = TLB(entries=8, assoc=2)
        assert not tlb.access(0)
        assert tlb.access(0)

    def test_fills_install(self):
        tlb = TLB(entries=8, assoc=2)
        tlb.access(7)
        assert tlb.resident(7)

    def test_lru_eviction_within_set(self):
        tlb = TLB(entries=2, assoc=2)  # one set
        tlb.access(0)
        tlb.access(1)
        tlb.access(0)  # refresh 0; 1 becomes LRU
        tlb.access(2)  # evicts 1
        assert tlb.resident(0)
        assert not tlb.resident(1)

    def test_different_sets_do_not_interfere(self):
        tlb = TLB(entries=4, assoc=1)  # 4 sets, direct mapped
        for vpn in range(4):
            tlb.access(vpn)
        assert all(tlb.resident(v) for v in range(4))

    def test_stats_counting(self):
        tlb = TLB(entries=8, assoc=8)
        for _ in range(3):
            tlb.access(1)
        assert tlb.stats.misses == 1
        assert tlb.stats.hits == 2
        assert tlb.stats.accesses == 3
        assert tlb.stats.hit_rate == pytest.approx(2 / 3)

    def test_eviction_counted(self):
        tlb = TLB(entries=1, assoc=1)
        tlb.access(0)
        tlb.access(1)
        assert tlb.stats.evictions == 1


class TestAccessBatch:
    def _mirror(self, entries, assoc, vpns):
        """Reference: one scalar access per VPN on a fresh TLB."""
        tlb = TLB(entries=entries, assoc=assoc)
        misses = sum(0 if tlb.access(v) else 1 for v in vpns)
        return tlb, misses

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_scalar_access_loop(self, seed):
        import random

        rng = random.Random(seed)
        vpns = [rng.randrange(24) for _ in range(300)]
        batched = TLB(entries=8, assoc=2)
        assert batched.access_batch(vpns) == self._mirror(8, 2, vpns)[1]
        reference, _ = self._mirror(8, 2, vpns)
        assert batched.stats == reference.stats
        assert all(batched.resident(v) == reference.resident(v) for v in range(24))

    def test_empty_batch(self):
        tlb = TLB(entries=8, assoc=2)
        assert tlb.access_batch([]) == 0
        assert tlb.stats.accesses == 0

    def test_batch_evicts_lru(self):
        tlb = TLB(entries=2, assoc=2)
        assert tlb.access_batch([0, 1, 0, 2]) == 3  # 2 evicts LRU entry 1
        assert tlb.resident(0)
        assert not tlb.resident(1)
        assert tlb.stats.evictions == 1


class TestInvalidate:
    def test_invalidate_present(self):
        tlb = TLB(entries=8, assoc=8)
        tlb.access(3)
        assert tlb.invalidate(3)
        assert not tlb.resident(3)

    def test_invalidate_absent(self):
        tlb = TLB(entries=8, assoc=8)
        assert not tlb.invalidate(3)

    def test_flush_clears_everything(self):
        tlb = TLB(entries=8, assoc=2)
        for vpn in range(8):
            tlb.access(vpn)
        tlb.flush()
        assert not any(tlb.resident(v) for v in range(8))


class TestStats:
    def test_empty_hit_rate_zero(self):
        assert TLBStats().hit_rate == 0.0

    def test_merge(self):
        merged = TLBStats(hits=1, misses=2).merge(TLBStats(hits=3, misses=4, evictions=1))
        assert merged.hits == 4
        assert merged.misses == 6
        assert merged.evictions == 1
