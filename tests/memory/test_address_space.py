"""Unit tests for the shared virtual address space."""

import pytest

from repro.errors import AllocationError
from repro.memory.address_space import AddressSpace, AllocKind

PAGE = 65536


@pytest.fixture
def space():
    return AddressSpace(page_size=PAGE)


class TestAllocate:
    def test_base_is_heap_base(self, space):
        alloc = space.allocate("a", 100, AllocKind.GPS)
        assert alloc.start == AddressSpace.HEAP_BASE

    def test_allocations_page_aligned(self, space):
        space.allocate("a", 100, AllocKind.GPS)
        b = space.allocate("b", 100, AllocKind.GPS)
        assert b.start == AddressSpace.HEAP_BASE + PAGE
        assert b.start % PAGE == 0

    def test_duplicate_name_rejected(self, space):
        space.allocate("a", 100, AllocKind.GPS)
        with pytest.raises(AllocationError):
            space.allocate("a", 100, AllocKind.GPS)

    def test_zero_size_rejected(self, space):
        with pytest.raises(AllocationError):
            space.allocate("a", 0, AllocKind.GPS)

    def test_va_exhaustion(self):
        space = AddressSpace(page_size=PAGE, va_bits=29)  # 512 MiB space
        with pytest.raises(AllocationError):
            space.allocate("big", 1 << 30, AllocKind.GPS)

    def test_kinds_recorded(self, space):
        gps = space.allocate("g", 100, AllocKind.GPS)
        pinned = space.allocate("p", 100, AllocKind.PINNED, home_gpu=2)
        assert gps.kind is AllocKind.GPS
        assert pinned.kind is AllocKind.PINNED
        assert pinned.home_gpu == 2

    def test_bytes_reserved(self, space):
        space.allocate("a", 100, AllocKind.GPS)
        space.allocate("b", PAGE + 1, AllocKind.GPS)
        assert space.bytes_reserved == 3 * PAGE


class TestLookup:
    def test_get(self, space):
        space.allocate("a", 100, AllocKind.MANAGED)
        assert space.get("a").name == "a"

    def test_get_unknown(self, space):
        with pytest.raises(AllocationError):
            space.get("zzz")

    def test_find_containing(self, space):
        a = space.allocate("a", PAGE, AllocKind.GPS)
        assert space.find_containing(a.start + 10).name == "a"
        assert space.find_containing(a.start - 1) is None

    def test_gps_allocations_filter(self, space):
        space.allocate("g", 100, AllocKind.GPS)
        space.allocate("m", 100, AllocKind.MANAGED)
        assert [a.name for a in space.gps_allocations()] == ["g"]

    def test_pages(self, space):
        alloc = space.allocate("a", 3 * PAGE, AllocKind.GPS)
        assert len(list(alloc.pages(PAGE))) == 3


class TestFree:
    def test_free_removes(self, space):
        space.allocate("a", 100, AllocKind.GPS)
        space.free("a")
        with pytest.raises(AllocationError):
            space.get("a")

    def test_free_unknown(self, space):
        with pytest.raises(AllocationError):
            space.free("a")

    def test_name_reusable_after_free(self, space):
        space.allocate("a", 100, AllocKind.GPS)
        space.free("a")
        space.allocate("a", 100, AllocKind.GPS)  # no error
