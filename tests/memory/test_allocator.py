"""Unit tests for per-GPU physical memory."""

import pytest

from repro.errors import AllocationError
from repro.memory.allocator import PhysicalMemory


@pytest.fixture
def memory():
    return PhysicalMemory(gpu_id=0, capacity_bytes=10 * 65536, page_size=65536)


class TestAllocation:
    def test_frames_are_unique(self, memory):
        frames = memory.allocate_frames(10)
        assert len(set(frames)) == 10

    def test_accounting(self, memory):
        memory.allocate_frames(3)
        assert memory.frames_in_use == 3
        assert memory.bytes_in_use == 3 * 65536
        assert memory.frames_free == 7

    def test_exhaustion_raises(self, memory):
        memory.allocate_frames(10)
        with pytest.raises(AllocationError):
            memory.allocate_frame()

    def test_bulk_exhaustion_all_or_nothing(self, memory):
        memory.allocate_frames(8)
        with pytest.raises(AllocationError):
            memory.allocate_frames(3)
        # Nothing further was allocated.
        assert memory.frames_in_use == 8

    def test_capacity_below_one_page_rejected(self):
        with pytest.raises(AllocationError):
            PhysicalMemory(0, capacity_bytes=100, page_size=65536)


class TestFree:
    def test_free_recycles(self, memory):
        frame = memory.allocate_frame()
        memory.free_frame(frame)
        assert memory.frames_in_use == 0
        assert memory.allocate_frame() == frame  # recycled first

    def test_double_free_raises(self, memory):
        frame = memory.allocate_frame()
        memory.free_frame(frame)
        with pytest.raises(AllocationError):
            memory.free_frame(frame)

    def test_free_unallocated_raises(self, memory):
        with pytest.raises(AllocationError):
            memory.free_frame(5)

    def test_is_allocated(self, memory):
        frame = memory.allocate_frame()
        assert memory.is_allocated(frame)
        memory.free_frame(frame)
        assert not memory.is_allocated(frame)

    def test_full_cycle_restores_capacity(self, memory):
        frames = memory.allocate_frames(10)
        for frame in frames:
            memory.free_frame(frame)
        assert memory.frames_free == 10
        assert len(memory.allocate_frames(10)) == 10
