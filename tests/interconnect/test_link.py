"""Unit tests for links."""

import pytest

from repro.config import INFINITE_LINK, LinkConfig, PCIE6
from repro.interconnect.link import Link


@pytest.fixture
def link():
    return Link(0, 1, LinkConfig("t", bandwidth=100e9, latency=1e-6, efficiency=0.9))


class TestTransferTime:
    def test_zero_bytes(self, link):
        assert link.transfer_time(0) == 0.0

    def test_latency_plus_serialisation(self, link):
        # 90 GB/s effective; 90 KB payload = 1 us + 1 us latency.
        assert link.transfer_time(90_000) == pytest.approx(2e-6)

    def test_infinite_link_costs_latency_only(self):
        link = Link(0, 1, INFINITE_LINK)
        assert link.transfer_time(10**12) == 0.0

    def test_effective_bandwidth(self, link):
        assert link.bandwidth == pytest.approx(90e9)


class TestAccounting:
    def test_record(self, link):
        link.record(1000)
        link.record(500)
        assert link.bytes_transferred == 1500
        assert link.transfer_count == 2

    def test_negative_rejected(self, link):
        with pytest.raises(ValueError):
            link.record(-1)

    def test_reset(self, link):
        link.record(1000)
        link.reset()
        assert link.bytes_transferred == 0
        assert link.transfer_count == 0

    def test_repr_mentions_endpoints(self):
        assert "0->1" in repr(Link(0, 1, PCIE6))
