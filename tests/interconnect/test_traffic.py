"""Unit tests for the traffic matrix."""

import pytest

from repro.errors import ConfigError
from repro.interconnect.traffic import TrafficMatrix


@pytest.fixture
def traffic():
    return TrafficMatrix(4)


class TestAdd:
    def test_basic_accounting(self, traffic):
        traffic.add(0, 1, 100)
        traffic.add(0, 2, 50)
        traffic.add(3, 0, 25)
        assert traffic.total_bytes() == 175
        assert traffic.egress_bytes(0) == 150
        assert traffic.ingress_bytes(0) == 25
        assert traffic.pair_bytes(0, 1) == 100

    def test_diagonal_rejected(self, traffic):
        with pytest.raises(ConfigError):
            traffic.add(1, 1, 100)

    def test_negative_rejected(self, traffic):
        with pytest.raises(ConfigError):
            traffic.add(0, 1, -5)

    def test_broadcast(self, traffic):
        traffic.add_broadcast(0, [0, 1, 2, 3], 100)
        assert traffic.total_bytes() == 300
        assert traffic.egress_bytes(0) == 300
        assert traffic.pair_bytes(0, 0) == 0


class TestOps:
    def test_as_array_is_copy(self, traffic):
        traffic.add(0, 1, 10)
        arr = traffic.as_array()
        arr[0, 1] = 999
        assert traffic.pair_bytes(0, 1) == 10

    def test_merge(self, traffic):
        other = TrafficMatrix(4)
        traffic.add(0, 1, 10)
        other.add(0, 1, 5)
        other.add(2, 3, 7)
        traffic.merge(other)
        assert traffic.pair_bytes(0, 1) == 15
        assert traffic.pair_bytes(2, 3) == 7

    def test_merge_size_mismatch(self, traffic):
        with pytest.raises(ConfigError):
            traffic.merge(TrafficMatrix(2))

    def test_reset(self, traffic):
        traffic.add(0, 1, 10)
        traffic.reset()
        assert traffic.total_bytes() == 0

    def test_zero_gpus_rejected(self):
        with pytest.raises(ConfigError):
            TrafficMatrix(0)
