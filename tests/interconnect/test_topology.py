"""Unit tests for the crossbar topology."""

import pytest

from repro.config import LinkConfig
from repro.errors import ConfigError
from repro.interconnect.topology import CrossbarTopology

LINK = LinkConfig("t", bandwidth=100e9, latency=1e-6, efficiency=1.0)


@pytest.fixture
def topo():
    return CrossbarTopology(4, LINK)


class TestPorts:
    def test_each_gpu_has_distinct_ports(self, topo):
        egresses = {id(topo.egress_link(g)) for g in range(4)}
        ingresses = {id(topo.ingress_link(g)) for g in range(4)}
        assert len(egresses) == 4
        assert len(ingresses) == 4

    def test_zero_gpus_rejected(self):
        with pytest.raises(ConfigError):
            CrossbarTopology(0, LINK)


class TestTransfers:
    def test_transfer_time_point_to_point(self, topo):
        assert topo.transfer_time(0, 1, 100_000) == pytest.approx(2e-6)

    def test_local_transfer_is_free(self, topo):
        assert topo.transfer_time(2, 2, 100_000) == 0.0

    def test_record_touches_both_ports(self, topo):
        topo.record_transfer(0, 1, 1000)
        assert topo.egress_link(0).bytes_transferred == 1000
        assert topo.ingress_link(1).bytes_transferred == 1000
        assert topo.egress_link(1).bytes_transferred == 0

    def test_record_local_is_noop(self, topo):
        topo.record_transfer(2, 2, 1000)
        assert topo.egress_link(2).bytes_transferred == 0

    def test_path_latency(self, topo):
        assert topo.path_latency(0, 1) == 1e-6
        assert topo.path_latency(0, 0) == 0.0

    def test_reset(self, topo):
        topo.record_transfer(0, 1, 1000)
        topo.reset()
        assert topo.egress_link(0).bytes_transferred == 0


class TestBroadcast:
    def test_broadcast_scales_with_remote_count(self, topo):
        one = topo.broadcast_time(0, [1], 100_000)
        three = topo.broadcast_time(0, [1, 2, 3], 100_000)
        assert three > one
        # Replicas share the egress port: 3x payload through one port.
        assert three == pytest.approx(1e-6 + 3e-6)

    def test_broadcast_skips_self(self, topo):
        with_self = topo.broadcast_time(0, [0, 1], 100_000)
        without = topo.broadcast_time(0, [1], 100_000)
        assert with_self == without

    def test_broadcast_empty(self, topo):
        assert topo.broadcast_time(0, [0], 100_000) == 0.0
