"""Tests for switch-tree and ring topologies."""

import pytest

from repro.config import LinkConfig
from repro.errors import ConfigError
from repro.interconnect.variants import RingTopology, SwitchTopology

LINK = LinkConfig("t", bandwidth=100e9, latency=1e-6, efficiency=1.0)


class TestSwitchTopology:
    def test_core_bandwidth_from_oversubscription(self):
        topo = SwitchTopology(4, LINK, oversubscription=2.0)
        assert topo.core_link.bandwidth == pytest.approx(200e9)

    def test_small_transfer_port_bound(self):
        topo = SwitchTopology(4, LINK, oversubscription=2.0)
        # Core is faster than a single port, so one transfer is port-bound.
        assert topo.transfer_time(0, 1, 100_000) == pytest.approx(2e-6)

    def test_heavy_oversubscription_core_bound(self):
        topo = SwitchTopology(4, LINK, oversubscription=8.0)
        # Core at 50 GB/s is slower than the 100 GB/s port.
        assert topo.transfer_time(0, 1, 100_000) == pytest.approx(1e-6 + 2e-6)

    def test_core_accounting(self):
        topo = SwitchTopology(4, LINK)
        topo.record_transfer(0, 1, 1000)
        topo.record_transfer(2, 3, 500)
        assert topo.core_link.bytes_transferred == 1500
        assert topo.egress_link(0).bytes_transferred == 1000

    def test_core_utilisation(self):
        topo = SwitchTopology(4, LINK, oversubscription=2.0)
        topo.record_transfer(0, 1, 200_000)
        assert topo.core_utilisation(1e-3) == pytest.approx(0.001)
        assert topo.core_utilisation(0.0) == 0.0

    def test_reset_clears_core(self):
        topo = SwitchTopology(4, LINK)
        topo.record_transfer(0, 1, 1000)
        topo.reset()
        assert topo.core_link.bytes_transferred == 0

    def test_rejects_undersubscription(self):
        with pytest.raises(ConfigError):
            SwitchTopology(4, LINK, oversubscription=0.5)


class TestRingTopology:
    def test_hops_min_direction(self):
        ring = RingTopology(8, LINK)
        assert ring.hops(0, 1) == 1
        assert ring.hops(0, 7) == 1  # wraps the other way
        assert ring.hops(0, 4) == 4
        assert ring.hops(3, 3) == 0

    def test_transfer_time_scales_with_hops(self):
        ring = RingTopology(8, LINK)
        near = ring.transfer_time(0, 1, 100_000)
        far = ring.transfer_time(0, 4, 100_000)
        assert far == pytest.approx(4 * near)

    def test_latency_accumulates(self):
        ring = RingTopology(8, LINK)
        assert ring.path_latency(0, 3) == pytest.approx(3e-6)

    def test_path_direction_choice(self):
        ring = RingTopology(6, LINK)
        clockwise = ring.path(0, 2)
        assert [link.src for link in clockwise] == [0, 1]
        counter = ring.path(0, 5)
        assert [link.src for link in counter] == [0]
        assert counter[0].dst == 5

    def test_record_charges_every_hop(self):
        ring = RingTopology(6, LINK)
        ring.record_transfer(0, 2, 1000)
        assert ring.egress_link(0).bytes_transferred == 1000
        assert ring.egress_link(1).bytes_transferred == 1000
        assert ring.egress_link(2).bytes_transferred == 0

    def test_local_transfer_free(self):
        ring = RingTopology(4, LINK)
        assert ring.transfer_time(2, 2, 1000) == 0.0
        ring.record_transfer(2, 2, 1000)
        assert ring.egress_link(2).bytes_transferred == 0

    def test_ingress_is_neighbors_clockwise_link(self):
        ring = RingTopology(4, LINK)
        assert ring.ingress_link(1) is ring.egress_link(0)

    def test_reset(self):
        ring = RingTopology(4, LINK)
        ring.record_transfer(0, 2, 1000)
        ring.reset()
        assert ring.egress_link(0).bytes_transferred == 0

    def test_two_gpus_minimum(self):
        with pytest.raises(ConfigError):
            RingTopology(1, LINK)
