"""Unit tests for the Figure 3 platform data."""

from repro.interconnect.platforms import PLATFORMS, bandwidth_gap_summary


class TestPlatforms:
    def test_five_generations(self):
        assert len(PLATFORMS) == 5

    def test_chronological_improvement(self):
        locals_ = [p.local_bandwidth for p in PLATFORMS]
        remotes = [p.remote_bandwidth for p in PLATFORMS]
        assert locals_ == sorted(locals_)
        assert remotes == sorted(remotes)

    def test_gap_persists(self):
        # Figure 3's claim: despite a ~38x remote-bandwidth improvement,
        # remote stays >= ~2.6x slower than local on every platform.
        for platform in PLATFORMS:
            assert platform.gap >= 2.5

    def test_remote_improvement_38x(self):
        improvement = PLATFORMS[-1].remote_bandwidth / PLATFORMS[0].remote_bandwidth
        assert improvement == 37.5  # "improved 38x" (section 2)

    def test_summary_rows(self):
        rows = bandwidth_gap_summary()
        assert len(rows) == 5
        assert rows[0]["platform"] == "Discrete"
        assert rows[-1]["interconnect"].startswith("NVLink 3")
        for row in rows:
            assert row["local_gb_s"] > row["remote_gb_s"]
