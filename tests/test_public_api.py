"""API-contract tests: the documented public surface exists and is sane."""

import importlib

import pytest

import repro


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.3.0"

    def test_key_callables(self):
        assert callable(repro.simulate)
        assert callable(repro.speedup_over_single_gpu)
        assert callable(repro.default_system)
        assert callable(repro.get_workload)
        assert callable(repro.make_executor)

    def test_registries_consistent(self):
        assert set(repro.FIGURE8_ORDER) <= set(repro.PARADIGMS)
        assert set(repro.FIGURE8_ORDER) <= set(repro.LABELS)
        assert len(repro.workload_names()) == 8


class TestSubpackages:
    MODULES = [
        "repro.cache",
        "repro.core",
        "repro.core.litmus",
        "repro.gpu",
        "repro.harness",
        "repro.harness.ascii_plot",
        "repro.harness.export",
        "repro.harness.regression",
        "repro.interconnect",
        "repro.memory",
        "repro.obs",
        "repro.obs.collector",
        "repro.obs.export",
        "repro.obs.profile",
        "repro.obs.registry",
        "repro.obs.span",
        "repro.paradigms",
        "repro.sim",
        "repro.system",
        "repro.system.metrics",
        "repro.system.timeline",
        "repro.trace",
        "repro.trace.io",
        "repro.workloads",
        "repro.cli",
    ]

    @pytest.mark.parametrize("module", MODULES)
    def test_imports_and_documented(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__, f"{module} lacks a module docstring"

    def test_public_classes_documented(self):
        from repro.core.runtime import GPSRuntime
        from repro.core.write_queue import RemoteWriteQueue
        from repro.paradigms.base import ParadigmExecutor
        from repro.sim.engine import Engine

        for cls in (GPSRuntime, RemoteWriteQueue, ParadigmExecutor, Engine):
            assert cls.__doc__
            for name, attr in vars(cls).items():
                if callable(attr) and not name.startswith("_"):
                    assert attr.__doc__, f"{cls.__name__}.{name} lacks a docstring"


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        leaf_errors = [
            errors.ConfigError,
            errors.AllocationError,
            errors.TranslationError,
            errors.SubscriptionError,
            errors.TraceError,
            errors.SimulationError,
            errors.ParadigmError,
        ]
        for err in leaf_errors:
            assert issubclass(err, errors.ReproError)
            assert issubclass(err, Exception)
