"""Shared fixtures: small systems and tiny workload scales.

Tests run the same machinery as the benchmarks but at reduced scale —
small buffers, few iterations — so the whole suite stays fast while still
exercising every code path end-to-end.
"""

from __future__ import annotations

import pytest

import repro
from repro.config import GPSConfig, GPUConfig, PCIE6, SystemConfig, UMConfig

#: Workload scale used across tests: big enough for multi-page shards,
#: small enough to expand in milliseconds.
TINY = 0.1


@pytest.fixture(autouse=True)
def _no_persistent_cache(monkeypatch):
    """Keep the runner's disk cache out of the unit suite.

    Model changes must surface as test failures, never be papered over by
    stale persisted results — and tests must not litter ``.repro-cache/``.
    Cache-specific tests re-enable the layer against a tmp directory by
    overriding these variables themselves.
    """
    monkeypatch.setenv("REPRO_NO_CACHE", "1")


@pytest.fixture
def system4() -> SystemConfig:
    """The paper's default 4-GPU PCIe 6.0 evaluation system."""
    return repro.default_system(4, PCIE6)


@pytest.fixture
def system2() -> SystemConfig:
    """A 2-GPU system for pairwise subscription corner cases."""
    return repro.default_system(2, PCIE6)


@pytest.fixture
def system1() -> SystemConfig:
    """Single-GPU baseline system."""
    return repro.default_system(1, PCIE6)


@pytest.fixture
def gps_config() -> GPSConfig:
    """Default GPS structure parameters (Table 1)."""
    return GPSConfig()


@pytest.fixture
def gpu_config() -> GPUConfig:
    """Default GV100 parameters (Table 1)."""
    return GPUConfig()


@pytest.fixture
def um_config() -> UMConfig:
    """Default Unified Memory cost parameters."""
    return UMConfig()


@pytest.fixture
def jacobi_program():
    """A tiny 4-GPU Jacobi trace (setup + 2 iterations)."""
    return repro.get_workload("jacobi").build(4, scale=TINY, iterations=2)


@pytest.fixture
def pagerank_program():
    """A tiny 4-GPU Pagerank trace (setup + 2 iterations)."""
    return repro.get_workload("pagerank").build(4, scale=TINY, iterations=2)


def build(workload: str, num_gpus: int = 4, scale: float = TINY, iterations: int = 2):
    """Convenience builder used throughout the suite."""
    return repro.get_workload(workload).build(num_gpus, scale=scale, iterations=iterations)
