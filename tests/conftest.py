"""Shared fixtures: small systems and tiny workload scales.

Tests run the same machinery as the benchmarks but at reduced scale —
small buffers, few iterations — so the whole suite stays fast while still
exercising every code path end-to-end.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

import repro
from repro.config import GPSConfig, GPUConfig, PCIE6, SystemConfig, UMConfig

#: Workload scale used across tests: big enough for multi-page shards,
#: small enough to expand in milliseconds.
TINY = 0.1


# Keep the runner's disk cache out of the unit suite. Model changes must
# surface as test failures, never be papered over by stale persisted
# results — and tests must not litter ``.repro-cache/``. Applied at import
# time (not as a function-scoped autouse fixture) so class- and
# session-scoped result fixtures — which set up before any function-scoped
# fixture — see it too, and so the env-leak guard below treats it as the
# baseline. Cache-specific tests re-enable the layer against a tmp
# directory by overriding these variables themselves.
os.environ.setdefault("REPRO_NO_CACHE", "1")


# --- process-global leak detection -----------------------------------------
#
# The service, e2e, and verify suites toggle process-global knobs
# (``REPRO_NO_CACHE``, ``REPRO_CACHE_DIR``, ``REPRO_MAX_WORKERS``, ...)
# around live servers and process pools. A knob left set — or a stray
# ``.repro-cache/`` or ``.repro-store/`` materialised in the working
# directory — silently changes
# the behaviour of every later test in the run, which is exactly the
# order-dependence this suite must never have. A fixture can't police this
# (its teardown runs *before* monkeypatch's restore), so the check brackets
# the whole runtest protocol: snapshot before any fixture sets up, compare
# after every finalizer has run. Leaks are repaired *and* reported, so the
# offending test errors instead of its victims failing.


def _repro_env() -> "dict[str, str]":
    return {k: v for k, v in os.environ.items() if k.startswith("REPRO_")}


#: Working-directory litter the teardown guard polices.
_STRAY_DIRS = (".repro-cache", ".repro-store")


@pytest.hookimpl(wrapper=True)
def pytest_runtest_setup(item):
    item.stash[_ENV_KEY] = _repro_env()
    item.stash[_CACHE_KEY] = {
        name: (Path.cwd() / name).exists() for name in _STRAY_DIRS
    }
    return (yield)


_ENV_KEY = pytest.StashKey()
_CACHE_KEY = pytest.StashKey()


@pytest.hookimpl(wrapper=True)
def pytest_runtest_teardown(item, nextitem):
    result = (yield)  # every fixture finalizer (monkeypatch included) runs in here
    before = item.stash.get(_ENV_KEY, None)
    if before is None:  # setup never ran (collection error)
        return
    after = _repro_env()
    leaks = []
    for key in before.keys() | after.keys():
        if before.get(key) != after.get(key):
            leaks.append(f"{key}: {before.get(key)!r} -> {after.get(key)!r}")
            if key in before:  # repair for the tests that follow
                os.environ[key] = before[key]
            else:
                os.environ.pop(key, None)
    existed = item.stash.get(_CACHE_KEY, {})
    for name in _STRAY_DIRS:
        stray = Path.cwd() / name
        if not existed.get(name, True) and stray.exists():
            import shutil

            shutil.rmtree(stray, ignore_errors=True)
            leaks.append(f"created {stray}")
    if leaks:
        pytest.fail(
            f"{item.nodeid} leaked process-global state: " + "; ".join(leaks),
            pytrace=False,
        )
    return result


@pytest.fixture
def system4() -> SystemConfig:
    """The paper's default 4-GPU PCIe 6.0 evaluation system."""
    return repro.default_system(4, PCIE6)


@pytest.fixture
def system2() -> SystemConfig:
    """A 2-GPU system for pairwise subscription corner cases."""
    return repro.default_system(2, PCIE6)


@pytest.fixture
def system1() -> SystemConfig:
    """Single-GPU baseline system."""
    return repro.default_system(1, PCIE6)


@pytest.fixture
def gps_config() -> GPSConfig:
    """Default GPS structure parameters (Table 1)."""
    return GPSConfig()


@pytest.fixture
def gpu_config() -> GPUConfig:
    """Default GV100 parameters (Table 1)."""
    return GPUConfig()


@pytest.fixture
def um_config() -> UMConfig:
    """Default Unified Memory cost parameters."""
    return UMConfig()


@pytest.fixture
def jacobi_program():
    """A tiny 4-GPU Jacobi trace (setup + 2 iterations)."""
    return repro.get_workload("jacobi").build(4, scale=TINY, iterations=2)


@pytest.fixture
def pagerank_program():
    """A tiny 4-GPU Pagerank trace (setup + 2 iterations)."""
    return repro.get_workload("pagerank").build(4, scale=TINY, iterations=2)


def build(workload: str, num_gpus: int = 4, scale: float = TINY, iterations: int = 2):
    """Convenience builder used throughout the suite."""
    return repro.get_workload(workload).build(num_gpus, scale=scale, iterations=iterations)
