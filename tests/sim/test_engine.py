"""Unit tests for the discrete-event task-graph scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestBasicScheduling:
    def test_empty_graph(self):
        assert Engine().run() == 0.0

    def test_single_task(self):
        engine = Engine()
        task = engine.task("t", 2.5)
        assert engine.run() == 2.5
        assert task.start == 0.0
        assert task.end == 2.5

    def test_independent_tasks_overlap(self):
        engine = Engine()
        engine.task("a", 1.0)
        engine.task("b", 2.0)
        assert engine.run() == 2.0

    def test_dependency_chain(self):
        engine = Engine()
        a = engine.task("a", 1.0)
        b = engine.task("b", 2.0, deps=[a])
        assert engine.run() == 3.0
        assert b.start == 1.0

    def test_diamond(self):
        engine = Engine()
        a = engine.task("a", 1.0)
        b = engine.task("b", 2.0, deps=[a])
        c = engine.task("c", 5.0, deps=[a])
        d = engine.task("d", 1.0, deps=[b, c])
        assert engine.run() == 7.0
        assert d.start == 6.0


class TestResources:
    def test_resource_serialises(self):
        engine = Engine()
        gpu = engine.resource("gpu")
        engine.task("a", 1.0, resource=gpu)
        engine.task("b", 1.0, resource=gpu)
        assert engine.run() == 2.0

    def test_different_resources_overlap(self):
        engine = Engine()
        engine.task("a", 1.0, resource=engine.resource("x"))
        engine.task("b", 1.0, resource=engine.resource("y"))
        assert engine.run() == 1.0

    def test_resource_is_shared_by_name(self):
        engine = Engine()
        assert engine.resource("x") is engine.resource("x")

    def test_busy_time_tracked(self):
        engine = Engine()
        gpu = engine.resource("gpu")
        engine.task("a", 1.5, resource=gpu)
        engine.task("b", 0.5, resource=gpu)
        engine.run()
        assert gpu.busy_time == 2.0

    def test_ready_order_fifo_on_resource(self):
        engine = Engine()
        link = engine.resource("link")
        a = engine.task("a", 1.0)
        early = engine.task("early", 1.0, resource=link, deps=[a])
        late_dep = engine.task("ld", 2.0)
        late = engine.task("late", 1.0, resource=link, deps=[late_dep])
        engine.run()
        assert early.start == 1.0
        assert late.start == 2.0  # link free again at 2.0


class TestBarrier:
    def test_barrier_joins(self):
        engine = Engine()
        a = engine.task("a", 1.0)
        b = engine.task("b", 3.0)
        bar = engine.barrier("bar", [a, b])
        engine.run()
        assert bar.start == 3.0
        assert bar.end == 3.0

    def test_phase_chaining(self):
        engine = Engine()
        gpu = engine.resource("gpu")
        k1 = engine.task("k1", 1.0, resource=gpu)
        bar = engine.barrier("bar", [k1])
        k2 = engine.task("k2", 1.0, resource=gpu, deps=[bar])
        assert engine.run() == 2.0
        assert k2.start == 1.0


class TestErrors:
    def test_negative_duration(self):
        with pytest.raises(SimulationError):
            Engine().task("bad", -1.0)

    def test_unscheduled_times_raise(self):
        engine = Engine()
        task = engine.task("t", 1.0)
        with pytest.raises(SimulationError):
            _ = task.start

    def test_double_run(self):
        engine = Engine()
        engine.task("t", 1.0)
        engine.run()
        with pytest.raises(SimulationError):
            engine.run()

    def test_add_after_run(self):
        engine = Engine()
        engine.run()
        with pytest.raises(SimulationError):
            engine.task("t", 1.0)

    def test_makespan_before_run(self):
        with pytest.raises(SimulationError):
            Engine().makespan()

    def test_makespan_after_run(self):
        engine = Engine()
        engine.task("t", 4.0)
        engine.run()
        assert engine.makespan() == 4.0
