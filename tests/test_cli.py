"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("jacobi", "pagerank", "hit"):
            assert name in out
        assert "gps" in out


class TestRun:
    def test_run_gps(self, capsys):
        code = main(
            ["run", "jacobi", "--paradigm", "gps", "--scale", "0.1", "--iterations", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "interconnect" in out

    def test_run_um_reports_faults(self, capsys):
        main(["run", "jacobi", "--paradigm", "um", "--scale", "0.1", "--iterations", "2"])
        assert "faults" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "zzz"])

    def test_unknown_paradigm_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "jacobi", "--paradigm", "zzz"])


class TestCompare:
    def test_bar_chart_output(self, capsys):
        code = main(["compare", "jacobi", "--scale", "0.1", "--iterations", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GPS" in out
        assert "#" in out


class TestFigure:
    def test_table2(self, capsys):
        assert main(["figure", "table2"]) == 0
        out = capsys.readouterr().out
        assert "jacobi" in out
        assert "All-to-all" in out

    def test_fig3(self, capsys):
        assert main(["figure", "fig3"]) == 0
        assert "DGX" in capsys.readouterr().out

    def test_fig9_with_json_export(self, capsys, tmp_path):
        path = tmp_path / "fig9.json"
        code = main(
            [
                "figure",
                "fig9",
                "--scale",
                "0.1",
                "--iterations",
                "2",
                "--json",
                str(path),
            ]
        )
        assert code == 0
        data = json.loads(path.read_text())
        assert data["figure"] == "fig9"

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_figure_reports_cache_stats(self, capsys):
        from repro.harness.runner import clear_run_cache

        clear_run_cache()
        assert main(["figure", "fig9", "--scale", "0.1", "--iterations", "2"]) == 0
        assert "cache:" in capsys.readouterr().out


class TestCache:
    @pytest.fixture
    def cache_dir(self, tmp_path, monkeypatch):
        from repro.harness.runner import clear_run_cache

        monkeypatch.setenv("REPRO_NO_CACHE", "")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_run_cache()
        yield tmp_path
        clear_run_cache()

    def test_show_disabled(self, capsys, monkeypatch):
        from repro.harness.runner import clear_run_cache

        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        clear_run_cache()
        assert main(["cache", "show"]) == 0
        assert "disabled" in capsys.readouterr().out

    def test_show_and_clear(self, capsys, cache_dir):
        from repro.harness.runner import run_simulation

        run_simulation("jacobi", "memcpy", 2, scale=0.1, iterations=2)
        assert main(["cache", "show"]) == 0
        out = capsys.readouterr().out
        assert str(cache_dir) in out
        assert "entries" in out
        assert main(["cache", "clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert list(cache_dir.glob("*.json")) == []

    def test_default_action_is_show(self, capsys, cache_dir):
        assert main(["cache"]) == 0
        assert "persistent cache" in capsys.readouterr().out
