"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestList:
    def test_lists_workloads(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("jacobi", "pagerank", "hit"):
            assert name in out
        assert "gps" in out


class TestRun:
    def test_run_gps(self, capsys):
        code = main(
            ["run", "jacobi", "--paradigm", "gps", "--scale", "0.1", "--iterations", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert "interconnect" in out

    def test_run_um_reports_faults(self, capsys):
        main(["run", "jacobi", "--paradigm", "um", "--scale", "0.1", "--iterations", "2"])
        assert "faults" in capsys.readouterr().out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "zzz"])

    def test_unknown_paradigm_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "jacobi", "--paradigm", "zzz"])


class TestCompare:
    def test_bar_chart_output(self, capsys):
        code = main(["compare", "jacobi", "--scale", "0.1", "--iterations", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GPS" in out
        assert "#" in out


class TestFigure:
    def test_table2(self, capsys):
        assert main(["figure", "table2"]) == 0
        out = capsys.readouterr().out
        assert "jacobi" in out
        assert "All-to-all" in out

    def test_fig3(self, capsys):
        assert main(["figure", "fig3"]) == 0
        assert "DGX" in capsys.readouterr().out

    def test_fig9_with_json_export(self, capsys, tmp_path):
        path = tmp_path / "fig9.json"
        code = main(
            [
                "figure",
                "fig9",
                "--scale",
                "0.1",
                "--iterations",
                "2",
                "--json",
                str(path),
            ]
        )
        assert code == 0
        data = json.loads(path.read_text())
        assert data["figure"] == "fig9"

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_figure_reports_cache_stats(self, capsys):
        from repro.harness.runner import clear_run_cache

        clear_run_cache()
        assert main(["figure", "fig9", "--scale", "0.1", "--iterations", "2"]) == 0
        assert "cache:" in capsys.readouterr().out


class TestCache:
    @pytest.fixture
    def cache_dir(self, tmp_path, monkeypatch):
        from repro.harness.runner import clear_run_cache

        monkeypatch.setenv("REPRO_NO_CACHE", "")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_run_cache()
        yield tmp_path
        clear_run_cache()

    def test_show_disabled(self, capsys, monkeypatch):
        from repro.harness.runner import clear_run_cache

        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        clear_run_cache()
        assert main(["cache", "show"]) == 0
        assert "disabled" in capsys.readouterr().out

    def test_show_and_clear(self, capsys, cache_dir):
        from repro.harness.runner import run_simulation

        run_simulation("jacobi", "memcpy", 2, scale=0.1, iterations=2)
        assert main(["cache", "show"]) == 0
        out = capsys.readouterr().out
        assert str(cache_dir) in out
        assert "entries" in out
        assert main(["cache", "clear"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert list(cache_dir.glob("*.json")) == []

    def test_default_action_is_show(self, capsys, cache_dir):
        assert main(["cache"]) == 0
        assert "persistent cache" in capsys.readouterr().out

    def test_show_reports_fleet_after_run_many(self, capsys):
        from repro.harness.runner import SimJob, clear_run_cache, run_many

        clear_run_cache()
        run_many([SimJob("jacobi", "memcpy", 2, scale=0.1, iterations=2)])
        assert main(["cache", "show"]) == 0
        out = capsys.readouterr().out
        assert "fleet: 1 run_many call(s)" in out
        assert "1 computed" in out
        clear_run_cache()

    def test_show_empty_cache_dir_exits_zero_with_stable_columns(
        self, capsys, cache_dir
    ):
        # Satellite pin: an empty (or never-populated) cache directory is a
        # normal state — exit 0, fixed column order, 0 entries.
        assert main(["cache", "show"]) == 0
        lines = capsys.readouterr().out.splitlines()
        labels = [line.split(":")[0].strip() for line in lines]
        assert labels == ["persistent cache", "model fingerprint", "entries"]
        assert "0 (" in lines[2]
        # Columns align: every label field is padded to the same width.
        assert len({line.index(":") for line in lines}) == 1

    def test_show_missing_cache_dir_exits_zero(self, capsys, tmp_path, monkeypatch):
        from repro.harness.runner import clear_run_cache

        monkeypatch.setenv("REPRO_NO_CACHE", "")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "never-created"))
        clear_run_cache()
        assert main(["cache", "show"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        clear_run_cache()

    def test_show_column_order_stable_when_populated(self, capsys, cache_dir):
        from repro.harness.runner import run_simulation

        run_simulation("jacobi", "memcpy", 2, scale=0.1, iterations=2)
        assert main(["cache", "show"]) == 0
        lines = capsys.readouterr().out.splitlines()
        labels = [line.split(":")[0].strip() for line in lines if ":" in line]
        assert labels[:4] == [
            "persistent cache",
            "model fingerprint",
            "entries",
            "this process",
        ]


class TestServiceVerbs:
    """The serve/submit/status/result verbs (transport errors only; the live
    round-trip is covered by tests/service/)."""

    UNREACHABLE = ["--url", "http://127.0.0.1:9", "--timeout", "0.5"]

    def test_submit_unreachable_exits_2(self, capsys):
        assert main(["submit", "jacobi", *self.UNREACHABLE]) == 2
        assert "error" in capsys.readouterr().err

    def test_status_unreachable_exits_2(self, capsys):
        assert main(["status", "job-0", *self.UNREACHABLE[:2]]) == 2
        assert "error" in capsys.readouterr().err

    def test_result_unreachable_exits_2(self, capsys):
        assert main(["result", "job-0", *self.UNREACHABLE[:2]]) == 2
        assert "error" in capsys.readouterr().err

    def test_submit_rejects_unknown_paradigm_locally(self):
        with pytest.raises(SystemExit):
            main(["submit", "jacobi", "--paradigm", "zzz", *self.UNREACHABLE])


class TestTrace:
    def test_stencil_alias_writes_valid_trace(self, capsys, tmp_path):
        path = tmp_path / "stencil.trace.json"
        code = main(
            ["trace", "stencil", "--gpus", "2", "--scale", "0.1",
             "--iterations", "2", "--out", str(path), "--validate"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace validation: OK" in out
        assert "ui.perfetto.dev" in out
        payload = json.loads(path.read_text())
        assert payload["otherData"]["num_gpus"] == 2
        assert any(e["ph"] == "X" for e in payload["traceEvents"])

    def test_metrics_csv_export(self, capsys, tmp_path):
        trace_path = tmp_path / "t.trace.json"
        metrics_path = tmp_path / "m.csv"
        code = main(
            ["trace", "jacobi", "--gpus", "2", "--scale", "0.1",
             "--iterations", "2", "--out", str(trace_path),
             "--metrics", str(metrics_path), "--top", "0"]
        )
        assert code == 0
        assert metrics_path.read_text().startswith("counter,value")
        assert "counters" in capsys.readouterr().out


class TestProfile:
    def test_prints_self_time_rows(self, capsys):
        code = main(
            ["profile", "stencil", "--gpus", "2", "--scale", "0.1",
             "--iterations", "2", "--top", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "self-time profile: jacobi / gps" in out
        assert "[kernel]" in out


class TestExportTrace:
    def test_round_trips_through_run_trace(self, capsys, tmp_path):
        path = tmp_path / "prog.json"
        code = main(
            ["export-trace", "jacobi", str(path), "--gpus", "2",
             "--scale", "0.1", "--iterations", "2"]
        )
        assert code == 0
        assert "phases" in capsys.readouterr().out
        assert main(["run-trace", str(path)]) == 0
        assert "simulated time" in capsys.readouterr().out


class TestLint:
    @pytest.fixture
    def broken_path(self):
        from pathlib import Path

        path = Path(__file__).parent / "analysis" / "fixtures" / "broken_trace.json"
        return str(path)

    @pytest.fixture
    def warning_path(self, tmp_path):
        """A trace whose worst finding is a warning (an unused buffer)."""
        from repro.trace.io import save_program
        from repro.trace.program import BufferSpec, KernelSpec, Phase, TraceProgram
        from repro.trace.records import AccessRange, MemOp

        page = 65536
        program = TraceProgram(
            "warny",
            1,
            (BufferSpec("buf", page), BufferSpec("ghost", page)),
            (
                Phase(
                    "setup",
                    (
                        KernelSpec(
                            "init", 0, 1.0,
                            (AccessRange("buf", 0, page, MemOp.WRITE),),
                        ),
                    ),
                    iteration=-1,
                ),
            ),
        )
        path = tmp_path / "warny.json"
        save_program(program, path)
        return str(path)

    def test_broken_trace_exits_2(self, capsys, broken_path):
        assert main(["lint", broken_path]) == 2
        out = capsys.readouterr().out
        assert "[error] GPS001 weak-write-write-race" in out
        assert "error(s)" in out

    def test_broken_trace_json_format(self, capsys, broken_path):
        assert main(["lint", broken_path, "--format", "json"]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["program"] == "broken-fixture"
        assert payload["max_severity"] == "error"

    def test_broken_trace_sarif_format(self, capsys, broken_path):
        assert main(["lint", broken_path, "--format", "sarif", "--strict"]) == 2
        sarif = json.loads(capsys.readouterr().out)
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        fired = {r["ruleId"] for r in run["results"]}
        declared = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert fired == declared  # the fixture trips every registered rule

    def test_warning_trace_strict_exits_1(self, capsys, warning_path):
        assert main(["lint", warning_path, "--strict"]) == 1
        assert "GPS101" in capsys.readouterr().out

    def test_warning_trace_lenient_exits_0(self, warning_path):
        assert main(["lint", warning_path]) == 0

    def test_select_limits_rules(self, capsys, broken_path):
        assert main(["lint", broken_path, "--select", "GPS102,GPS104"]) == 0
        out = capsys.readouterr().out
        assert "GPS102" in out
        assert "GPS001" not in out

    def test_ignore_drops_rules(self, capsys, warning_path):
        assert main(["lint", warning_path, "--strict", "--ignore", "GPS1"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_workload_target_is_clean(self, capsys):
        code = main(
            ["lint", "jacobi", "--strict", "--gpus", "4",
             "--scale", "0.1", "--iterations", "2"]
        )
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_all_workloads_strict_clean(self, capsys):
        code = main(
            ["lint", "all", "--strict", "--gpus", "4",
             "--scale", "0.1", "--iterations", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        for name in ("jacobi", "pagerank", "hit"):
            assert name in out

    def test_all_workloads_json_wraps_programs(self, capsys):
        main(["lint", "all", "--format", "json", "--gpus", "2",
              "--scale", "0.1", "--iterations", "2"])
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["programs"]) == 8

    def test_unknown_target_rejected(self):
        from repro.errors import TraceError

        with pytest.raises(TraceError):
            main(["lint", "no-such-workload"])


class TestLintFix:
    @pytest.fixture
    def dirty_path(self):
        from pathlib import Path

        path = (Path(__file__).parent / "analysis" / "fixcorpus"
                / "ww-overlap-s0.before.json")
        return str(path)

    def test_fix_repairs_to_strict_clean(self, capsys, dirty_path):
        assert main(["lint", dirty_path, "--fix", "--strict"]) == 0
        captured = capsys.readouterr()
        assert "0 error(s), 0 warning(s)" in captured.out
        assert "applied 1 fix(es)" in captured.err
        assert "GPS001" in captured.err

    def test_fix_out_writes_repaired_trace(self, capsys, tmp_path, dirty_path):
        from repro.analysis import Severity, analyze_program
        from repro.trace.io import load_program

        out_path = tmp_path / "fixed.json"
        assert main(["lint", dirty_path, "--fix-out", str(out_path),
                     "--strict"]) == 0
        assert "wrote repaired trace" in capsys.readouterr().err
        repaired = load_program(out_path)
        assert not [
            d for d in analyze_program(repaired)
            if d.severity.rank >= Severity.WARNING.rank
        ]

    def test_fix_out_requires_single_target(self, capsys, tmp_path, dirty_path):
        code = main(["lint", dirty_path, dirty_path,
                     "--fix-out", str(tmp_path / "x.json")])
        assert code == 2
        assert "exactly one target" in capsys.readouterr().err

    @pytest.fixture
    def warn_path(self, tmp_path):
        """A trace whose only finding is GPS101 (unused buffer, warning)."""
        from repro.trace.io import save_program
        from repro.trace.program import BufferSpec, KernelSpec, Phase, TraceProgram
        from repro.trace.records import AccessRange, MemOp

        page = 65536
        program = TraceProgram(
            "warny", 1,
            (BufferSpec("buf", page), BufferSpec("ghost", page)),
            (
                Phase("setup", (
                    KernelSpec("init", 0, 1.0,
                               (AccessRange("buf", 0, page, MemOp.WRITE),)),
                ), iteration=-1),
            ),
        )
        path = tmp_path / "warny.json"
        save_program(program, path)
        return str(path)

    def test_fix_level_error_skips_warnings(self, capsys, warn_path):
        # GPS101 is warning severity: at --fix-level error it survives the
        # fixer, so strict lint still fails...
        assert main(["lint", warn_path, "--fix", "--fix-level", "error",
                     "--strict"]) == 1
        assert "GPS101" in capsys.readouterr().out
        # ...while the default level (warning) repairs it.
        assert main(["lint", warn_path, "--fix", "--strict"]) == 0
        capsys.readouterr()

    def test_portability_appendix_lists_paradigms(self, capsys, dirty_path):
        assert main(["lint", dirty_path, "--portability"]) == 2
        out = capsys.readouterr().out
        for paradigm in ("gps", "um", "memcpy", "gps_nosub"):
            assert paradigm in out
        assert "unsafe" in out

    def test_portability_clean_after_fix(self, capsys, dirty_path):
        assert main(["lint", dirty_path, "--fix", "--portability"]) == 0
        assert "unsafe" not in capsys.readouterr().out

    def test_multiple_path_targets(self, capsys, dirty_path):
        from pathlib import Path

        other = (Path(__file__).parent / "analysis" / "fixcorpus"
                 / "uninit-read-s1.before.json")
        assert main(["lint", dirty_path, str(other)]) == 2
        out = capsys.readouterr().out
        assert "GPS001" in out
        assert "GPS003" in out


class TestRunTrace:
    def test_refuses_broken_trace(self, capsys):
        from pathlib import Path

        path = Path(__file__).parent / "analysis" / "fixtures" / "broken_trace.json"
        assert main(["run-trace", str(path)]) == 2
        out = capsys.readouterr().out
        assert "refusing to simulate" in out
        assert "GPS001" in out

    def test_no_analyze_overrides(self, capsys):
        from pathlib import Path

        path = Path(__file__).parent / "analysis" / "fixtures" / "broken_trace.json"
        assert main(["run-trace", str(path), "--no-analyze"]) == 0
        assert "simulated time" in capsys.readouterr().out
