"""Unit tests for the GPS unit datapath (queue -> TLB -> fan-out)."""

import numpy as np
import pytest

from repro.config import GPSConfig
from repro.core.gps_page_table import GPSPageTable
from repro.core.gps_unit import GPSUnit
from repro.trace.expand import LineStream

LINES_PER_PAGE = GPSConfig().page_size // 128


def stream(lines, payload=128):
    lines = np.asarray(lines, dtype=np.int64)
    return LineStream(lines, np.full(len(lines), payload, dtype=np.int32))


def build_unit():
    config = GPSConfig(write_queue_entries=8)
    table = GPSPageTable(config, num_gpus=4)
    # Page 0 subscribed by all; page 1 by {0, 2}; page 2 by {0} only.
    for gpu in range(4):
        table.install_replica(0, gpu, gpu)
    table.install_replica(1, 0, 10)
    table.install_replica(1, 2, 12)
    table.install_replica(2, 0, 20)
    return GPSUnit(0, config, table), table


@pytest.fixture
def setup():
    return build_unit()


class TestFanOut:
    def test_broadcast_to_remote_subscribers_only(self, setup):
        unit, _ = setup
        unit.process_stores(stream([0]))  # line 0 -> page 0
        window = unit.sync()
        assert set(window.bytes_to) == {1, 2, 3}
        assert window.total_bytes == 3 * 128

    def test_partial_subscription_fans_less(self, setup):
        unit, _ = setup
        unit.process_stores(stream([LINES_PER_PAGE]))  # page 1: {0, 2}
        window = unit.sync()
        assert set(window.bytes_to) == {2}

    def test_single_subscriber_page_no_traffic(self, setup):
        unit, _ = setup
        unit.process_stores(stream([2 * LINES_PER_PAGE]))  # page 2: {0}
        window = unit.sync()
        assert window.total_bytes == 0

    def test_coalescing_reduces_fanout_bytes(self, setup):
        unit, _ = setup
        unit.process_stores(stream([0] * 10))
        window = unit.sync()
        # Ten stores to one line = one 128 B write per remote subscriber.
        assert window.bytes_to[1] == 128

    def test_atomics_fan_out_uncoalesced(self, setup):
        unit, _ = setup
        unit.process_stores(stream([0] * 3, payload=16), atomic=True)
        window = unit.sync()
        assert window.bytes_to[1] == 48
        assert window.writes_to[1] == 3


class TestSync:
    def test_sync_resets_window(self, setup):
        unit, _ = setup
        unit.process_stores(stream([0]))
        first = unit.sync()
        second = unit.sync()
        assert first.total_bytes > 0
        assert second.total_bytes == 0

    def test_sync_drains_queue(self, setup):
        unit, _ = setup
        unit.process_stores(stream([0, 1, 2]))
        assert unit.write_queue.occupancy > 0
        unit.sync()
        assert unit.write_queue.occupancy == 0

    def test_watermark_drains_route_midstream(self, setup):
        unit, _ = setup
        # 8-entry queue (watermark 7): 20 distinct lines force mid-kernel
        # drains that must route through the TLB immediately.
        unit.process_stores(stream(list(range(20))))
        assert unit.tlb.stats.accesses > 0


class TestTLBIntegration:
    def test_invalidate_page_forces_rewalk(self, setup):
        unit, table = setup
        unit.process_stores(stream([0]))
        unit.sync()
        walks_before = unit.tlb.walks
        unit.invalidate_page(0)
        unit.process_stores(stream([0]))
        unit.sync()
        assert unit.tlb.walks == walks_before + 1

    def test_subscription_change_respected_after_shootdown(self, setup):
        unit, table = setup
        unit.process_stores(stream([0]))
        unit.sync()
        table.remove_replica(0, 3)
        unit.invalidate_page(0)
        unit.process_stores(stream([0]))
        window = unit.sync()
        assert 3 not in window.bytes_to


class TestBatchedRouting:
    """The array fan-out must mirror the scalar per-entry walk exactly."""

    def _drive(self, unit, work):
        for s, atomic in work:
            unit.process_stores(s, atomic=atomic)
        return unit.sync()

    def test_matches_scalar_walk(self, monkeypatch):
        rng = np.random.default_rng(3)
        # Lines across all three pages (different fan-outs, incl. zero for
        # the single-subscriber page), plus an atomic burst.
        lines = np.sort(rng.integers(0, 3 * LINES_PER_PAGE, size=500)).astype(np.int64)
        work = [
            (stream(lines, payload=64), False),
            (stream([0, 1, LINES_PER_PAGE], payload=16), True),
        ]
        monkeypatch.delenv("REPRO_SCALAR_REPLAY", raising=False)
        vec_unit, vec_table = build_unit()
        vec_window = self._drive(vec_unit, work)
        monkeypatch.setenv("REPRO_SCALAR_REPLAY", "1")
        ref_unit, ref_table = build_unit()
        ref_window = self._drive(ref_unit, work)
        assert vec_window.bytes_to == ref_window.bytes_to
        assert vec_window.writes_to == ref_window.writes_to
        assert vec_unit.write_queue.stats == ref_unit.write_queue.stats
        assert vec_unit.tlb.stats == ref_unit.tlb.stats
        assert vec_unit.tlb.walks == ref_unit.tlb.walks
        assert vec_table.lookups == ref_table.lookups

    def test_window_holds_plain_ints(self):
        # The window is JSON-serialised into result payloads: accumulator
        # folds must hand back python ints, not numpy scalars.
        unit, _ = build_unit()
        unit.process_stores(stream(list(range(2 * LINES_PER_PAGE))))
        window = unit.sync()
        for mapping in (window.bytes_to, window.writes_to):
            for dst, value in mapping.items():
                assert type(dst) is int
                assert type(value) is int

    def test_accumulators_reset_after_sync(self):
        unit, _ = build_unit()
        unit.process_stores(stream([0] * 4))
        unit.sync()
        assert not unit._bytes_acc.any()
        assert not unit._writes_acc.any()
        assert unit.sync().total_bytes == 0


class TestSMCoalesceHook:
    def test_delegates_to_gpu_coalescer(self, setup):
        unit, _ = setup
        out = unit.sm_coalesce(stream([5, 5, 6], payload=64))
        assert out.lines.tolist() == [5, 6]
