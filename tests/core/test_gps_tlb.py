"""Unit tests for the GPS-TLB."""

import pytest

from repro.config import GPSConfig
from repro.core.gps_page_table import GPSPageTable
from repro.core.gps_tlb import GPSTLB
from repro.errors import TranslationError


@pytest.fixture
def setup():
    config = GPSConfig()
    table = GPSPageTable(config, num_gpus=4)
    for vpn in range(64):
        for gpu in range(4):
            table.install_replica(vpn, gpu, vpn * 4 + gpu)
    return GPSTLB(config, table), table


class TestTranslate:
    def test_returns_wide_pte(self, setup):
        tlb, table = setup
        pte = tlb.translate(5)
        assert pte.replicas[2] == 22

    def test_miss_walks_then_hits(self, setup):
        tlb, _ = setup
        tlb.translate(5)
        assert tlb.walks == 1
        tlb.translate(5)
        assert tlb.walks == 1
        assert tlb.stats.hits == 1
        assert tlb.stats.misses == 1

    def test_unknown_page_raises(self, setup):
        tlb, _ = setup
        with pytest.raises(TranslationError):
            tlb.translate(999)

    def test_capacity_pressure(self, setup):
        tlb, _ = setup
        # Sweep more pages than the 32-entry TLB holds, twice; the second
        # sweep of a cyclic pattern through LRU sets still misses.
        for _ in range(2):
            for vpn in range(64):
                tlb.translate(vpn)
        assert tlb.stats.hit_rate < 0.5


class TestTranslateBatch:
    def test_counters_match_scalar_run_loop(self, setup):
        tlb, table = setup
        scalar_tlb = GPSTLB(GPSConfig(), table)
        heads, run = [5, 9, 5, 30], 6
        tlb.translate_batch(heads, total=len(heads) * run)
        for vpn in heads:
            scalar_tlb.translate_run(vpn, run)
        assert tlb.stats == scalar_tlb.stats
        assert tlb.walks == scalar_tlb.walks

    def test_run_tails_are_guaranteed_hits(self, setup):
        tlb, _ = setup
        tlb.translate_batch([5], total=12)
        assert tlb.stats.misses == 1
        assert tlb.stats.hits == 11
        assert tlb.walks == 1


class TestInvalidate:
    def test_invalidate_forces_rewalk(self, setup):
        tlb, _ = setup
        tlb.translate(5)
        assert tlb.invalidate(5)
        tlb.translate(5)
        assert tlb.walks == 2

    def test_invalidate_absent(self, setup):
        tlb, _ = setup
        assert not tlb.invalidate(5)

    def test_flush(self, setup):
        tlb, _ = setup
        for vpn in range(8):
            tlb.translate(vpn)
        tlb.flush()
        tlb.translate(0)
        assert tlb.stats.misses == 9

    def test_subscription_change_visible_after_invalidate(self, setup):
        tlb, table = setup
        tlb.translate(5)
        table.remove_replica(5, 3)
        tlb.invalidate(5)
        assert 3 not in tlb.translate(5).subscribers
