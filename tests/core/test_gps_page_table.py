"""Unit tests for the GPS (wide) page table."""

import pytest

from repro.config import GPSConfig
from repro.core.gps_page_table import GPSPageTable
from repro.errors import TranslationError


@pytest.fixture
def table():
    return GPSPageTable(GPSConfig(), num_gpus=4)


class TestReplicas:
    def test_install_and_lookup(self, table):
        table.install_replica(5, gpu=0, frame=10)
        table.install_replica(5, gpu=2, frame=20)
        pte = table.lookup(5)
        assert pte.replicas == {0: 10, 2: 20}
        assert pte.subscribers == frozenset({0, 2})

    def test_remote_subscribers_excludes_self(self, table):
        for gpu in range(4):
            table.install_replica(5, gpu, gpu * 10)
        assert table.lookup(5).remote_subscribers(1) == [0, 2, 3]

    def test_install_out_of_range_gpu(self, table):
        with pytest.raises(TranslationError):
            table.install_replica(5, gpu=4, frame=0)

    def test_remove_replica_returns_frame(self, table):
        table.install_replica(5, 0, 42)
        assert table.remove_replica(5, 0) == 42
        assert table.subscribers(5) == frozenset()

    def test_remove_missing_replica(self, table):
        table.install_replica(5, 0, 42)
        with pytest.raises(TranslationError):
            table.remove_replica(5, 1)

    def test_lookup_missing(self, table):
        with pytest.raises(TranslationError):
            table.lookup(99)

    def test_subscribers_of_unknown_page_empty(self, table):
        assert table.subscribers(99) == frozenset()

    def test_remove_page(self, table):
        table.install_replica(5, 0, 1)
        table.remove_page(5)
        assert 5 not in table

    def test_remove_missing_page(self, table):
        with pytest.raises(TranslationError):
            table.remove_page(5)


class TestRemoteArray:
    def test_sorted_and_excludes_self(self, table):
        for gpu in (3, 0, 2):
            table.install_replica(5, gpu, gpu * 10)
        assert table.lookup(5).remote_array(2).tolist() == [0, 3]

    def test_memo_matches_list_form(self, table):
        for gpu in range(4):
            table.install_replica(5, gpu, gpu)
        pte = table.lookup(5)
        assert pte.remote_array(1).tolist() == pte.remote_subscribers(1)

    def test_cache_invalidated_on_remove(self, table):
        for gpu in range(4):
            table.install_replica(5, gpu, gpu)
        pte = table.lookup(5)
        assert pte.remote_array(0).tolist() == [1, 2, 3]  # warm the memo
        table.remove_replica(5, 3)
        assert pte.remote_array(0).tolist() == [1, 2]

    def test_cache_invalidated_on_install(self, table):
        table.install_replica(5, 0, 0)
        pte = table.lookup(5)
        assert pte.remote_array(0).tolist() == []
        table.install_replica(5, 2, 2)
        assert pte.remote_array(0).tolist() == [2]


class TestLookupBatch:
    def test_returns_ptes_in_order(self, table):
        for vpn in (3, 7):
            table.install_replica(vpn, 0, vpn)
        ptes = table.lookup_batch([7, 3, 7], 3)
        assert [p.replicas[0] for p in ptes] == [7, 3, 7]

    def test_counts_the_represented_translations(self, table):
        # The batch carries deduplicated page heads; the counter must still
        # reflect every drained write it stands for (scalar-path parity).
        table.install_replica(3, 0, 3)
        table.lookup_batch([3], total_count=40)
        assert table.lookups == 40

    def test_missing_page_raises(self, table):
        table.install_replica(3, 0, 3)
        with pytest.raises(TranslationError):
            table.lookup_batch([3, 99], 2)


class TestQueries:
    def test_multi_subscriber_filter(self, table):
        table.install_replica(1, 0, 0)
        table.install_replica(2, 0, 1)
        table.install_replica(2, 1, 2)
        assert table.pages_with_multiple_subscribers() == [2]

    def test_len_and_entries(self, table):
        table.install_replica(1, 0, 0)
        table.install_replica(2, 0, 1)
        assert len(table) == 2
        assert len(list(table.entries())) == 2

    def test_pte_bits_matches_paper(self, table):
        # 126 bits for 4 GPUs at 64 KiB pages (section 5.2).
        assert table.pte_bits == 126
