"""Tests for the litmus framework: GPS delivery obeys the memory model."""

import pytest

from repro.core.litmus import (
    LitmusOp,
    LitmusTest,
    coalescing_chain,
    message_passing,
    store_buffering,
)
from repro.trace.records import Scope


class TestNamedShapes:
    def test_message_passing(self):
        result = message_passing()
        assert result.ok
        # Flag (addr 1) must be delivered after data (addr 0) at GPU 1.
        addresses = [e.address for e in result.delivered[1]]
        assert addresses.index(0) < addresses.index(1)

    def test_store_buffering(self):
        assert store_buffering().ok

    def test_coalescing_chain(self):
        result = coalescing_chain(30)
        assert result.ok
        # Coalescing must have removed some stores (small queue, 3 lines).
        assert len(result.delivered[1]) < 30


class TestFences:
    def test_fence_prevents_cross_fence_merge(self):
        test = LitmusTest(num_gpus=2)
        test.program(
            0,
            [
                LitmusOp.store(0),
                LitmusOp.fence(),
                LitmusOp.store(0),
            ],
        )
        result = test.run()
        assert result.ok
        # Both stores delivered: the fence drained the first one.
        assert len([e for e in result.delivered[1] if e.address == 0]) == 2

    def test_without_fence_same_address_coalesces(self):
        test = LitmusTest(num_gpus=2)
        test.program(0, [LitmusOp.store(0), LitmusOp.store(0)])
        result = test.run()
        assert result.ok
        assert len(result.delivered[1]) == 1
        # The survivor carries the *newest* value (seq 1).
        assert result.delivered[1][0].seq == 1


class TestSysScope:
    def test_sys_store_not_coalesced(self):
        test = LitmusTest(num_gpus=2)
        test.program(
            0,
            [
                LitmusOp.store(0),
                LitmusOp.store(0, scope=Scope.SYS),
                LitmusOp.store(0),
            ],
        )
        result = test.run()
        assert result.ok
        # Weak store before, sys store, weak store after: three deliveries
        # (sys forces a drain and is never merged).
        assert len(result.delivered[1]) == 3

    def test_sys_store_ordered_with_prior_weak(self):
        test = LitmusTest(num_gpus=2)
        test.program(0, [LitmusOp.store(5), LitmusOp.store(6, scope=Scope.SYS)])
        result = test.run()
        seqs = [e.seq for e in result.delivered[1]]
        assert seqs == sorted(seqs)


class TestMultiProducer:
    def test_three_gpus_all_checks_hold(self):
        test = LitmusTest(num_gpus=3)
        test.program(0, [LitmusOp.store(i) for i in (0, 1, 0, 2)])
        test.program(1, [LitmusOp.store(i) for i in (2, 2, 1)])
        test.program(2, [LitmusOp.store(0), LitmusOp.fence(), LitmusOp.store(0)])
        assert test.run().ok

    def test_queue_pressure_forces_watermark_drains(self):
        test = LitmusTest(num_gpus=2, queue_entries=4)
        test.program(0, [LitmusOp.store(i % 16) for i in range(64)])
        result = test.run()
        assert result.ok
        assert len(result.delivered[1]) >= 16
