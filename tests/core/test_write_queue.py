"""Unit tests for the GPS remote write queue."""

import numpy as np
import pytest

import repro.core.write_queue as wq_mod
from repro.config import GPSConfig
from repro.core.write_queue import RemoteWriteQueue


def queue(entries=8, watermark=None):
    return RemoteWriteQueue(GPSConfig(write_queue_entries=entries, high_watermark=watermark))


class TestCoalescing:
    def test_first_store_inserts(self):
        q = queue()
        assert q.push_store(1, 64) == []
        assert q.occupancy == 1
        assert q.stats.inserts == 1

    def test_same_line_coalesces(self):
        q = queue()
        q.push_store(1, 64)
        q.push_store(1, 64)
        assert q.occupancy == 1
        assert q.stats.coalesced_hits == 1
        assert q.stats.hit_rate == 0.5

    def test_payload_accumulates_capped(self):
        q = queue()
        q.push_store(1, 100)
        q.push_store(1, 100)
        drained = q.flush()
        assert drained[0].payload_bytes == 128  # capped at the block size
        assert drained[0].merged_stores == 2

    def test_non_consecutive_stores_still_coalesce(self):
        # Section 3.3: stores need not be consecutive to be coalesced.
        q = queue()
        q.push_store(1, 64)
        q.push_store(2, 64)
        q.push_store(1, 64)
        assert q.stats.coalesced_hits == 1

    def test_bandwidth_reduction(self):
        q = queue()
        for _ in range(4):
            q.push_store(1, 128)
        q.flush()
        assert q.stats.bytes_in == 512
        assert q.stats.bytes_out == 128
        assert q.stats.bandwidth_reduction == pytest.approx(0.75)


class TestWatermarkDrain:
    def test_drains_least_recently_added(self):
        q = queue(entries=4, watermark=3)
        q.push_store(10, 64)
        q.push_store(11, 64)
        q.push_store(12, 64)
        drained = q.push_store(13, 64)  # occupancy would hit 4 > 3
        assert [e.line for e in drained] == [10]
        assert q.occupancy == 3

    def test_insertion_order_not_access_order(self):
        # Paper: "drain the least recently added entry" — coalescing hits
        # must NOT refresh drain order.
        q = queue(entries=4, watermark=3)
        q.push_store(10, 64)
        q.push_store(11, 64)
        q.push_store(12, 64)
        q.push_store(10, 64)  # hit on the oldest entry
        drained = q.push_store(13, 64)
        assert [e.line for e in drained] == [10]

    def test_default_watermark_is_capacity_minus_one(self):
        q = queue(entries=8)
        for line in range(8):
            drained = q.push_store(line, 64)
        assert len(drained) == 1
        assert q.occupancy == 7

    def test_watermark_drain_counted(self):
        q = queue(entries=2, watermark=1)
        q.push_store(1, 64)
        q.push_store(2, 64)
        assert q.stats.watermark_drains == 1


class TestFlush:
    def test_flush_returns_everything_in_order(self):
        q = queue()
        for line in (5, 3, 9):
            q.push_store(line, 64)
        drained = q.flush()
        assert [e.line for e in drained] == [5, 3, 9]
        assert q.occupancy == 0

    def test_flush_counted_separately(self):
        q = queue()
        q.push_store(1, 64)
        q.flush()
        assert q.stats.flush_drains == 1
        assert q.stats.watermark_drains == 0

    def test_flush_empty(self):
        assert queue().flush() == []


class TestAtomics:
    def test_atomic_bypasses_queue(self):
        q = queue()
        entry = q.push_atomic(1, 16)
        assert entry.payload_bytes == 16
        assert q.occupancy == 0

    def test_atomics_never_coalesce(self):
        # Section 7.4: Pagerank/ALS/SSSP hit 0% because they issue atomics.
        q = queue()
        for _ in range(10):
            q.push_atomic(1, 16)
        assert q.stats.coalesced_hits == 0
        assert q.stats.hit_rate == 0.0
        assert q.stats.atomics_bypassed == 10

    def test_atomic_does_not_merge_with_buffered_store(self):
        q = queue()
        q.push_store(1, 64)
        q.push_atomic(1, 16)
        assert q.occupancy == 1  # store still buffered, atomic went through


class TestStreamProcessing:
    def test_stream_equivalent_to_pushes(self):
        lines = np.array([1, 2, 1, 3, 2, 1], dtype=np.int64)
        payload = np.full(6, 64, dtype=np.int32)
        a = queue()
        a.process_stream(lines, payload)
        b = queue()
        for line in lines.tolist():
            b.push_store(line, 64)
        assert a.stats.coalesced_hits == b.stats.coalesced_hits
        assert a.occupancy == b.occupancy

    def test_stream_atomic_mode(self):
        lines = np.array([1, 1, 1], dtype=np.int64)
        payload = np.full(3, 16, dtype=np.int32)
        q = queue()
        drained = q.process_stream(lines, payload, atomic=True)
        assert len(drained) == 3
        assert q.stats.hit_rate == 0.0

    def test_stream_drains_at_watermark(self):
        q = queue(entries=4, watermark=3)
        lines = np.arange(10, dtype=np.int64)
        drained = q.process_stream(lines, np.full(10, 64, dtype=np.int32))
        assert len(drained) == 7
        assert q.occupancy == 3

    def test_conservation_of_entries(self):
        q = queue(entries=16)
        lines = np.array([1, 2, 3, 1, 2, 4] * 10, dtype=np.int64)
        drained = q.process_stream(lines, np.full(60, 64, dtype=np.int32))
        drained += q.flush()
        assert len(drained) == q.stats.inserts
        assert {e.line for e in drained} == {1, 2, 3, 4}


class TestAtomicBytesSplit:
    """``atomic_bytes`` carves bypass traffic out of the coalescing metrics."""

    def test_atomics_counted_in_both_ledgers(self):
        q = queue()
        q.push_atomic(1, 16)
        q.push_atomic(2, 32)
        assert q.stats.atomic_bytes == 48
        assert q.stats.bytes_in == 48
        assert q.stats.bytes_out == 48

    def test_bandwidth_reduction_over_coalescible_bytes_only(self):
        # Regression: atomic bypass traffic moves byte-for-byte, so folding
        # it into the ratio diluted the reduction coalescing achieved.
        q = queue()
        for _ in range(4):
            q.push_store(1, 128)  # 512 B in -> 128 B out after coalescing
        q.flush()
        for _ in range(8):
            q.push_atomic(2, 128)  # 1024 B straight through
        assert q.stats.coalescible_bytes_in == 512
        assert q.stats.coalescible_bytes_out == 128
        assert q.stats.bandwidth_reduction == pytest.approx(0.75)

    def test_atomic_only_traffic_reports_zero_reduction(self):
        q = queue()
        for _ in range(10):
            q.push_atomic(1, 64)
        assert q.stats.bandwidth_reduction == 0.0

    def test_atomic_stream_batch_matches_per_atomic_pushes(self):
        lines = np.array([1, 1, 2, 3], dtype=np.int64)
        pays = np.array([16, 16, 32, 8], dtype=np.int32)
        a = queue()
        a.process_stream(lines, pays, atomic=True)
        b = queue()
        for line, nbytes in zip(lines.tolist(), pays.tolist()):
            b.push_atomic(line, nbytes)
        assert a.stats == b.stats
        assert a.stats.atomic_bytes == 72

    def test_atomic_bytes_survive_counter_snapshot(self):
        q = queue()
        q.push_atomic(1, 16)
        assert q.stats.as_counters()["atomic_bytes"] == 16


def drive_scalar(q, lines, pays):
    """Reference: element-wise pushes; returns (line, payload, merged) drains."""
    drained = []
    for line, nbytes in zip(lines.tolist(), pays.tolist()):
        drained.extend(q.push_store(int(line), int(nbytes)))
    return [(e.line, e.payload_bytes, e.merged_stores) for e in drained]


def drive_vectorized(q, lines, pays, monkeypatch):
    """Force the numpy kernel regardless of stream length."""
    monkeypatch.setattr(wq_mod, "_VECTOR_MIN_EVENTS", 1)
    monkeypatch.delenv("REPRO_SCALAR_REPLAY", raising=False)
    batch = q.process_stream_batch(lines, pays)
    return list(zip(
        batch.lines.tolist(), batch.payload_bytes.tolist(), batch.merged_stores.tolist()
    ))


def queue_state(q):
    return [(ln, e.payload_bytes, e.merged_stores) for ln, e in q._entries.items()]


class TestScalarVectorEquivalence:
    """The vectorized stream kernel is bit-exact against ``_push_one``.

    Satellite of the replay vectorization: same drains (order included),
    same stats dataclass, same final FIFO state — the property the
    differential harness then pins end-to-end.
    """

    @pytest.mark.parametrize("seed", range(8))
    def test_random_streams_match(self, seed, monkeypatch):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 400))
        span = int(rng.integers(2, 64))  # small spans force heavy reuse
        lines = rng.integers(0, span, size=n).astype(np.int64)
        pays = rng.choice([4, 16, 64, 100, 128], size=n).astype(np.int32)
        a, b = queue(), queue()
        assert drive_vectorized(a, lines, pays, monkeypatch) == drive_scalar(b, lines, pays)
        assert a.stats == b.stats
        assert queue_state(a) == queue_state(b)

    @pytest.mark.parametrize("seed", range(4))
    def test_prepopulated_queue_matches(self, seed, monkeypatch):
        # Resident entries carry payload/merge state into the stream kernel.
        rng = np.random.default_rng(100 + seed)
        a, b = queue(), queue()
        for line in rng.choice(20, size=5, replace=False).tolist():
            a.push_store(int(line), 100)
            b.push_store(int(line), 100)
        lines = rng.integers(0, 24, size=200).astype(np.int64)
        pays = rng.choice([32, 64, 128], size=200).astype(np.int32)
        assert drive_vectorized(a, lines, pays, monkeypatch) == drive_scalar(b, lines, pays)
        assert a.stats == b.stats
        assert queue_state(a) == queue_state(b)

    def test_pure_miss_fast_path_matches(self, monkeypatch):
        # All-distinct lines, disjoint from the resident set: the proven
        # no-hit kernel must still drain/count exactly like the reference.
        a = queue(entries=8, watermark=5)
        b = queue(entries=8, watermark=5)
        for line in (100, 101):
            a.push_store(line, 50)
            b.push_store(line, 50)
        lines = np.arange(40, dtype=np.int64)
        pays = np.full(40, 200, dtype=np.int32)  # saturates at the block size
        assert drive_vectorized(a, lines, pays, monkeypatch) == drive_scalar(b, lines, pays)
        assert a.stats == b.stats
        assert a.stats.coalesced_hits == 0
        assert queue_state(a) == queue_state(b)

    def test_resident_hit_defeats_fast_path(self, monkeypatch):
        # Distinct stream lines but one hits a resident entry within the
        # watermark window: the general fixed-point kernel must run and
        # still agree with the reference.
        a = queue(entries=8, watermark=5)
        b = queue(entries=8, watermark=5)
        for line in (3, 4):
            a.push_store(line, 10)
            b.push_store(line, 10)
        lines = np.array([4, 50, 51, 52, 53, 54, 55], dtype=np.int64)
        pays = np.full(7, 64, dtype=np.int32)
        assert drive_vectorized(a, lines, pays, monkeypatch) == drive_scalar(b, lines, pays)
        assert a.stats == b.stats
        assert a.stats.coalesced_hits == 1

    def test_chunked_stream_equals_whole_stream(self, monkeypatch):
        # Queue state carried across batch boundaries is part of the model.
        rng = np.random.default_rng(7)
        lines = rng.integers(0, 32, size=300).astype(np.int64)
        pays = np.full(300, 64, dtype=np.int32)
        a, b = queue(), queue()
        whole = drive_vectorized(a, lines, pays, monkeypatch)
        chunked = []
        for lo in range(0, 300, 70):
            chunked.extend(
                drive_vectorized(b, lines[lo:lo + 70], pays[lo:lo + 70], monkeypatch)
            )
        assert whole == chunked
        assert a.stats == b.stats

    def test_scalar_replay_env_forces_reference_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALAR_REPLAY", "1")

        def boom(*_args, **_kwargs):  # pragma: no cover - fails the test if hit
            raise AssertionError("vectorized kernel ran under REPRO_SCALAR_REPLAY=1")

        q = queue()
        monkeypatch.setattr(RemoteWriteQueue, "_process_vectorized", boom)
        lines = np.arange(wq_mod._VECTOR_MIN_EVENTS + 16, dtype=np.int64)
        q.process_stream_batch(lines, np.full(lines.shape[0], 64, dtype=np.int32))
        assert q.stats.stores_seen == lines.shape[0]
