"""Unit tests for the GPS remote write queue."""

import numpy as np
import pytest

from repro.config import GPSConfig
from repro.core.write_queue import RemoteWriteQueue


def queue(entries=8, watermark=None):
    return RemoteWriteQueue(GPSConfig(write_queue_entries=entries, high_watermark=watermark))


class TestCoalescing:
    def test_first_store_inserts(self):
        q = queue()
        assert q.push_store(1, 64) == []
        assert q.occupancy == 1
        assert q.stats.inserts == 1

    def test_same_line_coalesces(self):
        q = queue()
        q.push_store(1, 64)
        q.push_store(1, 64)
        assert q.occupancy == 1
        assert q.stats.coalesced_hits == 1
        assert q.stats.hit_rate == 0.5

    def test_payload_accumulates_capped(self):
        q = queue()
        q.push_store(1, 100)
        q.push_store(1, 100)
        drained = q.flush()
        assert drained[0].payload_bytes == 128  # capped at the block size
        assert drained[0].merged_stores == 2

    def test_non_consecutive_stores_still_coalesce(self):
        # Section 3.3: stores need not be consecutive to be coalesced.
        q = queue()
        q.push_store(1, 64)
        q.push_store(2, 64)
        q.push_store(1, 64)
        assert q.stats.coalesced_hits == 1

    def test_bandwidth_reduction(self):
        q = queue()
        for _ in range(4):
            q.push_store(1, 128)
        q.flush()
        assert q.stats.bytes_in == 512
        assert q.stats.bytes_out == 128
        assert q.stats.bandwidth_reduction == pytest.approx(0.75)


class TestWatermarkDrain:
    def test_drains_least_recently_added(self):
        q = queue(entries=4, watermark=3)
        q.push_store(10, 64)
        q.push_store(11, 64)
        q.push_store(12, 64)
        drained = q.push_store(13, 64)  # occupancy would hit 4 > 3
        assert [e.line for e in drained] == [10]
        assert q.occupancy == 3

    def test_insertion_order_not_access_order(self):
        # Paper: "drain the least recently added entry" — coalescing hits
        # must NOT refresh drain order.
        q = queue(entries=4, watermark=3)
        q.push_store(10, 64)
        q.push_store(11, 64)
        q.push_store(12, 64)
        q.push_store(10, 64)  # hit on the oldest entry
        drained = q.push_store(13, 64)
        assert [e.line for e in drained] == [10]

    def test_default_watermark_is_capacity_minus_one(self):
        q = queue(entries=8)
        for line in range(8):
            drained = q.push_store(line, 64)
        assert len(drained) == 1
        assert q.occupancy == 7

    def test_watermark_drain_counted(self):
        q = queue(entries=2, watermark=1)
        q.push_store(1, 64)
        q.push_store(2, 64)
        assert q.stats.watermark_drains == 1


class TestFlush:
    def test_flush_returns_everything_in_order(self):
        q = queue()
        for line in (5, 3, 9):
            q.push_store(line, 64)
        drained = q.flush()
        assert [e.line for e in drained] == [5, 3, 9]
        assert q.occupancy == 0

    def test_flush_counted_separately(self):
        q = queue()
        q.push_store(1, 64)
        q.flush()
        assert q.stats.flush_drains == 1
        assert q.stats.watermark_drains == 0

    def test_flush_empty(self):
        assert queue().flush() == []


class TestAtomics:
    def test_atomic_bypasses_queue(self):
        q = queue()
        entry = q.push_atomic(1, 16)
        assert entry.payload_bytes == 16
        assert q.occupancy == 0

    def test_atomics_never_coalesce(self):
        # Section 7.4: Pagerank/ALS/SSSP hit 0% because they issue atomics.
        q = queue()
        for _ in range(10):
            q.push_atomic(1, 16)
        assert q.stats.coalesced_hits == 0
        assert q.stats.hit_rate == 0.0
        assert q.stats.atomics_bypassed == 10

    def test_atomic_does_not_merge_with_buffered_store(self):
        q = queue()
        q.push_store(1, 64)
        q.push_atomic(1, 16)
        assert q.occupancy == 1  # store still buffered, atomic went through


class TestStreamProcessing:
    def test_stream_equivalent_to_pushes(self):
        lines = np.array([1, 2, 1, 3, 2, 1], dtype=np.int64)
        payload = np.full(6, 64, dtype=np.int32)
        a = queue()
        a.process_stream(lines, payload)
        b = queue()
        for line in lines.tolist():
            b.push_store(line, 64)
        assert a.stats.coalesced_hits == b.stats.coalesced_hits
        assert a.occupancy == b.occupancy

    def test_stream_atomic_mode(self):
        lines = np.array([1, 1, 1], dtype=np.int64)
        payload = np.full(3, 16, dtype=np.int32)
        q = queue()
        drained = q.process_stream(lines, payload, atomic=True)
        assert len(drained) == 3
        assert q.stats.hit_rate == 0.0

    def test_stream_drains_at_watermark(self):
        q = queue(entries=4, watermark=3)
        lines = np.arange(10, dtype=np.int64)
        drained = q.process_stream(lines, np.full(10, 64, dtype=np.int32))
        assert len(drained) == 7
        assert q.occupancy == 3

    def test_conservation_of_entries(self):
        q = queue(entries=16)
        lines = np.array([1, 2, 3, 1, 2, 4] * 10, dtype=np.int64)
        drained = q.process_stream(lines, np.full(60, 64, dtype=np.int32))
        drained += q.flush()
        assert len(drained) == q.stats.inserts
        assert {e.line for e in drained} == {1, 2, 3, 4}
