"""Unit tests for the GPS runtime/driver API (paper section 4)."""

import numpy as np
import pytest

import repro
from repro.core.runtime import GPSRuntime, MemAdvise
from repro.core.subscription import SubscriptionManager
from repro.errors import SubscriptionError

PAGE = 65536


@pytest.fixture
def runtime():
    return GPSRuntime(repro.default_system(4))


class TestMallocGPS:
    def test_replicates_on_all_gpus(self, runtime):
        alloc = runtime.malloc_gps("x", 4 * PAGE)
        for vpn in alloc.pages(PAGE):
            assert runtime.subscriptions.subscribers(vpn) == frozenset(range(4))
            assert runtime.gps_page_table.subscribers(vpn) == frozenset(range(4))

    def test_gps_bit_set_everywhere(self, runtime):
        alloc = runtime.malloc_gps("x", PAGE)
        vpn = next(iter(alloc.pages(PAGE)))
        for gpu in range(4):
            assert runtime.page_tables[gpu].lookup(vpn).gps

    def test_consumes_physical_memory_on_every_gpu(self, runtime):
        runtime.malloc_gps("x", 4 * PAGE)
        for memory in runtime.memories:
            assert memory.frames_in_use == 4

    def test_loads_resolve_local(self, runtime):
        alloc = runtime.malloc_gps("x", PAGE)
        vpn = next(iter(alloc.pages(PAGE)))
        for gpu in range(4):
            resolution = runtime.resolve_load(gpu, vpn)
            assert resolution.local


class TestMallocPinned:
    def test_resident_on_home_only(self, runtime):
        alloc = runtime.malloc_pinned("x", 2 * PAGE, gpu=2)
        assert runtime.memories[2].frames_in_use == 2
        assert runtime.memories[0].frames_in_use == 0
        vpn = next(iter(alloc.pages(PAGE)))
        assert runtime.page_tables[0].lookup(vpn).resident_gpu == 2
        assert not runtime.page_tables[0].lookup(vpn).gps


class TestFree:
    def test_free_gps_releases_everything(self, runtime):
        runtime.malloc_gps("x", 4 * PAGE)
        runtime.free("x")
        for memory in runtime.memories:
            assert memory.frames_in_use == 0
        assert len(runtime.gps_page_table) == 0

    def test_free_pinned(self, runtime):
        runtime.malloc_pinned("x", PAGE, gpu=1)
        runtime.free("x")
        assert runtime.memories[1].frames_in_use == 0

    def test_free_managed_is_noop_on_memory(self, runtime):
        runtime.malloc_managed("x", PAGE)
        runtime.free("x")


class TestMemAdvise:
    def test_unsubscribe_frees_replica(self, runtime):
        runtime.malloc_gps("x", 2 * PAGE)
        changed = runtime.mem_advise(3, "x", MemAdvise.GPS_UNSUBSCRIBE)
        assert changed == 2
        assert runtime.memories[3].frames_in_use == 0
        vpn = next(iter(runtime.address_space.get("x").pages(PAGE)))
        assert 3 not in runtime.subscriptions.subscribers(vpn)

    def test_resubscribe_backs_with_memory(self, runtime):
        runtime.malloc_gps("x", PAGE)
        runtime.mem_advise(3, "x", MemAdvise.GPS_UNSUBSCRIBE)
        changed = runtime.mem_advise(3, "x", MemAdvise.GPS_SUBSCRIBE)
        assert changed == 1
        assert runtime.memories[3].frames_in_use == 1

    def test_advise_idempotent(self, runtime):
        runtime.malloc_gps("x", PAGE)
        assert runtime.mem_advise(0, "x", MemAdvise.GPS_SUBSCRIBE) == 0

    def test_last_subscriber_protected(self, runtime):
        runtime.malloc_gps("x", PAGE)
        for gpu in (1, 2, 3):
            runtime.mem_advise(gpu, "x", MemAdvise.GPS_UNSUBSCRIBE)
        with pytest.raises(SubscriptionError):
            runtime.mem_advise(0, "x", MemAdvise.GPS_UNSUBSCRIBE)

    def test_advise_on_non_gps_rejected(self, runtime):
        runtime.malloc_pinned("x", PAGE)
        with pytest.raises(SubscriptionError):
            runtime.mem_advise(0, "x", MemAdvise.GPS_UNSUBSCRIBE)

    def test_single_subscriber_clears_gps_bit(self, runtime):
        runtime.malloc_gps("x", PAGE)
        vpn = next(iter(runtime.address_space.get("x").pages(PAGE)))
        for gpu in (1, 2, 3):
            runtime.mem_advise(gpu, "x", MemAdvise.GPS_UNSUBSCRIBE)
        assert not runtime.page_tables[0].lookup(vpn).gps


class TestNonSubscriberLoad:
    def test_remote_resolution(self, runtime):
        runtime.malloc_gps("x", PAGE)
        runtime.mem_advise(2, "x", MemAdvise.GPS_UNSUBSCRIBE)
        vpn = next(iter(runtime.address_space.get("x").pages(PAGE)))
        resolution = runtime.resolve_load(2, vpn)
        assert not resolution.local
        assert resolution.source_gpu == 0  # lowest remaining subscriber


class TestTracking:
    def test_tracking_stop_unsubscribes_untouched(self, runtime):
        alloc = runtime.malloc_gps("x", 4 * PAGE)
        pages = np.array(list(alloc.pages(PAGE)))
        runtime.tracking_start()
        runtime.record_accesses(0, pages)       # GPU0 touches all
        runtime.record_accesses(1, pages[:2])   # GPU1 touches half
        summary = runtime.tracking_stop()
        assert summary["unsubscribed"] > 0
        assert runtime.subscriptions.subscribers(pages[0]) == frozenset({0, 1})
        assert runtime.subscriptions.subscribers(pages[3]) == frozenset({0})

    def test_tracking_frees_unsubscribed_frames(self, runtime):
        alloc = runtime.malloc_gps("x", 4 * PAGE)
        pages = np.array(list(alloc.pages(PAGE)))
        runtime.tracking_start()
        runtime.record_accesses(0, pages)
        runtime.tracking_stop()
        for gpu in (1, 2, 3):
            assert runtime.memories[gpu].frames_in_use == 0

    def test_untouched_pages_keep_one_replica(self, runtime):
        alloc = runtime.malloc_gps("x", PAGE)
        runtime.tracking_start()
        runtime.tracking_stop()
        vpn = next(iter(alloc.pages(PAGE)))
        assert len(runtime.subscriptions.subscribers(vpn)) == 1

    def test_single_subscriber_pages_demoted(self, runtime):
        alloc = runtime.malloc_gps("x", PAGE)
        pages = np.array(list(alloc.pages(PAGE)))
        runtime.tracking_start()
        runtime.record_accesses(2, pages)
        summary = runtime.tracking_stop()
        assert summary["demoted"] == 1
        assert runtime.subscriptions.is_demoted(pages[0])

    def test_tracking_stop_agrees_with_apply_profile(self, runtime):
        # Regression: the driver path (tracking_stop, which also frees
        # frames) and the manager path (apply_profile) each had their own
        # keep-set rule and could disagree. Both now call trim_plan, so the
        # surviving subscriber sets must be identical for any profile.
        alloc = runtime.malloc_gps("x", 4 * PAGE)
        pages = list(alloc.pages(PAGE))
        touched = {
            0: {pages[0], pages[1]},
            1: {pages[1]},
            2: set(),
            3: {pages[3]},
        }
        mirror = SubscriptionManager(num_gpus=4)
        mirror.register_all_to_all(pages)
        mirror.apply_profile(touched)
        runtime.tracking_start()
        for gpu, vpns in touched.items():
            if vpns:
                runtime.record_accesses(gpu, np.array(sorted(vpns)))
        runtime.tracking_stop()
        for vpn in pages:
            assert runtime.subscriptions.subscribers(vpn) == mirror.subscribers(vpn)


class TestOversubscription:
    def test_evicted_gpu_unsubscribes_and_reads_remotely(self, runtime):
        alloc = runtime.malloc_gps("x", 2 * PAGE)
        pages = list(alloc.pages(PAGE))
        evicted = runtime.handle_oversubscription(3, pages)
        assert evicted == 2
        assert runtime.memories[3].frames_in_use == 0
        resolution = runtime.resolve_load(3, pages[0])
        assert not resolution.local

    def test_sole_replica_never_evicted(self, runtime):
        alloc = runtime.malloc_gps("x", PAGE)
        vpn = next(iter(alloc.pages(PAGE)))
        for gpu in (1, 2, 3):
            runtime.mem_advise(gpu, "x", MemAdvise.GPS_UNSUBSCRIBE)
        assert runtime.handle_oversubscription(0, [vpn]) == 0
        assert runtime.subscriptions.is_subscriber(0, vpn)

    def test_non_subscriber_eviction_noop(self, runtime):
        alloc = runtime.malloc_gps("x", PAGE)
        vpn = next(iter(alloc.pages(PAGE)))
        runtime.mem_advise(2, "x", MemAdvise.GPS_UNSUBSCRIBE)
        assert runtime.handle_oversubscription(2, [vpn]) == 0


class TestSysScopeCollapse:
    def test_collapse_to_writer(self, runtime):
        alloc = runtime.malloc_gps("x", PAGE)
        vpn = next(iter(alloc.pages(PAGE)))
        freed = runtime.collapse_on_sys_store(1, vpn)
        assert freed == 3
        assert runtime.subscriptions.subscribers(vpn) == frozenset({1})
        assert runtime.subscriptions.is_demoted(vpn)
        # Only the surviving GPU holds memory for the page.
        assert runtime.memories[1].frames_in_use == 1
        assert runtime.memories[0].frames_in_use == 0

    def test_collapse_clears_gps_bit(self, runtime):
        alloc = runtime.malloc_gps("x", PAGE)
        vpn = next(iter(alloc.pages(PAGE)))
        runtime.collapse_on_sys_store(2, vpn)
        assert not runtime.page_tables[2].lookup(vpn).gps

    def test_back_to_back_sys_stores_second_is_noop(self, runtime):
        # Regression: the second sys-scoped store to an already-collapsed
        # page found nothing to tear down and indexed into an empty
        # subscriber list. It must be a no-op returning 0.
        alloc = runtime.malloc_gps("x", PAGE)
        vpn = next(iter(alloc.pages(PAGE)))
        assert runtime.collapse_on_sys_store(1, vpn) == 3
        assert runtime.collapse_on_sys_store(1, vpn) == 0
        assert runtime.subscriptions.subscribers(vpn) == frozenset({1})
        assert runtime.memories[1].frames_in_use == 1

    def test_sys_store_from_another_gpu_after_collapse(self, runtime):
        # A later sys store from a *different* GPU: the sole surviving copy
        # stays where it is (nothing is replicated, nothing to collapse).
        alloc = runtime.malloc_gps("x", PAGE)
        vpn = next(iter(alloc.pages(PAGE)))
        runtime.collapse_on_sys_store(1, vpn)
        assert runtime.collapse_on_sys_store(3, vpn) == 0
        assert runtime.subscriptions.subscribers(vpn) == frozenset({1})

    def test_sys_store_to_freed_page_is_noop(self, runtime):
        # Regression companion: empty subscriber sets also arise when the
        # allocation was freed between the store and the collapse.
        alloc = runtime.malloc_gps("x", PAGE)
        vpn = next(iter(alloc.pages(PAGE)))
        runtime.free("x")
        assert runtime.collapse_on_sys_store(0, vpn) == 0

    def test_sys_store_to_unmanaged_page_is_noop(self, runtime):
        assert runtime.collapse_on_sys_store(0, 0xDEAD) == 0
