"""Unit tests for the access tracking unit."""

import numpy as np
import pytest

from repro.config import GPSConfig
from repro.core.access_tracker import AccessTrackingUnit

BASE = 4096  # base VPN of the GPS heap


@pytest.fixture
def tracker():
    return AccessTrackingUnit(gpu_id=0, config=GPSConfig(), base_vpn=BASE)


class TestLifecycle:
    def test_disabled_by_default(self, tracker):
        tracker.record_tlb_miss(BASE + 1)
        assert not tracker.touched(BASE + 1)

    def test_start_enables(self, tracker):
        tracker.start()
        tracker.record_tlb_miss(BASE + 1)
        assert tracker.touched(BASE + 1)

    def test_stop_freezes_but_keeps_readable(self, tracker):
        tracker.start()
        tracker.record_tlb_miss(BASE + 1)
        tracker.stop()
        tracker.record_tlb_miss(BASE + 2)
        assert tracker.touched(BASE + 1)
        assert not tracker.touched(BASE + 2)

    def test_restart_clears(self, tracker):
        tracker.start()
        tracker.record_tlb_miss(BASE + 1)
        tracker.stop()
        tracker.start()
        assert not tracker.touched(BASE + 1)
        assert tracker.updates == 0


class TestRecording:
    def test_bulk_record(self, tracker):
        tracker.start()
        tracker.record_pages(np.array([BASE, BASE + 5, BASE + 9]))
        assert tracker.touched_pages().tolist() == [BASE, BASE + 5, BASE + 9]

    def test_bulk_ignores_out_of_range(self, tracker):
        tracker.start()
        tracker.record_pages(np.array([BASE - 1, BASE]))
        assert tracker.touched_pages().tolist() == [BASE]

    def test_updates_count_distinct_pages(self, tracker):
        tracker.start()
        tracker.record_pages(np.array([BASE, BASE + 1]))
        tracker.record_pages(np.array([BASE, BASE + 2]))
        assert tracker.updates == 3

    def test_scalar_out_of_range_ignored(self, tracker):
        tracker.start()
        tracker.record_tlb_miss(BASE - 1)
        tracker.record_tlb_miss(BASE + tracker.num_pages)
        assert tracker.touched_pages().size == 0

    def test_empty_bulk(self, tracker):
        tracker.start()
        tracker.record_pages(np.array([], dtype=np.int64))
        assert tracker.updates == 0


class TestFootprint:
    def test_bitmap_is_64kib_for_default_range(self, tracker):
        # Section 5.2: 32 GiB at 64 KiB pages needs 64 KiB of DRAM.
        assert tracker.bitmap_bytes == 64 * 1024
