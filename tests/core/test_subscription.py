"""Unit tests for the subscription manager and its invariants."""

import pytest

from repro.core.subscription import SubscriptionManager
from repro.errors import SubscriptionError


@pytest.fixture
def manager():
    mgr = SubscriptionManager(num_gpus=4)
    mgr.register_all_to_all(range(10))
    return mgr


class TestRegistration:
    def test_all_to_all(self, manager):
        assert manager.subscribers(0) == frozenset({0, 1, 2, 3})

    def test_register_specific(self):
        mgr = SubscriptionManager(4)
        mgr.register_page(7, {1, 2})
        assert mgr.subscribers(7) == frozenset({1, 2})

    def test_register_empty_rejected(self):
        mgr = SubscriptionManager(4)
        with pytest.raises(SubscriptionError):
            mgr.register_page(7, set())

    def test_double_register_rejected(self):
        mgr = SubscriptionManager(4)
        mgr.register_page(7, {0})
        with pytest.raises(SubscriptionError):
            mgr.register_page(7, {1})

    def test_register_all_to_all_idempotent(self, manager):
        manager.unsubscribe(3, 0)
        manager.register_all_to_all(range(10))  # must not resubscribe
        assert 3 not in manager.subscribers(0)

    def test_drop_page(self, manager):
        manager.drop_page(0)
        assert not manager.is_registered(0)


class TestSubscribeUnsubscribe:
    def test_unsubscribe(self, manager):
        assert manager.unsubscribe(2, 0)
        assert manager.subscribers(0) == frozenset({0, 1, 3})
        assert manager.stats.unsubscribes == 1

    def test_unsubscribe_not_subscribed_returns_false(self, manager):
        manager.unsubscribe(2, 0)
        assert not manager.unsubscribe(2, 0)

    def test_last_subscriber_protected(self, manager):
        # Paper section 4: GPS returns an error on attempts to unsubscribe
        # the last subscriber, leaving the allocation in place.
        for gpu in (1, 2, 3):
            manager.unsubscribe(gpu, 0)
        with pytest.raises(SubscriptionError):
            manager.unsubscribe(0, 0)
        assert manager.subscribers(0) == frozenset({0})

    def test_subscribe_new(self, manager):
        manager.unsubscribe(2, 0)
        assert manager.subscribe(2, 0)
        assert manager.is_subscriber(2, 0)

    def test_subscribe_existing_returns_false(self, manager):
        assert not manager.subscribe(2, 0)

    def test_subscribe_unregistered_page_rejected(self, manager):
        with pytest.raises(SubscriptionError):
            manager.subscribe(0, 999)

    def test_unsubscribe_unregistered_page_rejected(self, manager):
        with pytest.raises(SubscriptionError):
            manager.unsubscribe(0, 999)


class TestRemoteSource:
    def test_lowest_other_subscriber(self, manager):
        manager.unsubscribe(0, 5)
        assert manager.remote_source(0, 5) == 1

    def test_skips_requester(self, manager):
        assert manager.remote_source(0, 5) == 1

    def test_no_subscribers_raises(self):
        mgr = SubscriptionManager(4)
        with pytest.raises(SubscriptionError):
            mgr.remote_source(0, 5)


class TestProfiling:
    def test_apply_profile_trims_untouched(self, manager):
        touched = {0: {0, 1}, 1: {0}, 2: set(), 3: set()}
        removed = manager.apply_profile(touched)
        assert manager.subscribers(0) == frozenset({0, 1})
        assert removed > 0

    def test_untouched_page_keeps_one_subscriber(self, manager):
        removed = manager.apply_profile({g: set() for g in range(4)})
        for vpn in range(10):
            assert len(manager.subscribers(vpn)) == 1
        assert removed == 30

    def test_demote_single_subscriber_pages(self, manager):
        manager.apply_profile({0: {0}, 1: set(), 2: set(), 3: set()})
        demoted = manager.demote_single_subscriber_pages()
        assert 0 in demoted
        assert manager.is_demoted(0)
        assert manager.stats.demotions == len(demoted)

    def test_resubscribe_repromotes(self, manager):
        manager.apply_profile({g: set() for g in range(4)})
        manager.demote_single_subscriber_pages()
        manager.subscribe(2, 0)
        assert not manager.is_demoted(0)


class TestHistogram:
    def test_all_to_all_histogram(self, manager):
        hist = manager.subscriber_histogram()
        assert hist == {4: 10}

    def test_shared_only_excludes_singletons(self, manager):
        manager.apply_profile({0: {0, 1}, 1: {0}, 2: set(), 3: set()})
        hist = manager.subscriber_histogram(only_shared=True)
        assert hist == {2: 1}

    def test_include_singletons(self, manager):
        manager.apply_profile({0: {0, 1}, 1: {0}, 2: set(), 3: set()})
        hist = manager.subscriber_histogram(only_shared=False)
        assert hist == {2: 1, 1: 9}
