"""Unit tests for the subscription manager and its invariants."""

import numpy as np
import pytest

from repro.core.subscription import SubscriptionManager
from repro.errors import SubscriptionError


@pytest.fixture
def manager():
    mgr = SubscriptionManager(num_gpus=4)
    mgr.register_all_to_all(range(10))
    return mgr


class TestRegistration:
    def test_all_to_all(self, manager):
        assert manager.subscribers(0) == frozenset({0, 1, 2, 3})

    def test_register_specific(self):
        mgr = SubscriptionManager(4)
        mgr.register_page(7, {1, 2})
        assert mgr.subscribers(7) == frozenset({1, 2})

    def test_register_empty_rejected(self):
        mgr = SubscriptionManager(4)
        with pytest.raises(SubscriptionError):
            mgr.register_page(7, set())

    def test_double_register_rejected(self):
        mgr = SubscriptionManager(4)
        mgr.register_page(7, {0})
        with pytest.raises(SubscriptionError):
            mgr.register_page(7, {1})

    def test_register_all_to_all_idempotent(self, manager):
        manager.unsubscribe(3, 0)
        manager.register_all_to_all(range(10))  # must not resubscribe
        assert 3 not in manager.subscribers(0)

    def test_drop_page(self, manager):
        manager.drop_page(0)
        assert not manager.is_registered(0)


class TestSubscribeUnsubscribe:
    def test_unsubscribe(self, manager):
        assert manager.unsubscribe(2, 0)
        assert manager.subscribers(0) == frozenset({0, 1, 3})
        assert manager.stats.unsubscribes == 1

    def test_unsubscribe_not_subscribed_returns_false(self, manager):
        manager.unsubscribe(2, 0)
        assert not manager.unsubscribe(2, 0)

    def test_last_subscriber_protected(self, manager):
        # Paper section 4: GPS returns an error on attempts to unsubscribe
        # the last subscriber, leaving the allocation in place.
        for gpu in (1, 2, 3):
            manager.unsubscribe(gpu, 0)
        with pytest.raises(SubscriptionError):
            manager.unsubscribe(0, 0)
        assert manager.subscribers(0) == frozenset({0})

    def test_subscribe_new(self, manager):
        manager.unsubscribe(2, 0)
        assert manager.subscribe(2, 0)
        assert manager.is_subscriber(2, 0)

    def test_subscribe_existing_returns_false(self, manager):
        assert not manager.subscribe(2, 0)

    def test_subscribe_unregistered_page_rejected(self, manager):
        with pytest.raises(SubscriptionError):
            manager.subscribe(0, 999)

    def test_unsubscribe_unregistered_page_rejected(self, manager):
        with pytest.raises(SubscriptionError):
            manager.unsubscribe(0, 999)


class TestRemoteSource:
    def test_lowest_other_subscriber(self, manager):
        manager.unsubscribe(0, 5)
        assert manager.remote_source(0, 5) == 1

    def test_skips_requester(self, manager):
        assert manager.remote_source(0, 5) == 1

    def test_no_subscribers_raises(self):
        mgr = SubscriptionManager(4)
        with pytest.raises(SubscriptionError):
            mgr.remote_source(0, 5)


class TestProfiling:
    def test_apply_profile_trims_untouched(self, manager):
        touched = {0: {0, 1}, 1: {0}, 2: set(), 3: set()}
        removed = manager.apply_profile(touched)
        assert manager.subscribers(0) == frozenset({0, 1})
        assert removed > 0

    def test_untouched_page_keeps_one_subscriber(self, manager):
        removed = manager.apply_profile({g: set() for g in range(4)})
        for vpn in range(10):
            assert len(manager.subscribers(vpn)) == 1
        assert removed == 30

    def test_demote_single_subscriber_pages(self, manager):
        manager.apply_profile({0: {0}, 1: set(), 2: set(), 3: set()})
        demoted = manager.demote_single_subscriber_pages()
        assert 0 in demoted
        assert manager.is_demoted(0)
        assert manager.stats.demotions == len(demoted)

    def test_resubscribe_repromotes(self, manager):
        manager.apply_profile({g: set() for g in range(4)})
        manager.demote_single_subscriber_pages()
        manager.subscribe(2, 0)
        assert not manager.is_demoted(0)


class TestTrimPlan:
    """The one shared keep-set rule behind apply_profile and tracking_stop."""

    def test_removes_non_touchers(self, manager):
        touched = {0: {0}, 1: {0}, 2: set(), 3: set()}
        assert manager.trim_plan(0, touched) == [2, 3]

    def test_untouched_page_keeps_lowest_subscriber(self, manager):
        plan = manager.trim_plan(0, {g: set() for g in range(4)})
        assert plan == [1, 2, 3]  # GPU 0 survives as the designated keeper

    def test_unregistered_page_yields_empty_plan(self, manager):
        assert manager.trim_plan(999, {0: {999}}) == []

    def test_plan_never_empties_the_subscriber_set(self, manager):
        # Applying the plan verbatim must never trip the last-subscriber
        # invariant, whatever the profile says.
        for touched in ({}, {g: set() for g in range(4)}, {2: {0}}):
            plan = manager.trim_plan(0, touched)
            assert len(manager.subscribers(0)) > len(plan)

    def test_apply_profile_survivors_match_the_plan(self, manager):
        touched = {0: {0, 1}, 1: {1}, 2: set(), 3: {2}}
        plans = {vpn: manager.trim_plan(vpn, touched) for vpn in manager.pages()}
        manager.apply_profile(touched)
        for vpn, plan in plans.items():
            assert manager.subscribers(vpn) == frozenset(range(4)) - set(plan)


class TestMultiSubscriberMask:
    """The array shadow must always agree with the dict-of-sets truth."""

    def _scalar(self, manager, vpn):
        return len(manager.subscribers(vpn)) > 1 and not manager.is_demoted(vpn)

    def test_matches_scalar_queries_after_mutations(self, manager):
        manager.unsubscribe(1, 2)
        manager.unsubscribe(2, 2)
        manager.unsubscribe(3, 2)        # page 2 -> single subscriber
        manager.demote_single_subscriber_pages()
        manager.subscribe(1, 2)          # re-promoted
        manager.unsubscribe(3, 5)
        manager.drop_page(7)
        manager.register_page(20, {0, 3})  # grows the shadow span
        vpns = np.array([-3, 0, 2, 5, 7, 9, 20, 21, 999], dtype=np.int64)
        mask = manager.multi_subscriber_mask(vpns)
        for vpn, flag in zip(vpns.tolist(), mask.tolist()):
            assert flag == self._scalar(manager, vpn), vpn

    def test_demotion_clears_the_mask(self, manager):
        manager.apply_profile({0: {0}, 1: {0}, 2: set(), 3: set()})
        manager.demote_single_subscriber_pages()
        mask = manager.multi_subscriber_mask(np.arange(10, dtype=np.int64))
        assert mask.tolist() == [True] + [False] * 9

    def test_empty_manager_all_false(self):
        mgr = SubscriptionManager(4)
        mask = mgr.multi_subscriber_mask(np.array([0, 1], dtype=np.int64))
        assert not mask.any()

    def test_empty_query(self, manager):
        assert manager.multi_subscriber_mask(np.empty(0, dtype=np.int64)).shape == (0,)


class TestHistogram:
    def test_all_to_all_histogram(self, manager):
        hist = manager.subscriber_histogram()
        assert hist == {4: 10}

    def test_shared_only_excludes_singletons(self, manager):
        manager.apply_profile({0: {0, 1}, 1: {0}, 2: set(), 3: set()})
        hist = manager.subscriber_histogram(only_shared=True)
        assert hist == {2: 1}

    def test_include_singletons(self, manager):
        manager.apply_profile({0: {0, 1}, 1: {0}, 2: set(), 3: set()})
        hist = manager.subscriber_histogram(only_shared=False)
        assert hist == {2: 1, 1: 9}
