"""Unit tests for the memory-consistency rules and checkers."""

from repro.core.consistency import (
    StoreEvent,
    check_point_to_point_order,
    check_same_address_order,
    may_coalesce,
)
from repro.trace.records import Scope


def weak(gpu, addr, seq):
    return StoreEvent(gpu=gpu, address=addr, scope=Scope.WEAK, seq=seq)


def sys_store(gpu, addr, seq):
    return StoreEvent(gpu=gpu, address=addr, scope=Scope.SYS, seq=seq)


class TestMayCoalesce:
    def test_weak_same_gpu_coalesces(self):
        assert may_coalesce(weak(0, 1, 0), weak(0, 1, 1), fence_between=False)

    def test_weak_different_addresses_coalesce(self):
        # Section 3.3: stores need not be consecutive or same-address.
        assert may_coalesce(weak(0, 1, 0), weak(0, 2, 1), fence_between=False)

    def test_sys_scope_never_coalesces(self):
        assert not may_coalesce(sys_store(0, 1, 0), weak(0, 1, 1), False)
        assert not may_coalesce(weak(0, 1, 0), sys_store(0, 1, 1), False)

    def test_fence_blocks_coalescing(self):
        assert not may_coalesce(weak(0, 1, 0), weak(0, 1, 1), fence_between=True)

    def test_cross_gpu_stores_do_not_merge(self):
        assert not may_coalesce(weak(0, 1, 0), weak(1, 1, 1), False)


class TestSameAddressOrder:
    def test_in_order_delivery_ok(self):
        issued = [weak(0, 1, 0), weak(0, 1, 1)]
        assert check_same_address_order(issued, issued)

    def test_reordered_same_address_violates(self):
        issued = [weak(0, 1, 0), weak(0, 1, 1)]
        assert not check_same_address_order(issued, list(reversed(issued)))

    def test_coalesced_away_store_is_legal(self):
        issued = [weak(0, 1, 0), weak(0, 1, 1)]
        delivered = [issued[1]]  # older store merged into newer
        assert check_same_address_order(issued, delivered)

    def test_different_addresses_may_reorder(self):
        issued = [weak(0, 1, 0), weak(0, 2, 1)]
        delivered = [issued[1], issued[0]]
        assert check_same_address_order(issued, delivered)


class TestPointToPointOrder:
    def test_matching_orders_ok(self):
        a = [weak(0, 1, 0), weak(0, 1, 1)]
        assert check_point_to_point_order([a, list(a)])

    def test_divergent_orders_violate(self):
        a = [weak(0, 1, 0), weak(0, 1, 1)]
        b = [weak(0, 1, 1), weak(0, 1, 0)]
        assert not check_point_to_point_order([a, b])

    def test_racy_cross_gpu_orders_allowed(self):
        # Stores from *different* GPUs to one address may arrive in
        # different orders at different consumers (section 3.3).
        a = [weak(0, 1, 0), weak(1, 1, 0)]
        b = [weak(1, 1, 0), weak(0, 1, 0)]
        assert check_point_to_point_order([a, b])

    def test_empty_subscribers(self):
        assert check_point_to_point_order([])
