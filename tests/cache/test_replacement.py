"""Unit tests for replacement policies."""

from repro.cache.replacement import FIFOPolicy, LRUPolicy


class TestLRU:
    def test_touch_absent(self):
        assert not LRUPolicy(2).touch(1)

    def test_fill_then_touch(self):
        policy = LRUPolicy(2)
        assert policy.fill(1) is None
        assert policy.touch(1)

    def test_eviction_order_respects_recency(self):
        policy = LRUPolicy(2)
        policy.fill(1)
        policy.fill(2)
        policy.touch(1)  # 2 is now LRU
        assert policy.fill(3) == 2

    def test_eviction_without_touch_is_fifo(self):
        policy = LRUPolicy(2)
        policy.fill(1)
        policy.fill(2)
        assert policy.fill(3) == 1

    def test_invalidate(self):
        policy = LRUPolicy(2)
        policy.fill(1)
        assert policy.invalidate(1)
        assert not policy.invalidate(1)
        assert len(policy) == 0


class TestFIFO:
    def test_touch_does_not_refresh(self):
        policy = FIFOPolicy(2)
        policy.fill(1)
        policy.fill(2)
        policy.touch(1)  # recency ignored
        assert policy.fill(3) == 1

    def test_touch_reports_presence(self):
        policy = FIFOPolicy(2)
        policy.fill(7)
        assert policy.touch(7)
        assert not policy.touch(8)

    def test_len(self):
        policy = FIFOPolicy(4)
        policy.fill(1)
        policy.fill(2)
        assert len(policy) == 2
