"""Unit tests for the set-associative cache model."""

import numpy as np
import pytest

from repro.cache.cache import Cache, CacheStats
from repro.cache.replacement import FIFOPolicy
from repro.errors import ConfigError


def make_cache(size=1024 * 128, block=128, assoc=4, **kw):
    return Cache(size, block, assoc, **kw)


class TestGeometry:
    def test_num_sets(self):
        cache = make_cache(size=128 * 16, assoc=4)
        assert cache.num_sets == 4

    def test_rejects_indivisible(self):
        with pytest.raises(ConfigError):
            Cache(128 * 10, 128, 4)

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ConfigError):
            Cache(1000, 100, 2)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            Cache(0, 128, 1)


class TestAccess:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert not cache.access(7)
        assert cache.access(7)

    def test_capacity_eviction(self):
        cache = Cache(128 * 2, 128, 2)  # 2 lines, 1 set
        cache.access(0)
        cache.access(1)
        cache.access(2)  # evicts 0 (LRU)
        assert not cache.access(0)
        assert cache.stats.evictions >= 1

    def test_working_set_within_capacity_all_hits_warm(self):
        cache = Cache(128 * 64, 128, 8)
        lines = list(range(64))
        cache.simulate_stream(lines)
        warm = cache.simulate_stream(lines)
        assert warm.hit_rate == 1.0

    def test_cyclic_thrash_beyond_capacity(self):
        # Classic LRU pathology: cyclic sweep of N+1 lines through an
        # N-line fully associative cache never hits.
        cache = Cache(128 * 8, 128, 8)
        lines = list(range(9)) * 3
        stats = cache.simulate_stream(lines)
        assert stats.hits == 0


class TestSimulateStream:
    def test_accepts_numpy(self):
        cache = make_cache()
        stats = cache.simulate_stream(np.array([1, 2, 1, 2], dtype=np.int64))
        assert stats.hits == 2
        assert stats.misses == 2

    def test_returns_delta_not_total(self):
        cache = make_cache()
        cache.simulate_stream([1, 2, 3])
        delta = cache.simulate_stream([1, 2, 3])
        assert delta.hits == 3
        assert delta.misses == 0
        assert cache.stats.misses == 3

    def test_empty_stream(self):
        cache = make_cache()
        stats = cache.simulate_stream([])
        assert stats.accesses == 0


class TestMaintenance:
    def test_invalidate(self):
        cache = make_cache()
        cache.access(5)
        assert cache.invalidate(5)
        assert not cache.access(5)  # miss again

    def test_invalidate_absent(self):
        assert not make_cache().invalidate(5)

    def test_flush(self):
        cache = make_cache()
        for line in range(10):
            cache.access(line)
        cache.flush()
        assert cache.resident_lines() == 0

    def test_flush_preserves_policy_type(self):
        cache = make_cache(policy_factory=FIFOPolicy)
        cache.access(1)
        cache.flush()
        cache.access(1)
        assert cache.resident_lines() == 1


class TestStats:
    def test_hit_rate_empty(self):
        assert CacheStats().hit_rate == 0.0

    def test_merge(self):
        merged = CacheStats(1, 2, 0).merge(CacheStats(3, 4, 5))
        assert (merged.hits, merged.misses, merged.evictions) == (4, 6, 5)
