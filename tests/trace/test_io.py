"""Tests for trace program serialization."""

import json

import pytest

import repro
from repro.errors import TraceError
from repro.trace.io import (
    FORMAT_VERSION,
    load_program,
    program_from_dict,
    program_to_dict,
    save_program,
)


@pytest.fixture
def program():
    return repro.get_workload("pagerank").build(4, scale=0.1, iterations=2)


class TestRoundTrip:
    def test_dict_round_trip_preserves_everything(self, program):
        restored = program_from_dict(program_to_dict(program))
        assert restored.name == program.name
        assert restored.num_gpus == program.num_gpus
        assert restored.buffers == program.buffers
        assert restored.phases == program.phases
        assert restored.metadata == program.metadata

    def test_file_round_trip(self, program, tmp_path):
        path = tmp_path / "trace.json"
        save_program(program, path)
        restored = load_program(path)
        assert restored.phases == program.phases

    def test_serialised_form_is_json(self, program, tmp_path):
        path = tmp_path / "trace.json"
        save_program(program, path)
        data = json.loads(path.read_text())
        assert data["format_version"] == FORMAT_VERSION
        assert data["name"] == "pagerank"

    def test_simulation_identical_after_round_trip(self, program):
        config = repro.default_system(4)
        restored = program_from_dict(program_to_dict(program))
        a = repro.simulate(program, "memcpy", config)
        b = repro.simulate(restored, "memcpy", config)
        assert a.total_time == b.total_time
        assert a.interconnect_bytes == b.interconnect_bytes

    def test_every_workload_round_trips(self):
        for name in repro.workload_names():
            program = repro.get_workload(name).build(2, scale=0.1, iterations=1)
            restored = program_from_dict(program_to_dict(program))
            assert restored.phases == program.phases, name


class TestValidation:
    def test_wrong_version_rejected(self, program):
        data = program_to_dict(program)
        data["format_version"] = 99
        with pytest.raises(TraceError):
            program_from_dict(data)

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TraceError):
            load_program(path)

    def test_inconsistent_program_rejected(self, program, tmp_path):
        # Corrupt an access to overrun its buffer: reconstruction must
        # re-validate and refuse.
        data = program_to_dict(program)
        data["phases"][1]["kernels"][0]["accesses"][0]["length"] = 10**12
        with pytest.raises(TraceError):
            program_from_dict(data)

    def test_defaults_fill_optional_fields(self, program):
        data = program_to_dict(program)
        del data["phases"][0]["kernels"][0]["launch_overhead"]
        restored = program_from_dict(data)
        assert restored.phases[0].kernels[0].launch_overhead == 5e-6
