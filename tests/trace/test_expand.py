"""Unit tests for trace expansion."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.expand import LineStream, expand_range, touched_lines, touched_pages
from repro.trace.records import AccessRange, MemOp, PatternKind, PatternSpec

BASE = 1 << 20  # line-aligned buffer base


def access(kind=PatternKind.SEQUENTIAL, length=128 * 64, **pattern_kw):
    spec = PatternSpec(kind, **pattern_kw)
    return AccessRange("b", 0, length, MemOp.WRITE, spec)


class TestSequential:
    def test_one_event_per_line(self):
        stream = expand_range(access(), BASE)
        assert len(stream) == 64
        assert stream.lines[0] == BASE // 128
        assert np.all(np.diff(stream.lines) == 1)

    def test_partial_last_line_rounds_up(self):
        stream = expand_range(access(length=200), BASE)
        assert len(stream) == 2

    def test_offset_respected(self):
        spec = AccessRange("b", 256, 128, MemOp.READ)
        stream = expand_range(spec, BASE)
        assert stream.lines[0] == BASE // 128 + 2

    def test_repeat_concatenates(self):
        spec = AccessRange("b", 0, 128 * 8, MemOp.READ, repeat=3)
        stream = expand_range(spec, BASE)
        assert len(stream) == 24

    def test_unaligned_base_rejected(self):
        with pytest.raises(TraceError):
            expand_range(access(), BASE + 1)

    def test_max_events_guard(self):
        with pytest.raises(TraceError):
            expand_range(access(length=128 * 100), BASE, max_events=10)


class TestStrided:
    def test_stride_skips_lines(self):
        stream = expand_range(access(PatternKind.STRIDED, stride=4), BASE)
        assert len(stream) == 16
        assert np.all(np.diff(stream.lines) == 4)


class TestRandom:
    def test_within_bounds(self):
        stream = expand_range(access(PatternKind.RANDOM), BASE)
        first = BASE // 128
        assert stream.lines.min() >= first
        assert stream.lines.max() < first + 64

    def test_touch_fraction_scales_events(self):
        dense = expand_range(access(PatternKind.RANDOM), BASE)
        sparse = expand_range(access(PatternKind.RANDOM, touch_fraction=0.25), BASE)
        assert len(sparse) == len(dense) // 4

    def test_deterministic_by_seed(self):
        a = expand_range(access(PatternKind.RANDOM, seed=5), BASE)
        b = expand_range(access(PatternKind.RANDOM, seed=5), BASE)
        assert np.array_equal(a.lines, b.lines)

    def test_different_seeds_differ(self):
        a = expand_range(access(PatternKind.RANDOM, seed=5), BASE)
        b = expand_range(access(PatternKind.RANDOM, seed=6), BASE)
        assert not np.array_equal(a.lines, b.lines)


class TestReuse:
    def test_stream_longer_than_fresh_walk(self):
        fresh = expand_range(access(), BASE)
        reuse = expand_range(
            access(PatternKind.REUSE, revisit_prob=0.4, revisit_window=8), BASE
        )
        assert len(reuse) > len(fresh)

    def test_revisits_hit_recent_lines(self):
        stream = expand_range(
            access(PatternKind.REUSE, length=128 * 512, revisit_prob=0.3, revisit_window=16),
            BASE,
        )
        # Count events that repeat an earlier line; should be near 30%.
        seen = set()
        revisits = 0
        for line in stream.lines.tolist():
            if line in seen:
                revisits += 1
            seen.add(line)
        assert 0.2 < revisits / len(stream) < 0.4

    def test_zero_revisit_prob_is_fresh_walk(self):
        stream = expand_range(
            access(PatternKind.REUSE, revisit_prob=0.0), BASE
        )
        assert len(stream) == 64


class TestLineStream:
    def test_total_bytes(self):
        stream = expand_range(access(), BASE)
        assert stream.total_bytes == 64 * 128

    def test_distinct_lines(self):
        stream = LineStream(
            np.array([1, 1, 2], dtype=np.int64), np.array([128] * 3, dtype=np.int32)
        )
        assert stream.distinct_lines == 2

    def test_pages(self):
        stream = expand_range(access(length=65536 * 2), BASE)
        pages = stream.pages(65536)
        assert len(pages) == 2

    def test_concat(self):
        a = expand_range(access(), BASE)
        combined = LineStream.concat([a, a])
        assert len(combined) == 2 * len(a)

    def test_concat_empty(self):
        assert len(LineStream.concat([])) == 0

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(TraceError):
            LineStream(np.zeros(3, dtype=np.int64), np.zeros(2, dtype=np.int32))


class TestHelpers:
    def test_touched_lines_unique_sorted(self):
        lines = touched_lines(access(PatternKind.RANDOM), BASE)
        assert np.all(np.diff(lines) > 0)

    def test_touched_pages(self):
        pages = touched_pages(access(length=65536 * 3), BASE, 65536)
        assert len(pages) == 3
