"""Unit tests for trace programs."""

import pytest

from repro.errors import TraceError
from repro.trace.program import BufferSpec, KernelSpec, Phase, TraceProgram
from repro.trace.records import AccessRange, MemOp


def kernel(gpu=0, buffer="buf", offset=0, length=128, op=MemOp.READ, name="k"):
    return KernelSpec(
        name=name,
        gpu=gpu,
        compute_ops=100.0,
        accesses=(AccessRange(buffer, offset, length, op),),
    )


def program(phases, buffers=None, num_gpus=4):
    buffers = buffers or (BufferSpec("buf", 65536),)
    return TraceProgram("test", num_gpus, buffers, tuple(phases))


class TestValidation:
    def test_valid_program(self):
        prog = program([Phase("p0", (kernel(0), kernel(1)))])
        assert prog.iterations == 1

    def test_unknown_buffer_rejected(self):
        with pytest.raises(TraceError):
            program([Phase("p0", (kernel(buffer="nope"),))])

    def test_overrun_rejected(self):
        with pytest.raises(TraceError):
            program([Phase("p0", (kernel(offset=65536, length=128),))])

    def test_gpu_out_of_range_rejected(self):
        with pytest.raises(TraceError):
            program([Phase("p0", (kernel(gpu=4),))], num_gpus=4)

    def test_duplicate_buffer_names_rejected(self):
        with pytest.raises(TraceError):
            program(
                [],
                buffers=(BufferSpec("buf", 100), BufferSpec("buf", 100)),
            )

    def test_two_kernels_same_gpu_same_phase_rejected(self):
        with pytest.raises(TraceError):
            Phase("p0", (kernel(0), kernel(0)))

    def test_zero_size_buffer_rejected(self):
        with pytest.raises(TraceError):
            BufferSpec("buf", 0)

    def test_negative_compute_rejected(self):
        with pytest.raises(TraceError):
            KernelSpec("k", 0, -1.0, ())


class TestQueries:
    def test_buffer_lookup(self):
        prog = program([])
        assert prog.buffer("buf").size == 65536
        with pytest.raises(TraceError):
            prog.buffer("zzz")

    def test_kernel_reads_and_stores(self):
        k = KernelSpec(
            "k",
            0,
            1.0,
            (
                AccessRange("buf", 0, 128, MemOp.READ),
                AccessRange("buf", 0, 128, MemOp.WRITE),
                AccessRange("buf", 0, 128, MemOp.ATOMIC),
            ),
        )
        assert len(k.reads()) == 1
        assert len(k.stores()) == 2

    def test_phase_kernel_on(self):
        phase = Phase("p", (kernel(0), kernel(2)))
        assert phase.kernel_on(0) is not None
        assert phase.kernel_on(1) is None
        assert phase.gpus == (0, 2)

    def test_iterations_excludes_setup(self):
        prog = program(
            [
                Phase("setup", (kernel(0),), iteration=-1),
                Phase("it0", (kernel(0),), iteration=0),
                Phase("it1", (kernel(0),), iteration=1),
            ]
        )
        assert prog.iterations == 2
        assert len(prog.phases_in_iteration(-1)) == 1
        assert len(prog.phases_in_iteration(0)) == 1

    def test_iter_kernels_in_order(self):
        prog = program(
            [
                Phase("p0", (kernel(0, name="a"),)),
                Phase("p1", (kernel(0, name="b"),)),
            ]
        )
        assert [k.name for k in prog.iter_kernels()] == ["a", "b"]

    def test_total_compute(self):
        prog = program([Phase("p0", (kernel(0), kernel(1)))])
        assert prog.total_compute_ops() == 200.0

    def test_shared_buffers(self):
        buffers = (BufferSpec("shared", 65536), BufferSpec("private", 65536))
        prog = TraceProgram(
            "t",
            2,
            buffers,
            (
                Phase(
                    "p0",
                    (
                        KernelSpec("a", 0, 1.0, (
                            AccessRange("shared", 0, 128, MemOp.READ),
                            AccessRange("private", 0, 128, MemOp.READ),
                        )),
                        KernelSpec("b", 1, 1.0, (
                            AccessRange("shared", 0, 128, MemOp.WRITE),
                        )),
                    ),
                ),
            ),
        )
        assert [b.name for b in prog.shared_buffers()] == ["shared"]
