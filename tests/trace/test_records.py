"""Unit tests for access descriptors."""

import pytest

from repro.errors import TraceError
from repro.trace.records import AccessRange, MemOp, PatternKind, PatternSpec, Scope


class TestMemOp:
    def test_is_store(self):
        assert not MemOp.READ.is_store
        assert MemOp.WRITE.is_store
        assert MemOp.ATOMIC.is_store


class TestPatternSpec:
    def test_defaults(self):
        pattern = PatternSpec()
        assert pattern.kind is PatternKind.SEQUENTIAL
        assert pattern.bytes_per_txn == 128

    def test_rejects_zero_stride(self):
        with pytest.raises(TraceError):
            PatternSpec(stride=0)

    def test_rejects_bad_touch_fraction(self):
        with pytest.raises(TraceError):
            PatternSpec(touch_fraction=0.0)
        with pytest.raises(TraceError):
            PatternSpec(touch_fraction=1.5)

    def test_rejects_bad_revisit_prob(self):
        with pytest.raises(TraceError):
            PatternSpec(revisit_prob=1.0)
        with pytest.raises(TraceError):
            PatternSpec(revisit_prob=-0.1)

    def test_rejects_bad_txn_bytes(self):
        with pytest.raises(TraceError):
            PatternSpec(bytes_per_txn=0)
        with pytest.raises(TraceError):
            PatternSpec(bytes_per_txn=256)

    def test_hashable(self):
        assert hash(PatternSpec()) == hash(PatternSpec())


class TestAccessRange:
    def test_end(self):
        access = AccessRange("b", 128, 256, MemOp.READ)
        assert access.end == 384

    def test_rejects_negative_offset(self):
        with pytest.raises(TraceError):
            AccessRange("b", -1, 10, MemOp.READ)

    def test_rejects_zero_length(self):
        with pytest.raises(TraceError):
            AccessRange("b", 0, 0, MemOp.READ)

    def test_rejects_zero_repeat(self):
        with pytest.raises(TraceError):
            AccessRange("b", 0, 128, MemOp.READ, repeat=0)

    def test_default_scope_weak(self):
        assert AccessRange("b", 0, 128, MemOp.WRITE).scope is Scope.WEAK

    def test_total_bytes_dense(self):
        access = AccessRange("b", 0, 128 * 10, MemOp.WRITE)
        assert access.total_bytes() == 1280

    def test_total_bytes_repeat(self):
        access = AccessRange("b", 0, 128 * 10, MemOp.WRITE, repeat=3)
        assert access.total_bytes() == 3840

    def test_total_bytes_partial_lines(self):
        pattern = PatternSpec(bytes_per_txn=16)
        access = AccessRange("b", 0, 128 * 10, MemOp.ATOMIC, pattern)
        assert access.total_bytes() == 160

    def test_total_bytes_strided(self):
        pattern = PatternSpec(PatternKind.STRIDED, stride=2)
        access = AccessRange("b", 0, 128 * 10, MemOp.READ, pattern)
        assert access.total_bytes() == 5 * 128

    def test_footprint_is_range_length(self):
        access = AccessRange("b", 0, 4096, MemOp.READ)
        assert access.footprint_bytes() == 4096
