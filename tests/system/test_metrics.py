"""Tests for derived metrics."""

import pytest

import repro
from repro.system.metrics import (
    communication_metrics,
    scaling_metrics,
    traffic_by_distance,
)
from tests.conftest import build


@pytest.fixture(scope="module")
def runs():
    config = repro.default_system(4)
    program = build("jacobi", iterations=3)
    single = repro.simulate(build("jacobi", num_gpus=1, iterations=3),
                            "memcpy", repro.default_system(1))
    return {
        "config": config,
        "single": single,
        "gps": repro.simulate(program, "gps", config),
        "memcpy": repro.simulate(program, "memcpy", config),
        "infinite": repro.simulate(program, "infinite", config),
    }


class TestCommunicationMetrics:
    def test_fields_consistent(self, runs):
        metrics = communication_metrics(runs["memcpy"], runs["config"])
        assert metrics.interconnect_bytes == runs["memcpy"].interconnect_bytes
        assert metrics.peak_egress_demand > 0
        assert 0 <= metrics.exposed_comm_fraction <= 1
        assert metrics.egress_imbalance >= 1.0

    def test_memcpy_exposes_more_than_gps(self, runs):
        config = runs["config"]
        gps = communication_metrics(runs["gps"], config)
        memcpy = communication_metrics(runs["memcpy"], config)
        assert memcpy.exposed_comm_fraction > gps.exposed_comm_fraction

    def test_balanced_stencil(self, runs):
        metrics = communication_metrics(runs["memcpy"], runs["config"])
        # Interior GPUs broadcast the same amount; edges slightly less.
        assert metrics.egress_imbalance < 2.0

    def test_zero_time_yields_zeroed_metrics(self, runs):
        # A legitimately empty run (e.g. a zero-iteration sweep point) must
        # not blow up the metrics layer — it reports zero demand and
        # perfect balance instead.
        result = runs["gps"]
        empty = type(result)(
            program_name="x", paradigm="x", num_gpus=4,
            total_time=0.0, traffic=result.traffic,
        )
        metrics = communication_metrics(empty, runs["config"])
        assert metrics.total_time == 0.0
        assert metrics.interconnect_bytes == empty.interconnect_bytes
        assert metrics.peak_egress_demand == 0.0
        assert metrics.peak_link_utilisation == 0.0
        assert metrics.egress_imbalance == 1.0
        assert metrics.exposed_comm_fraction == 0.0


class TestScalingMetrics:
    def test_composition(self, runs):
        metrics = scaling_metrics(runs["single"], runs["gps"], runs["infinite"])
        assert metrics.speedup == pytest.approx(
            runs["single"].total_time / runs["gps"].total_time
        )
        assert metrics.efficiency == pytest.approx(metrics.speedup / 4)
        assert 0 < metrics.opportunity_captured <= 1.0

    def test_infinite_captures_everything(self, runs):
        metrics = scaling_metrics(runs["single"], runs["infinite"], runs["infinite"])
        assert metrics.opportunity_captured == pytest.approx(1.0)


class TestTrafficByDistance:
    def test_stencil_concentrates_at_distance_one(self, runs):
        bins = traffic_by_distance(runs["gps"])
        # After profiling, Jacobi halos travel only between neighbours —
        # but the profiling iteration itself broadcast all-to-all, so
        # distance 1 dominates without being exclusive.
        assert bins[1] == max(bins.values())

    def test_all_to_all_spreads(self):
        config = repro.default_system(4)
        result = repro.simulate(build("als", iterations=3), "gps", config)
        bins = traffic_by_distance(result)
        assert set(bins) == {1, 2, 3}
        assert bins[2] > 0 and bins[3] > 0

    def test_bins_sum_to_total(self, runs):
        bins = traffic_by_distance(runs["memcpy"])
        assert sum(bins.values()) == runs["memcpy"].interconnect_bytes
