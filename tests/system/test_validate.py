"""Tests for the trace-program linter."""

import pytest

import repro
from repro.system.validate import lint_program
from repro.trace.program import BufferSpec, KernelSpec, Phase, TraceProgram
from repro.trace.records import AccessRange, MemOp

PAGE = 65536


def kernel(gpu, op=MemOp.READ, buffer="buf", offset=0, length=128):
    return KernelSpec(
        "k", gpu, 1.0, (AccessRange(buffer, offset, length, op),)
    )


def codes(diagnostics):
    return {d.code for d in diagnostics}


class TestCleanPrograms:
    @pytest.mark.parametrize("name", ["jacobi", "als", "ct"])
    def test_builtin_workloads_have_no_warnings(self, name):
        program = repro.get_workload(name).build(4, scale=0.1, iterations=2)
        warnings = [d for d in lint_program(program) if d.severity == "warning"]
        assert warnings == [], [str(w) for w in warnings]


class TestFindings:
    def test_unused_buffer(self):
        program = TraceProgram(
            "t",
            1,
            (BufferSpec("buf", PAGE), BufferSpec("ghost", PAGE)),
            (Phase("p", (kernel(0),), iteration=-1),),
        )
        assert "unused-buffer" in codes(lint_program(program))

    def test_idle_gpus(self):
        program = TraceProgram(
            "t",
            4,
            (BufferSpec("buf", PAGE),),
            (Phase("p", (kernel(0),), iteration=-1),),
        )
        diagnostics = lint_program(program)
        assert "idle-gpus" in codes(diagnostics)
        assert "[1, 2, 3]" in next(
            str(d) for d in diagnostics if d.code == "idle-gpus"
        )

    def test_missing_setup_phase(self):
        program = TraceProgram(
            "t",
            1,
            (BufferSpec("buf", PAGE),),
            (Phase("it0", (kernel(0),), iteration=0),),
        )
        assert "no-setup-phase" in codes(lint_program(program))

    def test_store_race_detected(self):
        program = TraceProgram(
            "t",
            2,
            (BufferSpec("buf", PAGE),),
            (
                Phase(
                    "p",
                    (
                        kernel(0, op=MemOp.WRITE, offset=0, length=256),
                        kernel(1, op=MemOp.WRITE, offset=128, length=256),
                    ),
                    iteration=-1,
                ),
            ),
        )
        assert "store-race" in codes(lint_program(program))

    def test_atomic_overlap_is_not_a_race(self):
        program = TraceProgram(
            "t",
            2,
            (BufferSpec("buf", PAGE),),
            (
                Phase(
                    "p",
                    (
                        kernel(0, op=MemOp.ATOMIC, offset=0, length=256),
                        kernel(1, op=MemOp.ATOMIC, offset=0, length=256),
                    ),
                    iteration=-1,
                ),
            ),
        )
        assert "store-race" not in codes(lint_program(program))

    def test_disjoint_stores_are_not_a_race(self):
        program = TraceProgram(
            "t",
            2,
            (BufferSpec("buf", PAGE),),
            (
                Phase(
                    "p",
                    (
                        kernel(0, op=MemOp.WRITE, offset=0, length=128),
                        kernel(1, op=MemOp.WRITE, offset=128, length=128),
                    ),
                    iteration=-1,
                ),
            ),
        )
        assert "store-race" not in codes(lint_program(program))

    def test_payload_imbalance(self):
        program = TraceProgram(
            "t",
            2,
            (BufferSpec("buf", 10 * PAGE),),
            (
                Phase(
                    "p",
                    (
                        kernel(0, length=128),
                        kernel(1, length=10 * PAGE),
                    ),
                    iteration=-1,
                ),
            ),
        )
        assert "payload-imbalance" in codes(lint_program(program))
