"""The removed ``repro.system.validate`` shim.

The linter moved to :mod:`repro.analysis` two releases ago; the
``lint_program`` deprecation shim is now gone. These tests pin the removal
contract: importing the module raises an :class:`ImportError` whose message
points old callers at the analyzer and maps the historical check names to
their stable rule codes.
"""

import importlib

import pytest


def test_import_raises_with_pointer_to_analysis():
    with pytest.raises(ImportError, match="repro.analysis"):
        importlib.import_module("repro.system.validate")


def test_import_error_maps_old_checks_to_rule_codes():
    with pytest.raises(ImportError, match="GPS101") as excinfo:
        importlib.import_module("repro.system.validate")
    message = str(excinfo.value)
    assert "analyze_program" in message
    assert "lint_program" in message


def test_replacement_covers_the_old_checks():
    """The historical checks named in the error message really exist."""
    from repro.analysis import RULES

    for code in ("GPS101", "GPS102", "GPS103", "GPS001", "GPS104"):
        assert code in RULES
