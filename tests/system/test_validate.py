"""The deprecated ``repro.system.validate`` shim.

The linter moved to :mod:`repro.analysis`; ``lint_program`` survives as a
deprecation shim that forwards to ``analyze_program``. These tests pin the
compatibility contract: the warning fires, the output is identical, and the
string-comparison idiom old callers relied on (``d.severity == "warning"``)
still works against the :class:`Severity` enum.
"""

import pytest

from repro.analysis import analyze_program
from repro.system.validate import lint_program
from repro.trace.program import BufferSpec, KernelSpec, Phase, TraceProgram
from repro.trace.records import AccessRange, MemOp

PAGE = 65536


def make_program():
    return TraceProgram(
        "t",
        2,
        (BufferSpec("buf", PAGE), BufferSpec("ghost", PAGE)),
        (
            Phase(
                "setup",
                (
                    KernelSpec(
                        "init", 0, 1.0,
                        (AccessRange("buf", 0, PAGE, MemOp.WRITE),),
                    ),
                ),
                iteration=-1,
            ),
        ),
    )


def test_emits_deprecation_warning():
    with pytest.warns(DeprecationWarning, match="analyze_program"):
        lint_program(make_program())


def test_forwards_to_analyze_program():
    program = make_program()
    with pytest.warns(DeprecationWarning):
        shimmed = lint_program(program)
    assert shimmed == analyze_program(program)


def test_severity_string_comparison_still_works():
    """Old callers filtered with ``d.severity == "warning"``."""
    program = make_program()
    with pytest.warns(DeprecationWarning):
        diagnostics = lint_program(program)
    warnings_ = [d for d in diagnostics if d.severity == "warning"]
    # ghost is never accessed -> GPS101 (the old unused-buffer warning).
    assert any(d.code == "GPS101" for d in warnings_)


def test_old_rule_names_survive_as_rule_field():
    """The old string codes live on as the ``rule`` kebab-case names."""
    program = make_program()
    with pytest.warns(DeprecationWarning):
        diagnostics = lint_program(program)
    names = {d.rule for d in diagnostics}
    assert "unused-buffer" in names
    assert "idle-gpus" in names
