"""Tests for execution timelines."""

import pytest

import repro
from repro.sim.engine import Engine
from repro.system.timeline import (
    extract_timeline,
    render_gantt,
    resource_utilisation,
    run_with_timeline,
)
from tests.conftest import build


def simple_engine():
    engine = Engine()
    gpu = engine.resource("gpu0")
    link = engine.resource("egress0")
    kernel = engine.task("phase/k@gpu0", 2.0, gpu)
    engine.task("phase/pub:eg0->1", 1.0, link)
    engine.task("phase/k2@gpu0", 1.0, gpu, deps=[kernel])
    engine.run()
    return engine


class TestExtract:
    def test_entries_sorted_and_filtered(self):
        entries = extract_timeline(simple_engine())
        assert [e.name for e in entries] == [
            "phase/pub:eg0->1",
            "phase/k@gpu0",
            "phase/k2@gpu0",
        ]
        assert entries[1].start == 0.0
        assert entries[2].start == 2.0

    def test_zero_duration_tasks_excluded(self):
        engine = Engine()
        engine.task("barrier", 0.0, engine.resource("r"))
        engine.run()
        assert extract_timeline(engine) == []

    def test_engine_that_never_ran_raises(self):
        # A never-run (or rebuilt/reset) engine must raise loudly instead
        # of silently producing an empty Gantt.
        from repro.errors import SimulationError

        engine = Engine()
        engine.task("phase/k@gpu0", 1.0, engine.resource("gpu0"))
        with pytest.raises(SimulationError, match="has not run"):
            extract_timeline(engine)

    def test_entries_carry_categories(self):
        engine = Engine()
        engine.task("k@gpu0", 1.0, engine.resource("gpu0"), category="kernel")
        engine.task("t:eg0->1", 1.0, engine.resource("egress0"), category="transfer")
        engine.run()
        categories = {e.name: e.category for e in extract_timeline(engine)}
        assert categories == {"k@gpu0": "kernel", "t:eg0->1": "transfer"}

    def test_disabled_collector_falls_back_to_tasks(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_TRACE", "1")
        engine = simple_engine()
        assert not engine.collector.enabled
        assert len(engine.collector) == 0
        entries = extract_timeline(engine)
        assert [e.name for e in entries] == [
            "phase/pub:eg0->1",
            "phase/k@gpu0",
            "phase/k2@gpu0",
        ]


class TestUtilisation:
    def test_fractions(self):
        util = resource_utilisation(simple_engine())
        assert util["gpu0"] == pytest.approx(1.0)
        assert util["egress0"] == pytest.approx(1.0 / 3.0)

    def test_empty_engine(self):
        engine = Engine()
        engine.run()
        assert resource_utilisation(engine) == {}


class TestGantt:
    def test_rows_and_fill(self):
        gantt = render_gantt(simple_engine(), width=30)
        lines = gantt.splitlines()
        assert len(lines) == 3  # header + 2 resources
        gpu_row = next(l for l in lines if "gpu0" in l)
        egress_row = next(l for l in lines if "egress0" in l)
        assert gpu_row.count("#") > egress_row.count("#")

    def test_empty(self):
        engine = Engine()
        engine.run()
        assert render_gantt(engine) == "(empty timeline)"

    def test_window_clipping(self):
        gantt = render_gantt(simple_engine(), width=30, start=2.5, end=3.0)
        gpu_row = next(l for l in gantt.splitlines() if "gpu0" in l)
        assert "#" in gpu_row  # k2 overlaps the window


class TestEndToEnd:
    def test_gps_overlaps_memcpy_serialises(self, system4):
        program = build("ct", scale=0.3, iterations=2)
        _, _, gps_util = run_with_timeline(
            repro.make_executor("gps", program, system4)
        )
        _, _, memcpy_util = run_with_timeline(
            repro.make_executor("memcpy", program, system4)
        )
        # Same bytes broadcast, but memcpy's run is longer, so its GPU
        # busy-fraction is lower: communication happened *after* compute.
        assert gps_util["gpu0"] > memcpy_util["gpu0"]

    def test_result_matches_simulate(self, system4):
        program = build("jacobi", iterations=2)
        result, gantt, util = run_with_timeline(
            repro.make_executor("gps", program, system4)
        )
        reference = repro.simulate(program, "gps", system4)
        assert result.total_time == reference.total_time
        assert "gpu0" in gantt or "gpu0" in "".join(util)
