"""Unit tests for program analysis."""

import numpy as np
import pytest

import repro
from repro.memory.address_space import AddressSpace
from repro.system.analysis import ProgramAnalysis, clear_analysis_cache, get_analysis
from repro.trace.program import BufferSpec, KernelSpec, Phase, TraceProgram
from repro.trace.records import AccessRange, MemOp, PatternKind, PatternSpec

PAGE = 65536


@pytest.fixture
def simple_program():
    buffers = (BufferSpec("a", 4 * PAGE), BufferSpec("b", 4 * PAGE))
    k0 = KernelSpec(
        "k",
        0,
        1000.0,
        (
            AccessRange("a", 0, 2 * PAGE, MemOp.READ),
            AccessRange("b", 0, 2 * PAGE, MemOp.WRITE),
        ),
    )
    k1 = KernelSpec(
        "k",
        1,
        1000.0,
        (
            AccessRange("a", 2 * PAGE, 2 * PAGE, MemOp.READ),
            AccessRange("b", 2 * PAGE, 2 * PAGE, MemOp.WRITE),
        ),
    )
    return TraceProgram("t", 2, buffers, (Phase("p", (k0, k1)),))


@pytest.fixture
def analysis(simple_program):
    return ProgramAnalysis(simple_program, repro.default_system(2))


class TestLayout:
    def test_bases_sequential_page_aligned(self, analysis):
        assert analysis.buffer_base("a") == AddressSpace.HEAP_BASE
        assert analysis.buffer_base("b") == AddressSpace.HEAP_BASE + 4 * PAGE

    def test_layout_matches_gps_runtime(self, simple_program):
        # The GPS executor asserts this; check it directly too.
        config = repro.default_system(2)
        analysis = ProgramAnalysis(simple_program, config)
        runtime = repro.GPSRuntime(config)
        for buf in simple_program.buffers:
            alloc = runtime.malloc_gps(buf.name, buf.size)
            assert alloc.start == analysis.buffer_base(buf.name)

    def test_buffer_of_page(self, analysis):
        base_vpn = AddressSpace.HEAP_BASE // PAGE
        assert analysis.buffer_of_page(base_vpn).name == "a"
        assert analysis.buffer_of_page(base_vpn + 4).name == "b"
        assert analysis.buffer_of_page(0) is None

    def test_shared_buffers_detected(self, analysis):
        assert analysis.is_shared_buffer("a")
        assert analysis.is_shared_buffer("b")
        assert analysis.shared_page_count() == 8


class TestFootprint:
    def test_pages_partitioned(self, simple_program, analysis):
        k0 = simple_program.phases[0].kernels[0]
        footprint = analysis.footprint(k0)
        assert footprint.read_pages.size == 2
        assert footprint.store_pages.size == 2
        assert footprint.all_pages.size == 4

    def test_bytes_by_kind(self, simple_program, analysis):
        k0 = simple_program.phases[0].kernels[0]
        footprint = analysis.footprint(k0)
        assert footprint.total_read_bytes == 2 * PAGE
        assert footprint.total_store_bytes == 2 * PAGE

    def test_footprint_memoised(self, simple_program, analysis):
        k0 = simple_program.phases[0].kernels[0]
        assert analysis.footprint(k0) is analysis.footprint(k0)

    def test_l2_hit_rate_small_footprint_warm(self, simple_program, analysis):
        # 128 KiB working set fits the 6 MiB L2: warm hit rate ~1.
        k0 = simple_program.phases[0].kernels[0]
        assert analysis.footprint(k0).l2_hit_rate == pytest.approx(1.0)


class TestPhaseDataflow:
    def test_page_writers(self, simple_program, analysis):
        writers = analysis.phase_page_writers(simple_program.phases[0])
        b_base = analysis.buffer_base("b") // PAGE
        assert writers[b_base] == [0]
        assert writers[b_base + 2] == [1]

    def test_page_readers(self, simple_program, analysis):
        readers = analysis.phase_page_readers(simple_program.phases[0])
        a_base = analysis.buffer_base("a") // PAGE
        assert readers[a_base] == [0]

    def test_written_extent_shared_only(self, simple_program, analysis):
        k0 = simple_program.phases[0].kernels[0]
        assert analysis.written_extent_bytes(k0) == 2 * PAGE


class TestStoreStreams:
    def test_streams_are_sm_coalesced(self, simple_program, analysis):
        k0 = simple_program.phases[0].kernels[0]
        streams = analysis.store_streams(k0)
        assert len(streams) == 1
        _, stream, atomic = streams[0]
        assert not atomic
        assert len(stream) == 2 * PAGE // 128

    def test_atomic_flag_propagates(self):
        buffers = (BufferSpec("a", PAGE),)
        kernel = KernelSpec(
            "k", 0, 1.0,
            (AccessRange("a", 0, PAGE, MemOp.ATOMIC, PatternSpec(PatternKind.RANDOM, bytes_per_txn=16)),),
        )
        program = TraceProgram("t", 1, buffers, (Phase("p", (kernel,)),))
        analysis = ProgramAnalysis(program, repro.default_system(1))
        _, _, atomic = analysis.store_streams(kernel)[0]
        assert atomic


class TestSharedCache:
    def test_same_program_shares_analysis(self):
        clear_analysis_cache()
        config = repro.default_system(4)
        program = repro.get_workload("jacobi").build(4, scale=0.1, iterations=2)
        assert get_analysis(program, config) is get_analysis(program, config)

    def test_different_page_size_not_shared(self):
        clear_analysis_cache()
        program = repro.get_workload("jacobi").build(4, scale=0.1, iterations=2)
        a = get_analysis(program, repro.default_system(4))
        b = get_analysis(program, repro.default_system(4).with_page_size(repro.PAGE_2M))
        assert a is not b
