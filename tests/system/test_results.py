"""Tests for result containers."""

import pytest

from repro.interconnect.traffic import TrafficMatrix
from repro.system.results import PhaseBreakdown, SimulationResult


def make_result(**kw):
    defaults = dict(
        program_name="p",
        paradigm="gps",
        num_gpus=4,
        total_time=1.5e-3,
        traffic=TrafficMatrix(4),
    )
    defaults.update(kw)
    return SimulationResult(**defaults)


class TestPhaseBreakdown:
    def test_duration(self):
        phase = PhaseBreakdown("p", start=1.0, end=3.5, kernel_time=2.0,
                               exposed_transfer_time=0.5)
        assert phase.duration == 2.5


class TestSimulationResult:
    def test_interconnect_bytes_delegates(self):
        result = make_result()
        result.traffic.add(0, 1, 4096)
        assert result.interconnect_bytes == 4096

    def test_summary_shape(self):
        result = make_result(fault_count=7, pages_migrated=3)
        summary = result.summary()
        assert summary == {
            "program": "p",
            "paradigm": "gps",
            "num_gpus": 4,
            "total_time_s": 1.5e-3,
            "interconnect_bytes": 0,
            "fault_count": 7,
            "pages_migrated": 3,
        }

    def test_default_collections_independent(self):
        a = make_result()
        b = make_result()
        a.phases.append("x")
        a.extras["k"] = 1
        assert b.phases == []
        assert b.extras == {}
