"""Service-sink tests: completed batches become append snapshots."""

from __future__ import annotations

import asyncio
import threading

import pytest

import repro
from repro.config import PCIE6
from repro.harness.runner import SimJob
from repro.service.metrics import ServiceMetrics
from repro.service.queue import Job
from repro.service.store_sink import StoreSink
from repro.store import ResultStore


@pytest.fixture(scope="module")
def completion():
    """One real (job, result) completion pair."""
    sim = SimJob("jacobi", "memcpy", 2, "pcie6", 0.1, 2)
    program = repro.get_workload("jacobi").build(2, scale=0.1, iterations=2)
    config = repro.default_system(2, PCIE6)
    result = repro.PARADIGMS["memcpy"](program, config).run()
    return Job(id="job-1", sim=sim, key=sim.key()), result


class TestStoreSink:
    def test_batch_becomes_one_snapshot(self, tmp_path, completion):
        sink = StoreSink(str(tmp_path / "store"))
        job, result = completion
        assert sink.persist([(job, result)]) == 1
        assert sink.persisted == 1

        store = ResultStore.open(
            tmp_path / "store", legacy=False, auto_refresh=False
        )
        assert store.current_snapshot_id() == 1
        record = store.record(job.key)
        assert record.meta == job.sim.meta()
        assert record.result == result.to_dict()
        assert record.model.startswith("repro-model/")

    def test_empty_batch_is_free(self, tmp_path):
        sink = StoreSink(str(tmp_path / "store"))
        assert sink.persist([]) == 0
        assert not (tmp_path / "store").exists()  # not even opened

    def test_metrics_counters_flow(self, tmp_path, completion):
        metrics = ServiceMetrics()
        sink = StoreSink(str(tmp_path / "store"), metrics)
        sink.persist([completion])
        snapshot = metrics.snapshot()
        assert snapshot["service.store.persisted"] == 1
        assert snapshot["service.store.errors"] == 0

    def test_store_failure_never_raises(self, tmp_path, completion, monkeypatch):
        metrics = ServiceMetrics()
        sink = StoreSink(str(tmp_path / "store"), metrics)

        def sick():
            raise OSError("disk full")

        monkeypatch.setattr(sink, "_open", sick)
        assert sink.persist([completion]) == 0
        assert sink.errors == 1
        assert metrics.snapshot()["service.store.errors"] == 1

    def test_concurrent_shard_commits_never_lose_records(self, tmp_path, completion):
        """Four shards persisting simultaneously through the one shared sink.

        Each scheduler shard calls ``persist`` from its own
        ``asyncio.to_thread`` worker; the sink's lock must serialize the
        lazy open and the appends so every record lands exactly once.
        """
        _, result = completion
        sink = StoreSink(str(tmp_path / "store"))
        barrier = threading.Barrier(4)

        def shard_commit(shard: int) -> None:
            batch = []
            for i in range(5):
                sim = SimJob("jacobi", "memcpy", 2, "pcie6", 0.1, 10 * shard + i + 1)
                batch.append((Job(id=f"job-{shard}-{i}", sim=sim, key=sim.key()), result))
            barrier.wait()  # maximise overlap: all four commit at once
            sink.persist(batch)

        threads = [
            threading.Thread(target=shard_commit, args=(shard,)) for shard in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert sink.errors == 0
        assert sink.persisted == 20

        store = ResultStore.open(tmp_path / "store", legacy=False, auto_refresh=False)
        assert store.current_snapshot_id() == 4  # one append snapshot per batch
        assert len({r.key for r in store.at(None).records()}) == 20

    def test_separate_sink_instances_rebase_cleanly(self, tmp_path, completion):
        """Two sinks on one directory (two processes, in effect) both land."""
        _, result = completion
        a = StoreSink(str(tmp_path / "store"))
        b = StoreSink(str(tmp_path / "store"))
        barrier = threading.Barrier(2)

        def commit(sink: StoreSink, offset: int) -> None:
            sim = SimJob("jacobi", "memcpy", 2, "pcie6", 0.1, 100 + offset)
            barrier.wait()
            sink.persist([(Job(id=f"job-x{offset}", sim=sim, key=sim.key()), result)])

        threads = [
            threading.Thread(target=commit, args=(sink, i))
            for i, sink in enumerate((a, b))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
        assert a.errors == 0 and b.errors == 0
        store = ResultStore.open(tmp_path / "store", legacy=False, auto_refresh=False)
        assert len({r.key for r in store.at(None).records()}) == 2

    def test_scheduler_hands_completions_to_sink(self, tmp_path, completion):
        """The scheduler's sink hook fires after futures settle."""
        from repro.service.queue import JobQueue
        from repro.service.scheduler import BatchScheduler

        job, result = completion

        class FakeSink:
            def __init__(self):
                self.batches = []

            def persist(self, completions):
                self.batches.append(list(completions))
                return len(completions)

        async def drive():
            metrics = ServiceMetrics()
            queue = JobQueue(metrics)
            sink = FakeSink()
            scheduler = BatchScheduler(
                queue,
                metrics,
                batch_size=1,
                max_wait_s=0.0,
                runner=lambda sims, workers: [result for _ in sims],
                traced=False,
                sink=sink,
            )
            ticket = queue.submit(job.sim)
            scheduler.start()
            outcome = await asyncio.wait_for(ticket.future, timeout=5.0)
            # The sink fires *after* futures settle; give it its turn.
            deadline = asyncio.get_running_loop().time() + 5.0
            while not sink.batches:
                if asyncio.get_running_loop().time() > deadline:
                    raise AssertionError("sink never saw the batch")
                await asyncio.sleep(0.01)
            await scheduler.stop()
            return sink, outcome

        sink, outcome = asyncio.run(drive())
        assert outcome is result
        assert len(sink.batches) == 1
        (persisted,) = sink.batches[0]
        assert persisted[0].key == job.key
        assert persisted[1] is result
