"""Service-sink tests: completed batches become append snapshots."""

from __future__ import annotations

import asyncio

import pytest

import repro
from repro.config import PCIE6
from repro.harness.runner import SimJob
from repro.service.metrics import ServiceMetrics
from repro.service.queue import Job
from repro.service.store_sink import StoreSink
from repro.store import ResultStore


@pytest.fixture(scope="module")
def completion():
    """One real (job, result) completion pair."""
    sim = SimJob("jacobi", "memcpy", 2, "pcie6", 0.1, 2)
    program = repro.get_workload("jacobi").build(2, scale=0.1, iterations=2)
    config = repro.default_system(2, PCIE6)
    result = repro.PARADIGMS["memcpy"](program, config).run()
    return Job(id="job-1", sim=sim, key=sim.key()), result


class TestStoreSink:
    def test_batch_becomes_one_snapshot(self, tmp_path, completion):
        sink = StoreSink(str(tmp_path / "store"))
        job, result = completion
        assert sink.persist([(job, result)]) == 1
        assert sink.persisted == 1

        store = ResultStore.open(
            tmp_path / "store", legacy=False, auto_refresh=False
        )
        assert store.current_snapshot_id() == 1
        record = store.record(job.key)
        assert record.meta == job.sim.meta()
        assert record.result == result.to_dict()
        assert record.model.startswith("repro-model/")

    def test_empty_batch_is_free(self, tmp_path):
        sink = StoreSink(str(tmp_path / "store"))
        assert sink.persist([]) == 0
        assert not (tmp_path / "store").exists()  # not even opened

    def test_metrics_counters_flow(self, tmp_path, completion):
        metrics = ServiceMetrics()
        sink = StoreSink(str(tmp_path / "store"), metrics)
        sink.persist([completion])
        snapshot = metrics.snapshot()
        assert snapshot["service.store.persisted"] == 1
        assert snapshot["service.store.errors"] == 0

    def test_store_failure_never_raises(self, tmp_path, completion, monkeypatch):
        metrics = ServiceMetrics()
        sink = StoreSink(str(tmp_path / "store"), metrics)

        def sick():
            raise OSError("disk full")

        monkeypatch.setattr(sink, "_open", sick)
        assert sink.persist([completion]) == 0
        assert sink.errors == 1
        assert metrics.snapshot()["service.store.errors"] == 1

    def test_scheduler_hands_completions_to_sink(self, tmp_path, completion):
        """The scheduler's sink hook fires after futures settle."""
        from repro.service.queue import JobQueue
        from repro.service.scheduler import BatchScheduler

        job, result = completion

        class FakeSink:
            def __init__(self):
                self.batches = []

            def persist(self, completions):
                self.batches.append(list(completions))
                return len(completions)

        async def drive():
            metrics = ServiceMetrics()
            queue = JobQueue(metrics)
            sink = FakeSink()
            scheduler = BatchScheduler(
                queue,
                metrics,
                batch_size=1,
                max_wait_s=0.0,
                runner=lambda sims, workers: [result for _ in sims],
                traced=False,
                sink=sink,
            )
            ticket = queue.submit(job.sim)
            scheduler.start()
            outcome = await asyncio.wait_for(ticket.future, timeout=5.0)
            # The sink fires *after* futures settle; give it its turn.
            deadline = asyncio.get_running_loop().time() + 5.0
            while not sink.batches:
                if asyncio.get_running_loop().time() > deadline:
                    raise AssertionError("sink never saw the batch")
                await asyncio.sleep(0.01)
            await scheduler.stop()
            return sink, outcome

        sink, outcome = asyncio.run(drive())
        assert outcome is result
        assert len(sink.batches) == 1
        (persisted,) = sink.batches[0]
        assert persisted[0].key == job.key
        assert persisted[1] is result
