"""Retention/vacuum tests: expiry closure, tag safety, space reclamation."""

from __future__ import annotations

import pytest

from repro.store import (
    RetentionPolicy,
    StoreError,
    compact,
    expire_snapshots,
    retained_snapshots,
    vacuum,
)
from repro.store.incremental import refresh_view, state_ids

from .conftest import make_record


def populate(store, n=5, start=0):
    """``n`` commits, one new fingerprint each."""
    for i in range(n):
        store.append([make_record(scale=float(start + i + 1))])


class TestPolicy:
    def test_must_keep_at_least_one(self):
        with pytest.raises(StoreError):
            RetentionPolicy(keep_last=0)

    def test_delta_chains_are_never_broken(self, store):
        # Five delta commits, no checkpoint: retaining the newest forces
        # retaining the whole chain it resolves through — expiring a
        # mid-chain manifest would corrupt every later read.
        populate(store, 5)
        keep = retained_snapshots(store, RetentionPolicy(keep_last=1))
        assert keep == {1, 2, 3, 4, 5}

    def test_closure_stops_at_checkpoints(self, store):
        populate(store, 3)          # 1..3: delta appends
        compact(store)              # 4: checkpoint (full partition list)
        populate(store, 2, start=3)  # 5, 6: deltas on top
        keep = retained_snapshots(store, RetentionPolicy(keep_last=2))
        # Roots {5, 6} resolve through the checkpoint at 4 and stop there.
        assert keep == {4, 5, 6}

    def test_retained_set_includes_tag_roots(self, store):
        populate(store, 3)
        compact(store)
        populate(store, 2, start=3)
        store.tag("old", 1)
        keep = retained_snapshots(store, RetentionPolicy(keep_last=2))
        assert 1 in keep

    def test_keep_tags_false_drops_tag_roots(self, store):
        populate(store, 3)
        compact(store)
        populate(store, 2, start=3)
        store.tag("old", 1)
        keep = retained_snapshots(
            store, RetentionPolicy(keep_last=2, keep_tags=False)
        )
        assert 1 not in keep


class TestExpire:
    def test_expire_deletes_manifests_outside_policy(self, store):
        populate(store, 3)           # 1..3
        compact(store)               # 4: checkpoint
        populate(store, 1, start=3)  # 5
        report = expire_snapshots(store, RetentionPolicy(keep_last=1))
        assert report.expired == (1, 2, 3)
        assert store.log.ids() == [4, 5]
        # Current state still fully readable (chain resolves at 4).
        assert len(store.at().records()) == 4

    def test_expire_prunes_matching_view_states(self, store):
        populate(store, 2)
        compact(store)  # 3: checkpoint
        for snapshot_id in (1, 2, 3):
            refresh_view(store, "fig08", snapshot_id)
        report = expire_snapshots(store, RetentionPolicy(keep_last=1))
        assert report.view_states_pruned == 2
        assert state_ids(store, "fig08") == [3]

    def test_time_travel_to_expired_snapshot_fails_cleanly(self, store):
        populate(store, 2)
        compact(store)  # 3: checkpoint
        expire_snapshots(store, RetentionPolicy(keep_last=1))
        with pytest.raises(StoreError):
            store.at(1).records()


class TestVacuum:
    def test_vacuum_reclaims_unreachable_partitions(self, store):
        populate(store, 4)
        compact(store)  # old fragments now only reachable via history
        before = len(list((store.directory / "partitions").glob("*.json")))
        report = vacuum(store, RetentionPolicy(keep_last=1))
        after = len(list((store.directory / "partitions").glob("*.json")))
        assert report.removed_partitions == 4
        assert report.removed_bytes > 0
        assert before - after == 4
        assert len(store.at().records()) == 4

    def test_vacuum_never_deletes_tagged_partitions(self, store):
        populate(store, 3)
        store.tag("pinned", 1)
        store.truncate()
        report = vacuum(store, RetentionPolicy(keep_last=1))
        # Everything reachable from the tag survives and stays readable.
        assert 1 not in report.expired_snapshots
        assert len(store.at("pinned").records()) == 1
        payload = store.at("pinned").canonical_payload(make_record(scale=1.0).key)
        assert payload is not None

    def test_vacuum_collects_orphans_from_crashed_commits(self, store):
        populate(store, 1)
        # A commit that died after writing its partition but before
        # publishing a manifest leaves an unreachable file behind.
        orphan = store.directory / "partitions" / ("f" * 64 + ".json")
        orphan.write_text("[]")
        report = vacuum(store)
        assert report.removed_partitions == 1
        assert not orphan.exists()

    def test_vacuum_collects_torn_temp_files(self, store):
        populate(store, 1)
        torn = store.directory / "partitions" / f"abc.json.tmp.{12345}"
        torn.write_text('{"partial"')
        report = vacuum(store)
        assert report.removed_temp_files == 1
        assert not torn.exists()

    def test_min_age_spares_recent_files(self, store):
        populate(store, 1)
        orphan = store.directory / "partitions" / ("e" * 64 + ".json")
        orphan.write_text("[]")
        report = vacuum(store, min_age_s=3600.0)
        assert report.removed_partitions == 0
        assert orphan.exists()

    def test_no_expire_only_collects_garbage(self, store):
        populate(store, 4)
        report = vacuum(store, RetentionPolicy(keep_last=1), expire=False)
        assert report.expired_snapshots == ()
        assert store.log.ids() == [1, 2, 3, 4]
        assert report.removed_partitions == 0  # everything still reachable
