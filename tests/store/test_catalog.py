"""Catalog tests: commits, snapshots, time travel, tags, legacy import."""

from __future__ import annotations

import json

import pytest

from repro.store import (
    CATALOG_FILE,
    ResultStore,
    StoreError,
    canonical_json,
    open_store,
)
from repro.store.snapshots import CHECKPOINT_EVERY

from .conftest import make_record


class TestOpen:
    def test_fresh_store_is_empty(self, store):
        assert store.current_snapshot_id() is None
        assert store.at().records() == []
        assert store.stats()["records"] == 0

    def test_reopen_sees_committed_state(self, tmp_path, record_factory):
        directory = tmp_path / "store"
        first = ResultStore.open(directory, legacy=False, auto_refresh=False)
        first.append([record_factory()])
        second = ResultStore.open(directory, legacy=False, auto_refresh=False)
        assert second.current_snapshot_id() == 1
        assert len(second.at().records()) == 1

    def test_open_store_convenience(self, tmp_path):
        store = open_store(tmp_path / "s", legacy=False)
        assert store.current_snapshot_id() is None


class TestAppend:
    def test_append_publishes_one_snapshot(self, store, record_factory):
        snapshot = store.append([record_factory(paradigm="gps")])
        assert snapshot.snapshot_id == 1
        assert snapshot.operation == "append"
        assert snapshot.summary == {"records": 1, "partitions": 1}

    def test_empty_append_is_a_noop(self, store):
        assert store.append([]) is None
        assert store.current_snapshot_id() is None

    def test_records_group_into_cells(self, store, record_factory):
        snapshot = store.append(
            [
                record_factory(workload="jacobi", paradigm="gps"),
                record_factory(workload="jacobi", paradigm="gps", num_gpus=8),
                record_factory(workload="jacobi", paradigm="memcpy"),
                record_factory(workload="ct", paradigm="gps"),
            ]
        )
        # 3 cells: (jacobi,gps) holds two records, the others one each.
        assert snapshot.summary == {"records": 4, "partitions": 3}
        entries = store.at().partitions()
        assert sum(e.records for e in entries) == 4

    def test_recommit_shadows_older_copy(self, store, record_factory):
        store.append([record_factory(total_time=1.0)])
        newer = record_factory(total_time=2.0)
        store.append([newer])
        record = store.record(newer.key)
        assert record.result["total_time"] == 2.0
        # Both copies exist physically until compaction.
        assert len(store.at().partitions()) == 2
        # But reads see each fingerprint exactly once.
        assert len(store.at().records()) == 1

    def test_get_deserialises_result(self, store, record_factory):
        record = record_factory(total_time=3.5)
        store.append([record])
        result = store.get(record.key)
        assert result.total_time == 3.5
        assert result.program_name == "jacobi"

    def test_canonical_payload_matches_committed_result(self, store, record_factory):
        record = record_factory()
        store.append([record])
        assert store.at().canonical_payload(record.key) == canonical_json(record.result)

    def test_missing_key_reads_none(self, store):
        assert store.get("no-such-fingerprint") is None
        assert store.record("no-such-fingerprint") is None
        assert store.at().canonical_payload("no-such-fingerprint") is None


class TestTimeTravel:
    def test_at_pins_an_old_snapshot(self, store, record_factory):
        old = record_factory(workload="jacobi", total_time=1.0)
        store.append([old])
        store.append([record_factory(workload="ct")])
        newer = make_record(workload="jacobi", total_time=9.0)
        store.append([newer])

        assert len(store.at(1).records()) == 1
        assert store.at(1).record(old.key).result["total_time"] == 1.0
        assert store.at(3).record(old.key).result["total_time"] == 9.0
        assert len(store.at().records()) == 2

    def test_truncate_keeps_history_readable(self, store, record_factory):
        record = record_factory()
        store.append([record])
        snapshot = store.truncate()
        assert snapshot.operation == "truncate"
        assert store.at().records() == []
        assert store.at(1).record(record.key) is not None

    def test_truncate_empty_store_is_noop(self, store):
        assert store.truncate() is None

    def test_resolve_rejects_unknown_ref(self, store, record_factory):
        store.append([record_factory()])
        with pytest.raises(StoreError):
            store.at("no-such-tag")


class TestTags:
    def test_tag_and_read_through_tag(self, store, record_factory):
        record = record_factory()
        store.append([record])
        store.tag("baseline")
        store.append([make_record(workload="ct")])
        assert store.tags() == {"baseline": 1}
        assert len(store.at("baseline").records()) == 1

    def test_clone_is_a_tag(self, store, record_factory):
        store.append([record_factory()])
        assert store.clone("experiment") == 1
        assert store.tags()["experiment"] == 1

    def test_drop_tag(self, store, record_factory):
        store.append([record_factory()])
        store.tag("t")
        assert store.drop_tag("t")
        assert not store.drop_tag("t")
        assert store.tags() == {}

    def test_tag_empty_store_fails(self, store):
        with pytest.raises(StoreError):
            store.tag("nothing-yet")


class TestCheckpoints:
    def test_chain_checkpoints_bound_resolution_depth(self, store, record_factory):
        for i in range(CHECKPOINT_EVERY + 2):
            store.append([make_record(scale=float(i + 1))])
        head = store.current_snapshot_id()
        assert head == CHECKPOINT_EVERY + 2
        # At least one non-root manifest must carry a full partition list.
        checkpoints = [
            s.snapshot_id for s in store.history() if s.partitions is not None
        ]
        assert checkpoints
        assert store.log.chain_depth(head) < CHECKPOINT_EVERY
        assert len(store.at().records()) == CHECKPOINT_EVERY + 2

    def test_truncate_forces_checkpoint(self, store, record_factory):
        store.append([record_factory()])
        snapshot = store.truncate()
        assert snapshot.partitions == ()


class TestLegacyImport:
    def _legacy_record(self, legacy_dir, record):
        legacy_dir.mkdir(parents=True, exist_ok=True)
        (legacy_dir / f"{record.key}.json").write_text(
            json.dumps(
                {
                    "record_version": 1,
                    "model": record.model,
                    "key": record.key,
                    "job": record.meta,
                    "result": record.result,
                }
            )
        )

    def test_first_open_imports_flat_cache(self, tmp_path, record_factory):
        legacy = tmp_path / ".repro-cache"
        record = record_factory()
        self._legacy_record(legacy, record)
        (legacy / "torn.json").write_text("{not json")

        store = ResultStore.open(
            tmp_path / "store", legacy=legacy, auto_refresh=False
        )
        assert store.current_snapshot_id() == 1
        snapshot = store.history()[0]
        assert snapshot.operation == "import"
        imported = store.record(record.key)
        assert imported.meta == record.meta
        assert imported.result == record.result
        assert imported.model == record.model

    def test_import_happens_once(self, tmp_path, record_factory):
        legacy = tmp_path / ".repro-cache"
        self._legacy_record(legacy, record_factory())
        ResultStore.open(tmp_path / "store", legacy=legacy, auto_refresh=False)
        again = ResultStore.open(tmp_path / "store", legacy=legacy, auto_refresh=False)
        assert again.current_snapshot_id() == 1  # no second import commit

    def test_missing_legacy_dir_imports_nothing(self, tmp_path):
        store = ResultStore.open(
            tmp_path / "store", legacy=tmp_path / "nope", auto_refresh=False
        )
        assert store.current_snapshot_id() is None


class TestStatsAndPointer:
    def test_stats_shape(self, store, record_factory):
        store.append([record_factory()])
        store.tag("v1")
        stats = store.stats()
        assert stats["current_snapshot"] == 1
        assert stats["snapshots"] == 1
        assert stats["records"] == 1
        assert stats["partitions"] == 1
        assert stats["partition_files"] == 1
        assert stats["bytes"] > 0
        assert stats["tags"] == {"v1": 1}
        assert set(stats["views"]) == {"fig08", "fig10", "fig11", "fig12"}

    def test_catalog_pointer_tracks_current(self, store, record_factory):
        store.append([record_factory()])
        pointer = json.loads((store.directory / CATALOG_FILE).read_text())
        assert pointer["current_snapshot"] == 1
