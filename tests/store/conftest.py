"""Fixtures for the result-store suite: synthetic records and tmp stores.

Store-level tests run on synthetic :class:`StoredRecord` payloads — the
store treats results as opaque JSON, so nothing here needs to simulate.
The payloads still carry every field ``SimulationResult.from_dict``
requires, so point lookups (``store.get``) deserialise for real.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.store import ResultStore, StoredRecord


def make_record(
    workload: str = "jacobi",
    paradigm: str = "gps",
    num_gpus: int = 4,
    link: str = "PCIe 6.0",
    scale: float = 0.5,
    iterations: int = 8,
    total_time: float = 1.0,
    traffic_bytes: int = 4096,
    model: str = "repro-model/test",
) -> StoredRecord:
    """One synthetic stored record, fingerprinted by its config identity."""
    meta = {
        "workload": workload,
        "paradigm": paradigm,
        "num_gpus": num_gpus,
        "link": link,
        "scale": scale,
        "iterations": iterations,
    }
    key = hashlib.sha256(
        "|".join(str(meta[k]) for k in sorted(meta)).encode() + model.encode()
    ).hexdigest()
    row = [0] * num_gpus
    traffic = [list(row) for _ in range(num_gpus)]
    if num_gpus > 1:
        traffic[0][1] = traffic_bytes
    result = {
        "program_name": workload,
        "paradigm": paradigm,
        "num_gpus": num_gpus,
        "total_time": total_time,
        "traffic": traffic,
        "phases": [],
        "write_queue_stats": [],
        "gps_tlb_stats": [],
        "subscriber_histogram": {},
        "fault_count": 0,
        "pages_migrated": 0,
        "counters": {},
        "extras": {},
    }
    return StoredRecord(key=key, meta=meta, result=result, model=model)


@pytest.fixture
def record_factory():
    return make_record


@pytest.fixture
def store(tmp_path) -> ResultStore:
    """A fresh store with legacy import and auto-refresh off (fast)."""
    return ResultStore.open(tmp_path / "store", legacy=False, auto_refresh=False)
