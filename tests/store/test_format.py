"""Unit tests for the store's durable-object primitives."""

from __future__ import annotations

import json

import pytest

from repro.store import CommitConflict, StoreError, canonical_json
from repro.store.format import content_digest, publish_object, read_json, write_pointer


class TestCanonicalJson:
    def test_key_order_is_canonical(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_compact_separators(self):
        assert canonical_json({"a": [1, 2]}) == '{"a":[1,2]}'

    def test_digest_tracks_content_not_layout(self):
        assert content_digest({"x": 1}) == content_digest({"x": 1})
        assert content_digest({"x": 1}) != content_digest({"x": 2})


class TestWritePointer:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "sub" / "ptr.json"
        write_pointer(path, {"current": 7})
        assert read_json(path) == {"current": 7}

    def test_replace_is_atomic_no_temp_left(self, tmp_path):
        path = tmp_path / "ptr.json"
        write_pointer(path, {"current": 1})
        write_pointer(path, {"current": 2})
        assert read_json(path) == {"current": 2}
        assert [p.name for p in tmp_path.iterdir()] == ["ptr.json"]


class TestPublishObject:
    def test_exclusive_claim_conflicts(self, tmp_path):
        path = tmp_path / "00000001.json"
        assert publish_object(path, {"snapshot": 1}, exclusive=True)
        with pytest.raises(CommitConflict):
            publish_object(path, {"snapshot": 99}, exclusive=True)
        # The loser must not have clobbered the winner.
        assert read_json(path) == {"snapshot": 1}

    def test_content_addressed_publish_is_idempotent(self, tmp_path):
        path = tmp_path / "abcd.json"
        assert publish_object(path, {"v": 1}, exclusive=False)
        assert not publish_object(path, {"v": 1}, exclusive=False)
        assert read_json(path) == {"v": 1}

    def test_no_temp_files_survive(self, tmp_path):
        path = tmp_path / "obj.json"
        publish_object(path, {"v": 1}, exclusive=False)
        publish_object(path, {"v": 1}, exclusive=False)
        assert sorted(p.name for p in tmp_path.iterdir()) == ["obj.json"]

    def test_published_bytes_are_canonical(self, tmp_path):
        path = tmp_path / "obj.json"
        publish_object(path, {"b": 1, "a": [1, 2]}, exclusive=False)
        assert path.read_text() == '{"a":[1,2],"b":1}'
        assert json.loads(path.read_text()) == {"a": [1, 2], "b": 1}


class TestReadJson:
    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_json(tmp_path / "nope.json")

    def test_torn_file_raises_store_error(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"partial": ')
        with pytest.raises(StoreError):
            read_json(path)
