"""Tests for the ``repro store`` CLI verbs."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.store import ResultStore

from .conftest import make_record


@pytest.fixture
def store_dir(tmp_path):
    """A populated store with four snapshots and a tag."""
    directory = tmp_path / "store"
    store = ResultStore.open(directory, legacy=False, auto_refresh=False)
    store.append(
        [
            make_record(paradigm="memcpy", num_gpus=1, total_time=8.0),
            make_record(paradigm="gps", num_gpus=4, total_time=2.0),
        ]
    )
    store.tag("baseline")
    store.append([make_record(paradigm="um", num_gpus=4, total_time=16.0)])
    store.append([make_record(workload="ct", paradigm="gps", total_time=1.0)])
    # Fragment the (jacobi, gps) cell so compaction has work to do.
    store.append([make_record(paradigm="gps", num_gpus=4, scale=2.0, total_time=1.5)])
    return directory


def run(store_dir, *argv):
    return main(["store", *argv, "--dir", str(store_dir)])


class TestShow:
    def test_summary_rows(self, store_dir, capsys):
        assert run(store_dir, "show") == 0
        out = capsys.readouterr().out
        assert "current snapshot" in out
        assert ": 4" in out  # four snapshots
        assert "baseline@1" in out
        assert "records" in out

    def test_time_travel(self, store_dir, capsys):
        assert run(store_dir, "show", "--at", "baseline") == 0
        assert "reading at" in capsys.readouterr().out

    def test_store_error_exits_one(self, store_dir, capsys):
        assert run(store_dir, "show", "--at", "no-such-tag") == 1
        assert "store error" in capsys.readouterr().err


class TestQuery:
    def test_table_output(self, store_dir, capsys):
        assert run(store_dir, "query") == 0
        out = capsys.readouterr().out
        assert "5 results" in out
        assert "workload" in out
        assert "jacobi" in out

    def test_filters_and_projection(self, store_dir, capsys):
        assert (
            run(
                store_dir,
                "query",
                "--where",
                "paradigm=gps",
                "--columns",
                "workload,total_time",
                "--json",
            )
            == 0
        )
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 3
        assert all(set(row) == {"workload", "total_time"} for row in rows)

    def test_order_and_limit(self, store_dir, capsys):
        assert (
            run(
                store_dir,
                "query",
                "--order-by=-total_time",
                "--limit",
                "1",
                "--json",
            )
            == 0
        )
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        assert rows[0]["total_time"] == 16.0

    def test_query_at_tag(self, store_dir, capsys):
        assert run(store_dir, "query", "--at", "baseline", "--json") == 0
        assert len(json.loads(capsys.readouterr().out)) == 2

    def test_unknown_column_is_a_store_error(self, store_dir, capsys):
        assert run(store_dir, "query", "--columns", "bogus") == 1
        assert "store error" in capsys.readouterr().err


class TestTags:
    def test_list(self, store_dir, capsys):
        assert run(store_dir, "tags") == 0
        assert "baseline" in capsys.readouterr().out

    def test_add_and_drop(self, store_dir, capsys):
        assert run(store_dir, "tags", "release", "--at", "2") == 0
        assert "tagged snapshot 2" in capsys.readouterr().out
        assert run(store_dir, "tags", "release", "--drop") == 0
        assert run(store_dir, "tags", "release", "--drop") == 1
        assert "no such tag" in capsys.readouterr().err


class TestMaintenance:
    def test_compact_then_noop(self, store_dir, capsys):
        assert run(store_dir, "compact") == 0
        assert "compacted" in capsys.readouterr().out
        assert run(store_dir, "compact") == 0
        assert "nothing to compact" in capsys.readouterr().out

    def test_vacuum_reports(self, store_dir, capsys):
        run(store_dir, "compact")
        capsys.readouterr()
        assert run(store_dir, "vacuum", "--keep-last", "1") == 0
        out = capsys.readouterr().out
        assert "expired" in out
        assert "partitions live" in out


class TestHistory:
    def test_walks_the_chain(self, store_dir, capsys):
        assert run(store_dir, "history") == 0
        out = capsys.readouterr().out
        assert "append" in out
        assert "<baseline>" in out

    def test_limit_notes_continuation(self, store_dir, capsys):
        assert run(store_dir, "history", "--limit", "1") == 0
        assert "history continues at snapshot 3" in capsys.readouterr().out
