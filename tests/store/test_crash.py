"""Crash-recovery and concurrency tests for the commit protocol.

The properties pinned here are the store's whole reason to exist:

* a writer killed at *any* point mid-commit leaves the previous snapshot
  fully readable — a fresh open never sees a torn state;
* vacuum collects the debris such a crash leaves (orphan partitions,
  torn temp files) without touching anything reachable — in particular
  anything reachable from a tagged snapshot;
* two writers committing concurrently serialize through the exclusive
  snapshot-id claim without losing either commit.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.store import CommitConflict, ResultStore, StoreError, vacuum
from repro.store.snapshots import SnapshotLog, snapshot_name

from .conftest import make_record


def reopen(store) -> ResultStore:
    """A cold open of the same directory (fresh caches, like a new process)."""
    return ResultStore.open(store.directory, legacy=False, auto_refresh=False)


class TestCrashMidCommit:
    def test_crash_before_manifest_publish(self, store, monkeypatch):
        """Partitions written, manifest never published: nothing changed."""
        store.append([make_record(scale=1.0)])

        def crash(self, snapshot):
            raise OSError("injected crash before manifest publish")

        with monkeypatch.context() as patched:
            patched.setattr(SnapshotLog, "publish", crash)
            with pytest.raises(OSError):
                store.append([make_record(scale=2.0)])

        survivor = reopen(store)
        assert survivor.current_snapshot_id() == 1
        assert len(survivor.at().records()) == 1
        # The crashed commit's partition file is orphaned on disk ...
        partitions = list((store.directory / "partitions").glob("*.json"))
        assert len(partitions) == 2
        # ... and a later append is entirely unaffected.
        survivor.append([make_record(scale=3.0)])
        assert survivor.current_snapshot_id() == 2

    def test_crash_between_manifest_and_pointer(self, store, monkeypatch):
        """Manifest published, catalog pointer never advanced: the log is
        the source of truth, so the commit IS durable."""
        store.append([make_record(scale=1.0)])

        from repro.store import catalog as catalog_module

        def crash(path, payload):
            raise OSError("injected crash before pointer write")

        with monkeypatch.context() as patched:
            patched.setattr(catalog_module, "write_pointer", crash)
            with pytest.raises(OSError):
                store.append([make_record(scale=2.0)])

        survivor = reopen(store)
        assert survivor.current_snapshot_id() == 2
        assert len(survivor.at().records()) == 2

    def test_torn_manifest_temp_is_invisible_and_collected(self, store):
        store.append([make_record(scale=1.0)])
        torn = store.directory / "snapshots" / f"{snapshot_name(2)}.tmp.999"
        torn.write_text('{"snapshot": 2, "par')

        survivor = reopen(store)
        assert survivor.current_snapshot_id() == 1
        assert survivor.log.ids() == [1]
        report = vacuum(survivor)
        assert report.removed_temp_files == 1
        assert not torn.exists()

    def test_out_of_band_damaged_head_is_walked_over(self, store):
        store.append([make_record(scale=1.0)])
        store.append([make_record(scale=2.0)])
        # Damage the head manifest out-of-band (disk corruption, not a
        # torn write — publishes are atomic).
        (store.directory / "snapshots" / snapshot_name(2)).write_text("{caput")

        survivor = reopen(store)
        assert survivor.current_snapshot_id() == 1
        assert len(survivor.at().records()) == 1

    def test_vacuum_after_crash_respects_tags(self, store, monkeypatch):
        """The crash-orphan is collected; the tagged snapshot's bytes are not."""
        pinned = make_record(scale=1.0)
        store.append([pinned])
        store.tag("keep")

        with monkeypatch.context() as patched:
            patched.setattr(
                SnapshotLog, "publish",
                lambda self, s: (_ for _ in ()).throw(OSError("crash")),
            )
            with pytest.raises(OSError):
                store.append([make_record(scale=2.0)])

        survivor = reopen(store)
        report = vacuum(survivor)
        assert report.removed_partitions == 1  # the orphan
        assert survivor.at("keep").canonical_payload(pinned.key) is not None


class TestConcurrentWriters:
    def test_two_writers_serialize_without_loss(self, tmp_path):
        """Both sides of an id race land; the loser rebases and retries."""
        directory = tmp_path / "shared"
        a = ResultStore.open(directory, legacy=False, auto_refresh=False)
        b = ResultStore.open(directory, legacy=False, auto_refresh=False)

        barrier = threading.Barrier(2)
        outcomes: "dict[str, object]" = {}

        def writer(name, handle, scale):
            barrier.wait()
            outcomes[name] = handle.append([make_record(scale=scale)])

        threads = [
            threading.Thread(target=writer, args=("a", a, 10.0)),
            threading.Thread(target=writer, args=("b", b, 20.0)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert {outcomes["a"].snapshot_id, outcomes["b"].snapshot_id} == {1, 2}
        survivor = reopen(a)
        assert survivor.current_snapshot_id() == 2
        keys = {record.key for record in survivor.at().records()}
        assert keys == {make_record(scale=10.0).key, make_record(scale=20.0).key}

    def test_many_threads_many_commits(self, tmp_path):
        directory = tmp_path / "shared"
        stores = [
            ResultStore.open(directory, legacy=False, auto_refresh=False)
            for _ in range(4)
        ]
        barrier = threading.Barrier(4)
        errors = []

        def writer(index, handle):
            try:
                barrier.wait()
                for j in range(3):
                    handle.append([make_record(scale=float(index * 10 + j + 1))])
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(i, s))
            for i, s in enumerate(stores)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        survivor = ResultStore.open(directory, legacy=False, auto_refresh=False)
        assert survivor.current_snapshot_id() == 12
        assert len(survivor.at().records()) == 12

    def test_losing_an_exclusive_claim_is_a_conflict_not_corruption(self, store):
        store.append([make_record(scale=1.0)])
        stale = store.log.load(1)
        with pytest.raises(CommitConflict):
            store.log.publish(stale)
        # The original manifest is untouched by the failed claim.
        payload = json.loads(
            (store.directory / "snapshots" / snapshot_name(1)).read_text()
        )
        assert payload["snapshot"] == 1

    def test_commit_gives_up_after_max_races(self, store, monkeypatch):
        """A writer that always loses eventually raises instead of spinning."""
        store.append([make_record(scale=1.0)])

        def always_conflict(self, snapshot):
            raise CommitConflict("someone else every time")

        with monkeypatch.context() as patched:
            patched.setattr(SnapshotLog, "publish", always_conflict)
            with pytest.raises(StoreError, match="lost"):
                store.append([make_record(scale=2.0)])
