"""Compaction tests: dedup, visibility preservation, time-travel safety."""

from __future__ import annotations

from repro.store import compact

from .conftest import make_record


class TestCompact:
    def test_noop_on_unfragmented_store(self, store):
        store.append([make_record()])
        report = compact(store)
        assert report.snapshot is None
        assert report.cells_compacted == 0
        assert store.current_snapshot_id() == 1  # no snapshot published

    def test_merges_fragmented_cell(self, store):
        for scale in (0.1, 0.2, 0.3):
            store.append([make_record(scale=scale)])
        assert len(store.at().partitions()) == 3

        report = compact(store)
        assert report.cells_compacted == 1
        assert report.files_before == 3
        assert report.files_after == 1
        assert report.records == 3
        assert report.shadowed_dropped == 0
        assert len(store.at().partitions()) == 1
        assert len(store.at().records()) == 3

    def test_drops_shadowed_copies(self, store):
        store.append([make_record(total_time=1.0)])
        store.append([make_record(total_time=2.0)])  # same fingerprint, shadows

        report = compact(store)
        assert report.shadowed_dropped == 1
        assert report.records == 1
        (record,) = store.at().records()
        assert record.result["total_time"] == 2.0

    def test_untouched_cells_stay_put(self, store):
        record = make_record(workload="ct", paradigm="memcpy")
        store.append([record])
        for scale in (0.1, 0.2):
            store.append([make_record(scale=scale)])
        before = {e.path for e in store.at().partitions() if e.workload == "ct"}

        compact(store)
        after = {e.path for e in store.at().partitions() if e.workload == "ct"}
        assert after == before

    def test_time_travel_sees_precompaction_files(self, store):
        for scale in (0.1, 0.2):
            store.append([make_record(scale=scale)])
        compact(store)
        assert len(store.at(2).partitions()) == 2
        assert len(store.at(2).records()) == 2

    def test_compaction_is_idempotent(self, store):
        for scale in (0.1, 0.2):
            store.append([make_record(scale=scale)])
        compact(store)
        again = compact(store)
        assert again.snapshot is None
        assert again.cells_compacted == 0

    def test_reads_identical_before_and_after(self, store):
        records = [make_record(scale=s) for s in (0.1, 0.2, 0.3)]
        for record in records:
            store.append([record])
        store.append([make_record(scale=0.2, total_time=42.0)])  # shadow one
        before = {r.key: r.result for r in store.at().records()}

        compact(store)
        after = {r.key: r.result for r in store.at().records()}
        assert after == before
        assert after[make_record(scale=0.2).key]["total_time"] == 42.0
