"""Query-layer tests: filter parsing, predicates, projection, pruning."""

from __future__ import annotations

import pytest

from repro.store import Filter, ROW_FIELDS, StoreError, parse_filter, record_row, run_query

from .conftest import make_record


@pytest.fixture
def populated(store):
    store.append(
        [
            make_record(workload="jacobi", paradigm="gps", total_time=1.0),
            make_record(workload="jacobi", paradigm="memcpy", total_time=4.0),
            make_record(workload="ct", paradigm="gps", total_time=2.0),
            make_record(workload="ct", paradigm="gps", num_gpus=16, total_time=0.5),
        ]
    )
    return store


class TestParseFilter:
    def test_equality(self):
        assert parse_filter("workload=jacobi") == Filter("workload", "==", "jacobi")

    def test_numeric_coercion(self):
        assert parse_filter("num_gpus>=4") == Filter("num_gpus", ">=", 4)
        assert parse_filter("scale<0.5") == Filter("scale", "<", 0.5)

    def test_comma_list_becomes_membership(self):
        parsed = parse_filter("paradigm=gps,memcpy")
        assert parsed.op == "in"
        assert parsed.value == ("gps", "memcpy")

    def test_explicit_operators(self):
        assert parse_filter("total_time!=1").op == "!="
        assert parse_filter("total_time==1").op == "=="
        assert parse_filter("total_time<=1").op == "<="
        assert parse_filter("total_time>1").op == ">"

    def test_unparseable_raises(self):
        with pytest.raises(StoreError):
            parse_filter("nonsense")
        with pytest.raises(StoreError):
            parse_filter("=value")


class TestRecordRow:
    def test_flattens_meta_and_metrics(self):
        row = record_row(make_record(total_time=2.5, traffic_bytes=100))
        assert row["workload"] == "jacobi"
        assert row["paradigm"] == "gps"
        assert row["total_time"] == 2.5
        assert row["interconnect_bytes"] == 100
        assert set(ROW_FIELDS) <= set(row)


class TestRunQuery:
    def test_unfiltered_scan_returns_everything(self, populated):
        result = populated.query()
        assert len(result) == 4
        assert result.column_names() == ROW_FIELDS

    def test_string_filters_are_parsed(self, populated):
        result = populated.query(where=["workload=jacobi", "paradigm=gps"])
        assert [row["total_time"] for row in result.rows()] == [1.0]

    def test_membership_and_comparison(self, populated):
        result = populated.query(where=["paradigm=gps,memcpy", "total_time>=2"])
        assert sorted(row["total_time"] for row in result.rows()) == [2.0, 4.0]

    def test_order_by_descending_with_limit(self, populated):
        result = populated.query(order_by="-total_time", limit=2)
        assert [row["total_time"] for row in result.rows()] == [4.0, 2.0]

    def test_projection(self, populated):
        result = populated.query(columns=("workload", "total_time"))
        assert result.column_names() == ("workload", "total_time")
        assert set(result.rows()[0]) == {"workload", "total_time"}

    def test_columnar_orientation(self, populated):
        cols = populated.query(
            where=["workload=ct"], columns=("paradigm", "total_time"),
            order_by="total_time",
        ).columns()
        assert cols == {"paradigm": ["gps", "gps"], "total_time": [0.5, 2.0]}

    def test_table_shape(self, populated):
        headers, rows = populated.query(columns=("workload",), limit=1).table()
        assert headers == ["workload"]
        assert len(rows) == 1

    def test_time_travel_query(self, populated):
        populated.append([make_record(workload="fft", total_time=7.0)])
        assert len(populated.query()) == 5
        assert len(populated.query(at=1)) == 4

    def test_unknown_column_rejected(self, populated):
        with pytest.raises(StoreError):
            populated.query(columns=("not_a_column",))
        with pytest.raises(StoreError):
            populated.query(order_by="not_a_column")

    def test_equality_filters_prune_partitions(self, populated, monkeypatch):
        from repro.store import partitions as partitions_module

        read = []
        real = partitions_module.read_partition

        def counting(directory, path):
            read.append(path)
            return real(directory, path)

        # run_query reads through reader.iter_records -> catalog's import.
        from repro.store import catalog as catalog_module

        monkeypatch.setattr(catalog_module, "read_partition", counting)
        result = populated.query(where=["workload=jacobi", "paradigm=memcpy"])
        assert len(result) == 1
        # 4 records live in 3 cells; only the (jacobi, memcpy) cell is read.
        assert len(read) == 1
