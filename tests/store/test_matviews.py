"""Materialized-view tests: shape, upsert reduce, rendering, refresh modes."""

from __future__ import annotations

import pytest

from repro.store import FIGURE_VIEWS, VIEWS_BY_NAME, render_view
from repro.store.incremental import (
    latest_state_id,
    load_state,
    refresh_all_views,
    refresh_view,
    state_ids,
    view_figure,
)
from repro.store.matviews import apply_records
from repro.store.query import record_row

from .conftest import make_record


def fig11_family(total_gps=1.0, total_nosub=2.0, workload="jacobi"):
    """Baseline + the two GPS variants fig11 plots, one (link,scale,iter)."""
    return [
        make_record(workload=workload, paradigm="memcpy", num_gpus=1, total_time=8.0),
        make_record(workload=workload, paradigm="gps", num_gpus=4, total_time=total_gps),
        make_record(
            workload=workload, paradigm="gps_nosub", num_gpus=4, total_time=total_nosub
        ),
    ]


class TestViewShape:
    def test_catalogue_names(self):
        assert [v.name for v in FIGURE_VIEWS] == ["fig08", "fig10", "fig11", "fig12"]
        assert set(VIEWS_BY_NAME) == {"fig08", "fig10", "fig11", "fig12"}

    def test_wants_matches_paradigm_and_gpu_count(self):
        fig11 = VIEWS_BY_NAME["fig11"]
        assert fig11.wants(record_row(make_record(paradigm="gps", num_gpus=4)))
        assert not fig11.wants(record_row(make_record(paradigm="gps", num_gpus=8)))
        assert not fig11.wants(record_row(make_record(paradigm="um", num_gpus=4)))
        # Baseline rows (memcpy @ 1 GPU) belong to every baselined view.
        assert fig11.wants(record_row(make_record(paradigm="memcpy", num_gpus=1)))

    def test_fig12_evaluates_sixteen_gpus(self):
        fig12 = VIEWS_BY_NAME["fig12"]
        assert fig12.wants(record_row(make_record(paradigm="gps", num_gpus=16)))
        assert not fig12.wants(record_row(make_record(paradigm="gps", num_gpus=4)))


class TestUpsertReduce:
    def test_apply_is_keyed_by_config_identity(self):
        view = VIEWS_BY_NAME["fig11"]
        rows = {}
        applied = apply_records(view, rows, fig11_family())
        assert applied == 3
        assert len(rows) == 3

    def test_reapplying_newer_copy_overwrites(self):
        view = VIEWS_BY_NAME["fig11"]
        rows = {}
        apply_records(view, rows, fig11_family(total_gps=1.0))
        apply_records(view, rows, fig11_family(total_gps=0.5))
        assert len(rows) == 3
        gps_rows = [r for k, r in rows.items() if "|gps|" in k]
        assert [r["total_time"] for r in gps_rows] == [0.5]


class TestRender:
    def test_fig11_speedups_and_geomean(self):
        view = VIEWS_BY_NAME["fig11"]
        rows = {}
        apply_records(view, rows, fig11_family(total_gps=1.0, total_nosub=2.0))
        rendered = render_view(view, rows)
        (combo,) = rendered.values()
        assert combo["figure"] == "fig11"
        assert combo["speedups"]["jacobi"] == {"gps": 8.0, "gps_nosub": 4.0}
        assert combo["geomean"]["gps"] == pytest.approx(8.0)
        assert combo["geomean"]["gps_nosub"] == pytest.approx(4.0)

    def test_incomplete_combo_renders_nothing(self):
        view = VIEWS_BY_NAME["fig11"]
        rows = {}
        # Multi-GPU rows with no baseline: nothing to normalise against.
        apply_records(view, rows, fig11_family()[1:])
        assert render_view(view, rows) == {}

    def test_fig10_normalises_traffic_to_memcpy(self):
        view = VIEWS_BY_NAME["fig10"]
        rows = {}
        apply_records(
            view,
            rows,
            [
                make_record(paradigm="memcpy", num_gpus=4, traffic_bytes=1000),
                make_record(paradigm="gps", num_gpus=4, traffic_bytes=250),
                make_record(paradigm="um", num_gpus=4, traffic_bytes=2000),
            ],
        )
        (combo,) = render_view(view, rows).values()
        assert combo["normalized_to_memcpy"]["jacobi"]["gps"] == 0.25
        assert combo["normalized_to_memcpy"]["jacobi"]["um"] == 2.0
        assert combo["raw_bytes"]["jacobi"]["memcpy"] == 1000


class TestRefresh:
    def test_empty_store_is_fresh(self, store):
        state, stats = refresh_view(store, "fig11")
        assert stats.mode == "fresh"
        assert state["rows"] == {}

    def test_full_then_current(self, store):
        store.append(fig11_family())
        _, stats = refresh_view(store, "fig11")
        assert stats.mode == "full"
        assert stats.rows == 3
        _, again = refresh_view(store, "fig11")
        assert again.mode == "current"
        assert again.partitions_read == 0

    def test_incremental_refresh_reads_only_the_delta(self, store):
        store.append(fig11_family())
        refresh_view(store, "fig11")
        store.append(fig11_family(workload="ct"))
        _, stats = refresh_view(store, "fig11")
        assert stats.mode == "incremental"
        assert stats.base == 1
        # Only the 3 new records were scanned, not all 6.
        assert stats.records_scanned == 3
        assert stats.rows == 6

    def test_incremental_equals_full_rescan(self, store, tmp_path):
        store.append(fig11_family())
        refresh_view(store, "fig11")
        store.append(fig11_family(workload="ct", total_gps=0.25))
        incremental_state, stats = refresh_view(store, "fig11")
        assert stats.mode == "incremental"

        # An independent store opened cold has no ancestor state: full scan.
        from repro.store import ResultStore

        cold = ResultStore.open(store.directory, legacy=False, auto_refresh=False)
        import shutil

        shutil.rmtree(cold.directory / "views")
        full_state, full_stats = refresh_view(cold, "fig11")
        assert full_stats.mode == "full"
        assert full_state["rows"] == incremental_state["rows"]

    def test_truncate_invalidates_incremental_base(self, store):
        store.append(fig11_family())
        refresh_view(store, "fig11")
        store.truncate()
        store.append(fig11_family(workload="ct"))
        state, stats = refresh_view(store, "fig11")
        # An upsert cannot un-apply the truncated rows: must fall back to
        # a full scan of the target's partitions.
        assert stats.mode == "full"
        assert stats.rows == 3
        assert all("|ct|" in key or "ct|" in key for key in state["rows"])

    def test_unknown_view_rejected(self, store):
        from repro.store import StoreError

        with pytest.raises(StoreError):
            refresh_view(store, "fig99")

    def test_refresh_all_views_covers_catalogue(self, store):
        store.append(fig11_family())
        stats = refresh_all_views(store)
        assert [s.view for s in stats] == ["fig08", "fig10", "fig11", "fig12"]

    def test_view_states_are_per_snapshot_objects(self, store):
        store.append(fig11_family())
        refresh_view(store, "fig11")
        store.append(fig11_family(workload="ct"))
        refresh_view(store, "fig11")
        assert state_ids(store, "fig11") == [1, 2]
        assert latest_state_id(store, "fig11") == 2
        assert len(load_state(store, "fig11", 1)["rows"]) == 3

    def test_view_figure_renders_through_refresh(self, store):
        store.append(fig11_family(total_gps=2.0))
        (combo,) = view_figure(store, "fig11").values()
        assert combo["speedups"]["jacobi"]["gps"] == 4.0

    def test_auto_refresh_on_commit(self, tmp_path):
        from repro.store import ResultStore

        store = ResultStore.open(tmp_path / "s", legacy=False, auto_refresh=True)
        store.append(fig11_family())
        # The commit itself refreshed every view: reading is mode=current.
        _, stats = refresh_view(store, "fig11")
        assert stats.mode == "current"
        assert stats.rows == 3
