"""Fuzz-backed query equivalence: ``run_query`` vs brute-force Python.

The analytics path (``GET /query``, ``repro query``, ``QueryClient``) is
only trustworthy if the engine's filter/projection/order/limit semantics
are *exactly* definable in one sentence of Python. So this suite seeds a
500-record store once, then:

* property-fuzzes filter conjunctions, projections, order-bys, and limits
  (hypothesis strategies over the clause grammar) and asserts the engine's
  answer equals an independent brute-force evaluation — a second, separate
  implementation of matching/sorting/limiting over the raw records;
* replays the same equivalence for parsed *string* clauses (the CLI/HTTP
  grammar), covering every operator token;
* pins a golden dataframe payload byte-for-byte, so the wire shape the
  SDK depends on cannot drift silently
  (``regenerate_golden()`` in this module refreshes it on purpose).

The seeded store is deterministic: every value is derived index-free from
``random.Random(SEED)`` choices over fixed pools, and floats are 64ths so
JSON round-trips are exact.
"""

from __future__ import annotations

import hashlib
import json
import operator
import random
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.store import ResultStore, StoredRecord
from repro.store.query import ROW_FIELDS, Filter, record_row, run_query

SEED = 20260808
RECORDS = 500
GOLDEN = Path(__file__).parent / "baselines" / "query_payload.golden.json"

WORKLOADS = ("jacobi", "ct", "pagerank", "sssp", "als", "mvmul")
PARADIGMS = ("gps", "memcpy", "uvm", "p2p")
LINKS = ("PCIe 6.0", "NVLink 4")
GPU_COUNTS = (1, 2, 4, 8, 16)
MODELS = ("repro-model/a", "repro-model/b")


def _seed_records() -> "list[StoredRecord]":
    rng = random.Random(SEED)
    records = []
    for index in range(RECORDS):
        meta = {
            "workload": rng.choice(WORKLOADS),
            "paradigm": rng.choice(PARADIGMS),
            "num_gpus": rng.choice(GPU_COUNTS),
            "link": rng.choice(LINKS),
            "scale": rng.randrange(1, 65) / 64.0,
            "iterations": rng.randrange(1, 17),
        }
        model = rng.choice(MODELS)
        # Distinct keys even for colliding configs: the store dedups by
        # key, and the oracle must see all 500 rows.
        key = hashlib.sha256(f"{SEED}/{index}".encode()).hexdigest()
        gpus = meta["num_gpus"]
        traffic = [[0] * gpus for _ in range(gpus)]
        if gpus > 1:
            traffic[0][1] = rng.randrange(0, 1 << 20)
            traffic[1][0] = rng.randrange(0, 1 << 20)
        records.append(
            StoredRecord(
                key=key,
                meta=meta,
                result={
                    "program_name": meta["workload"],
                    "paradigm": meta["paradigm"],
                    "num_gpus": gpus,
                    "total_time": rng.randrange(1, 1 << 16) / 64.0,
                    "traffic": traffic,
                    "fault_count": rng.randrange(0, 1000),
                    "pages_migrated": rng.randrange(0, 10000),
                },
                model=model,
            )
        )
    return records


@pytest.fixture(scope="module")
def seeded(tmp_path_factory):
    """One 500-record store, committed across five append snapshots."""
    directory = tmp_path_factory.mktemp("query-fuzz") / "store"
    store = ResultStore.open(directory, legacy=False, auto_refresh=False)
    records = _seed_records()
    for start in range(0, RECORDS, 100):
        store.append(records[start : start + 100])
    reader = store.at(None)
    rows = [record_row(record) for record in reader.iter_records()]
    assert len(rows) == RECORDS
    return reader, rows


# -- the independent oracle ---------------------------------------------------

_OPS = {
    "==": operator.eq,
    "!=": operator.ne,
    ">=": operator.ge,
    "<=": operator.le,
    ">": operator.gt,
    "<": operator.lt,
}


def brute_force(
    rows: "list[dict]",
    filters: "list[Filter]",
    columns: "tuple[str, ...] | None",
    order_by: "str | None",
    limit: "int | None",
) -> "list[dict]":
    """A from-scratch evaluation of the query semantics over plain rows."""

    def matches(row: dict, item: Filter) -> bool:
        if item.field not in row:
            return False
        value = row[item.field]
        try:
            if item.op == "in":
                return value in item.value
            return bool(_OPS[item.op](value, item.value))
        except TypeError:
            return False

    kept = [row for row in rows if all(matches(row, f) for f in filters)]
    if order_by:
        field = order_by.lstrip("-")
        kept = sorted(
            kept,
            key=lambda row: (row.get(field) is None, row.get(field)),
            reverse=order_by.startswith("-"),
        )
    if limit is not None:
        kept = kept[: max(0, limit)]
    chosen = columns or ROW_FIELDS
    return [{field: row.get(field) for field in chosen} for row in kept]


# -- hypothesis strategies over the clause grammar ----------------------------

_COMPARABLE = ("num_gpus", "scale", "iterations", "total_time", "fault_count")
_CATEGORICAL = {
    "workload": WORKLOADS + ("fft",),  # includes a value absent from the data
    "paradigm": PARADIGMS,
    "link": LINKS,
    "model": MODELS + ("repro-model/missing",),
}


def _filters() -> st.SearchStrategy:
    categorical = st.sampled_from(sorted(_CATEGORICAL)).flatmap(
        lambda field: st.builds(
            lambda op, value: Filter(field, op, value),
            st.sampled_from(("==", "!=")),
            st.sampled_from(_CATEGORICAL[field]),
        )
    )
    membership = st.sampled_from(sorted(_CATEGORICAL)).flatmap(
        lambda field: st.builds(
            lambda values: Filter(field, "in", tuple(values)),
            st.lists(
                st.sampled_from(_CATEGORICAL[field]), min_size=1, max_size=3, unique=True
            ),
        )
    )
    numeric = st.sampled_from(_COMPARABLE).flatmap(
        lambda field: st.builds(
            lambda op, value: Filter(field, op, value),
            st.sampled_from(("==", "!=", ">=", "<=", ">", "<")),
            st.one_of(
                st.integers(0, 20),
                st.integers(0, 64 * 16).map(lambda n: n / 64.0),
            ),
        )
    )
    return st.lists(st.one_of(categorical, membership, numeric), max_size=3)


_QUERY = st.fixed_dictionaries(
    {
        "filters": _filters(),
        "columns": st.one_of(
            st.none(),
            st.lists(st.sampled_from(ROW_FIELDS), min_size=1, max_size=4, unique=True)
            .map(tuple),
        ),
        "order_by": st.one_of(
            st.none(),
            st.sampled_from(ROW_FIELDS),
            st.sampled_from(ROW_FIELDS).map(lambda f: f"-{f}"),
        ),
        "limit": st.one_of(st.none(), st.integers(0, RECORDS + 10)),
    }
)


class TestQueryEquivalence:
    @given(spec=_QUERY)
    @settings(max_examples=60, deadline=None)
    def test_engine_matches_brute_force(self, seeded, spec):
        reader, rows = seeded
        # Unordered results follow partition-scan order, which the oracle
        # (scanning flat rows) cannot reproduce; anchor both with a total
        # order so the comparison is exact row-for-row.
        order_by = spec["order_by"] or "key"
        engine = run_query(
            reader,
            where=spec["filters"],
            columns=spec["columns"],
            order_by=order_by,
            limit=spec["limit"],
        )
        expected = brute_force(
            rows, spec["filters"], spec["columns"], order_by, spec["limit"]
        )
        assert engine.rows() == expected

    @given(spec=_QUERY)
    @settings(max_examples=25, deadline=None)
    def test_unordered_results_are_the_same_set(self, seeded, spec):
        reader, rows = seeded
        engine = run_query(reader, where=spec["filters"])
        expected = brute_force(rows, spec["filters"], None, None, None)
        key = lambda row: row["key"]  # noqa: E731
        assert sorted(engine.rows(), key=key) == sorted(expected, key=key)

    def test_string_clauses_cover_every_operator(self, seeded):
        reader, rows = seeded
        cases = [
            (["workload=jacobi"], [Filter("workload", "==", "jacobi")]),
            (["workload==ct"], [Filter("workload", "==", "ct")]),
            (["paradigm!=gps"], [Filter("paradigm", "!=", "gps")]),
            (["num_gpus>=8"], [Filter("num_gpus", ">=", 8)]),
            (["num_gpus<=2"], [Filter("num_gpus", "<=", 2)]),
            (["iterations>12"], [Filter("iterations", ">", 12)]),
            (["scale<0.25"], [Filter("scale", "<", 0.25)]),
            (
                ["paradigm=gps,uvm", "num_gpus>2"],
                [Filter("paradigm", "in", ("gps", "uvm")), Filter("num_gpus", ">", 2)],
            ),
        ]
        for strings, parsed in cases:
            via_strings = run_query(reader, where=strings, order_by="key")
            expected = brute_force(rows, parsed, None, "key", None)
            assert via_strings.rows() == expected, strings

    def test_projection_and_limit_compose(self, seeded):
        reader, rows = seeded
        engine = run_query(
            reader,
            where=[Filter("paradigm", "==", "gps")],
            columns=("key", "workload", "total_time"),
            order_by="-total_time",
            limit=7,
        )
        expected = brute_force(
            rows,
            [Filter("paradigm", "==", "gps")],
            ("key", "workload", "total_time"),
            "-total_time",
            7,
        )
        assert engine.rows() == expected
        assert len(engine) == 7


class TestGoldenPayload:
    """The wire payload for one pinned query is byte-stable."""

    @staticmethod
    def _payload(reader) -> str:
        result = run_query(
            reader,
            where=["paradigm=gps", "num_gpus>=4"],
            columns=("key", "workload", "num_gpus", "total_time"),
            order_by="-total_time",
            limit=10,
        )
        payload = {
            "column_names": list(result.column_names()),
            "columns": result.columns(),
            "count": len(result),
            "rows": result.rows(),
            "snapshot": reader.snapshot_id,
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def test_payload_matches_golden(self, seeded):
        reader, _ = seeded
        assert GOLDEN.exists(), (
            f"missing golden {GOLDEN.name} — regenerate with PYTHONPATH=src python "
            "-c \"from tests.store.test_query_fuzz import *; regenerate_golden()\""
        )
        assert self._payload(reader) == GOLDEN.read_text(), (
            "query payload drifted; if intentional, regenerate with "
            "PYTHONPATH=src python -c "
            "\"from tests.store.test_query_fuzz import *; regenerate_golden()\""
        )


def regenerate_golden() -> None:  # pragma: no cover - maintenance helper
    import tempfile

    directory = Path(tempfile.mkdtemp()) / "store"
    store = ResultStore.open(directory, legacy=False, auto_refresh=False)
    records = _seed_records()
    for start in range(0, RECORDS, 100):
        store.append(records[start : start + 100])
    GOLDEN.parent.mkdir(exist_ok=True)
    GOLDEN.write_text(TestGoldenPayload._payload(store.at(None)))
    print(f"wrote {GOLDEN}")
