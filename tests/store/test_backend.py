"""Runner-integration tests: the store as the persistent result backend.

``REPRO_RESULT_BACKEND=store`` swaps the runner's flat
:class:`DiskCache` for :class:`StoreCache`, which persists through
:class:`repro.store.ResultStore` — cold runs commit snapshots, warm runs
deserialise from partition files, and the legacy flat cache is imported
on the store's first open.
"""

from __future__ import annotations

import json

import pytest

from repro.harness.runner import (
    StoreCache,
    cache_stats,
    clear_disk_cache,
    clear_run_cache,
    disk_cache_info,
    run_simulation,
)
from repro.store import ResultStore

FAST = dict(scale=0.1, iterations=2)


@pytest.fixture
def store_backend(tmp_path, monkeypatch):
    """Route the runner's persistent layer into a temp lakehouse."""
    monkeypatch.setenv("REPRO_NO_CACHE", "")
    monkeypatch.setenv("REPRO_RESULT_BACKEND", "store")
    monkeypatch.setenv("REPRO_STORE_DIR", str(tmp_path / "store"))
    monkeypatch.delenv("REPRO_STORE_AUTO_REFRESH", raising=False)
    clear_run_cache()
    yield tmp_path / "store"
    clear_run_cache()


class TestStoreBackend:
    def test_info_reports_store_backend(self, store_backend):
        info = disk_cache_info()
        assert info["enabled"]
        assert info["backend"] == "store"
        assert info["directory"] == str(store_backend)

    def test_cold_run_commits_a_snapshot(self, store_backend):
        run_simulation("jacobi", "memcpy", 2, **FAST)
        store = ResultStore.open(store_backend, legacy=False, auto_refresh=False)
        assert store.current_snapshot_id() == 1
        (record,) = store.at().records()
        assert record.meta["workload"] == "jacobi"
        assert record.model.startswith("repro-model/")

    def test_warm_read_is_byte_identical(self, store_backend):
        a = run_simulation("ct", "gps", 4, **FAST)
        clear_run_cache()  # drop the memo, keep the store
        b = run_simulation("ct", "gps", 4, **FAST)
        assert a is not b
        assert cache_stats().disk_hits == 1
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )

    def test_clear_truncates_but_keeps_history(self, store_backend):
        run_simulation("jacobi", "memcpy", 2, **FAST)
        run_simulation("jacobi", "gps", 2, **FAST)
        assert clear_disk_cache() == 2
        assert disk_cache_info()["entries"] == 0
        store = ResultStore.open(store_backend, legacy=False, auto_refresh=False)
        assert store.history()[-1].operation == "truncate"
        assert len(store.at(2).records()) == 2  # pre-truncate still readable

    def test_entries_surface_matches_flat_cache_shape(self, store_backend):
        run_simulation("jacobi", "memcpy", 2, **FAST)
        info = disk_cache_info()
        assert info["entries"] == 1
        assert info["size_bytes"] > 0
        cache = StoreCache(store_backend)
        (row,) = cache.entries()
        assert row["workload"] == "jacobi"
        assert len(row["key"]) == 12

    def test_legacy_flat_cache_imported_on_first_open(
        self, tmp_path, monkeypatch
    ):
        # 1) populate a flat cache the classic way ...
        flat = tmp_path / "flat"
        monkeypatch.setenv("REPRO_NO_CACHE", "")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(flat))
        clear_run_cache()
        flat_result = run_simulation("jacobi", "memcpy", 2, **FAST)
        clear_run_cache()

        # 2) ... then point a store at it: first open imports the records.
        store = ResultStore.open(
            tmp_path / "store", legacy=flat, auto_refresh=False
        )
        assert store.current_snapshot_id() == 1
        assert store.history()[0].operation == "import"
        (record,) = store.at().records()
        assert record.result == flat_result.to_dict()

    def test_store_failure_counts_not_raises(self, store_backend, monkeypatch):
        run_simulation("jacobi", "memcpy", 2, **FAST)
        clear_run_cache()
        cache = StoreCache(store_backend)

        def boom():
            raise OSError("store is sick")

        monkeypatch.setattr(cache, "_open", boom)
        assert cache.get("any-key") is None
        assert cache.stats.disk_errors == 1
