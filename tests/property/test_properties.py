"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.config import GPSConfig
from repro.core.consistency import StoreEvent, check_same_address_order, may_coalesce
from repro.core.subscription import SubscriptionManager
from repro.core.write_queue import RemoteWriteQueue
from repro.errors import SubscriptionError
from repro.gpu.sm_coalescer import sm_coalesce
from repro.memory.tlb import TLB
from repro.sim.engine import Engine
from repro.trace.expand import LineStream
from repro.trace.records import Scope

lines_strategy = st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200)
payload_strategy = st.integers(min_value=1, max_value=128)


class TestWriteQueueProperties:
    @given(lines=lines_strategy, payload=payload_strategy)
    @settings(max_examples=60, deadline=None)
    def test_conservation_every_insert_drains_exactly_once(self, lines, payload):
        queue = RemoteWriteQueue(GPSConfig(write_queue_entries=8))
        drained = []
        for line in lines:
            drained += queue.push_store(line, payload)
        drained += queue.flush()
        assert len(drained) == queue.stats.inserts
        assert queue.occupancy == 0

    @given(lines=lines_strategy, payload=payload_strategy)
    @settings(max_examples=60, deadline=None)
    def test_bytes_out_never_exceed_bytes_in(self, lines, payload):
        queue = RemoteWriteQueue(GPSConfig(write_queue_entries=8))
        for line in lines:
            queue.push_store(line, payload)
        queue.flush()
        assert queue.stats.bytes_out <= queue.stats.bytes_in
        assert queue.stats.bytes_out >= queue.stats.inserts * min(payload, 128)

    @given(lines=lines_strategy, payload=payload_strategy)
    @settings(max_examples=60, deadline=None)
    def test_drained_lines_cover_distinct_input_lines(self, lines, payload):
        queue = RemoteWriteQueue(GPSConfig(write_queue_entries=8))
        drained = []
        for line in lines:
            drained += queue.push_store(line, payload)
        drained += queue.flush()
        # Every distinct line appears in the drain output; a line may
        # appear more than once if it was re-dirtied after a drain.
        assert {e.line for e in drained} == set(lines)

    @given(lines=lines_strategy)
    @settings(max_examples=60, deadline=None)
    def test_occupancy_never_exceeds_watermark_after_push(self, lines):
        queue = RemoteWriteQueue(GPSConfig(write_queue_entries=8, high_watermark=5))
        for line in lines:
            queue.push_store(line, 64)
            assert queue.occupancy <= 5

    @given(lines=lines_strategy, payload=payload_strategy)
    @settings(max_examples=40, deadline=None)
    def test_merged_store_count_matches_stream(self, lines, payload):
        queue = RemoteWriteQueue(GPSConfig(write_queue_entries=512))
        drained = queue.process_stream(
            np.array(lines, dtype=np.int64),
            np.full(len(lines), payload, dtype=np.int32),
        )
        drained += queue.flush()
        assert sum(e.merged_stores for e in drained) == len(lines)


class TestSMCoalescerProperties:
    @given(lines=lines_strategy, payload=st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_no_adjacent_duplicates_in_output(self, lines, payload):
        stream = LineStream(
            np.array(lines, dtype=np.int64),
            np.full(len(lines), payload, dtype=np.int32),
        )
        out = sm_coalesce(stream)
        assert not np.any(out.lines[1:] == out.lines[:-1])

    @given(lines=lines_strategy, payload=st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_distinct_lines_preserved(self, lines, payload):
        stream = LineStream(
            np.array(lines, dtype=np.int64),
            np.full(len(lines), payload, dtype=np.int32),
        )
        out = sm_coalesce(stream)
        assert set(out.lines.tolist()) == set(lines)

    @given(lines=lines_strategy)
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, lines):
        stream = LineStream(
            np.array(lines, dtype=np.int64),
            np.full(len(lines), 32, dtype=np.int32),
        )
        once = sm_coalesce(stream)
        twice = sm_coalesce(once)
        assert np.array_equal(once.lines, twice.lines)
        assert np.array_equal(once.bytes_per_txn, twice.bytes_per_txn)


class TestCacheProperties:
    @given(lines=st.lists(st.integers(min_value=0, max_value=1000), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, lines):
        cache = Cache(128 * 64, 128, 4)
        stats = cache.simulate_stream(lines)
        assert stats.hits + stats.misses == len(lines)

    @given(lines=st.lists(st.integers(min_value=0, max_value=30), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_working_set_within_capacity_second_pass_perfect(self, lines):
        cache = Cache(128 * 64, 128, 64)  # fully associative, 64 lines
        cache.simulate_stream(lines)
        warm = cache.simulate_stream(lines)
        assert warm.hit_rate == 1.0

    @given(lines=st.lists(st.integers(min_value=0, max_value=1000), max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_residency_bounded_by_capacity(self, lines):
        cache = Cache(128 * 16, 128, 4)
        cache.simulate_stream(lines)
        assert cache.resident_lines() <= 16


class TestTLBProperties:
    @given(vpns=st.lists(st.integers(min_value=0, max_value=100), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_distinct_pages_lower_bound_misses(self, vpns):
        tlb = TLB(entries=32, assoc=8)
        for vpn in vpns:
            tlb.access(vpn)
        assert tlb.stats.misses >= len(set(vpns)) * 0 + (len(set(vpns)) > 0)
        assert tlb.stats.misses >= min(len(set(vpns)), 1)
        assert tlb.stats.hits + tlb.stats.misses == len(vpns)


class TestSubscriptionProperties:
    @given(
        ops=st.lists(
            st.tuples(
                st.booleans(),
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=0, max_value=5),
            ),
            max_size=80,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_at_least_one_subscriber_always(self, ops):
        manager = SubscriptionManager(4)
        manager.register_all_to_all(range(6))
        for subscribe, gpu, vpn in ops:
            try:
                if subscribe:
                    manager.subscribe(gpu, vpn)
                else:
                    manager.unsubscribe(gpu, vpn)
            except SubscriptionError:
                pass
            assert len(manager.subscribers(vpn)) >= 1

    @given(
        touched=st.dictionaries(
            st.integers(min_value=0, max_value=3),
            st.sets(st.integers(min_value=0, max_value=5)),
            max_size=4,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_apply_profile_invariant(self, touched):
        manager = SubscriptionManager(4)
        manager.register_all_to_all(range(6))
        manager.apply_profile(touched)
        for vpn in range(6):
            subs = manager.subscribers(vpn)
            assert len(subs) >= 1
            actual_touchers = {g for g, pages in touched.items() if vpn in pages}
            if actual_touchers:
                assert subs == frozenset(actual_touchers)


class TestEngineProperties:
    @given(durations=st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_serial_resource_sums_durations(self, durations):
        engine = Engine()
        resource = engine.resource("r")
        for i, duration in enumerate(durations):
            engine.task(f"t{i}", duration, resource=resource)
        assert engine.run() == sum(durations)

    @given(durations=st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_independent_tasks_max_duration(self, durations):
        engine = Engine()
        for i, duration in enumerate(durations):
            engine.task(f"t{i}", duration)
        assert engine.run() == max(durations)

    @given(durations=st.lists(st.floats(min_value=0.01, max_value=10), min_size=2, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_chain_is_prefix_monotone(self, durations):
        engine = Engine()
        prev = None
        tasks = []
        for i, duration in enumerate(durations):
            prev = engine.task(f"t{i}", duration, deps=[prev] if prev else [])
            tasks.append(prev)
        engine.run()
        for a, b in zip(tasks, tasks[1:]):
            assert b.start >= a.end


class TestConsistencyProperties:
    @given(
        seqs=st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=30),
        drop=st.sets(st.integers(min_value=0, max_value=29)),
    )
    @settings(max_examples=60, deadline=None)
    def test_subsequence_delivery_preserves_same_address_order(self, seqs, drop):
        # Any subsequence of program order (coalescing drops stores but
        # never reorders survivors) satisfies same-address ordering.
        issued = [
            StoreEvent(gpu=0, address=addr, scope=Scope.WEAK, seq=i)
            for i, addr in enumerate(seqs)
        ]
        delivered = [e for i, e in enumerate(issued) if i not in drop]
        assert check_same_address_order(issued, delivered)

    @given(a=st.integers(0, 3), b=st.integers(0, 3), addr=st.integers(0, 5))
    @settings(max_examples=60, deadline=None)
    def test_sys_scope_never_coalesces(self, a, b, addr):
        first = StoreEvent(a, addr, Scope.SYS, 0)
        second = StoreEvent(b, addr, Scope.WEAK, 1)
        assert not may_coalesce(first, second, fence_between=False)
