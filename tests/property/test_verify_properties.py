"""Property-based tests (hypothesis) driven by the repro.verify fuzzer.

The fuzzer gives hypothesis a cheap handle on the *whole* pipeline: a seed
is a complete well-formed TraceProgram, so properties range over program
shapes no hand-written table covers. Three families live here:

* fingerprint stability — the same (seed, gpus, scale, iterations) always
  produces the same program bytes and the same SimJob fingerprint;
* SimulationResult round-trip — to_dict → JSON → from_dict → to_dict is
  byte-identical for fuzzer-generated results;
* oracle invariants — every registered result-layer check holds across the
  named workloads × GPU counts, and across fuzzed programs × paradigms.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.harness.runner import SimJob
from repro.paradigms import PARADIGMS
from repro.system.results import SimulationResult
from repro.trace.io import program_to_dict
from repro.verify import check_result, generate_program
from repro.verify.fuzzer import FuzzSpec

seeds = st.integers(min_value=0, max_value=2**31 - 1)
gpu_counts = st.sampled_from([1, 2, 4])
paradigm_names = st.sampled_from(sorted(PARADIGMS))

#: Satellite matrix from the issue: every named workload × {2, 4, 16} GPUs.
ALL_WORKLOADS = sorted(repro.workload_names())


class TestFingerprintStability:
    @given(seed=seeds, gpus=gpu_counts)
    @settings(max_examples=40, deadline=None)
    def test_generator_is_a_pure_function_of_its_arguments(self, seed, gpus):
        first = generate_program(seed, gpus, scale=0.25, iterations=2)
        second = generate_program(seed, gpus, scale=0.25, iterations=2)
        assert program_to_dict(first) == program_to_dict(second)

    @given(seed=seeds, gpus=gpu_counts)
    @settings(max_examples=40, deadline=None)
    def test_job_fingerprint_is_stable(self, seed, gpus):
        spec = FuzzSpec(seed=seed, num_gpus=gpus, scale=0.25, iterations=2)
        job_a = SimJob(spec.workload_name, "gps", gpus, scale=0.25, iterations=2)
        job_b = SimJob(spec.workload_name, "gps", gpus, scale=0.25, iterations=2)
        assert job_a.key() == job_b.key()
        assert len(job_a.key()) == 64

    @given(seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_distinct_seeds_rarely_collide(self, seed):
        a = program_to_dict(generate_program(seed, 2, scale=0.25))
        b = program_to_dict(generate_program(seed + 1, 2, scale=0.25))
        assert a != b


class TestResultRoundTrip:
    @given(seed=st.integers(min_value=0, max_value=63), paradigm=paradigm_names)
    @settings(max_examples=25, deadline=None)
    def test_to_dict_json_from_dict_is_byte_identical(self, seed, paradigm):
        program = generate_program(seed, 2, scale=0.1, iterations=1)
        config = repro.default_system(2)
        result = PARADIGMS[paradigm](program, config).run()
        payload = json.dumps(result.to_dict(), sort_keys=True)
        rebuilt = SimulationResult.from_dict(json.loads(payload))
        assert json.dumps(rebuilt.to_dict(), sort_keys=True) == payload


class TestOracleInvariants:
    @given(seed=st.integers(min_value=0, max_value=255), paradigm=paradigm_names)
    @settings(max_examples=30, deadline=None)
    def test_fuzzed_programs_are_oracle_clean(self, seed, paradigm):
        program = generate_program(seed, 2, scale=0.1, iterations=1)
        config = repro.default_system(2)
        result = PARADIGMS[paradigm](program, config).run()
        violations = check_result(result, config)
        assert violations == [], f"{paradigm} seed={seed}: {violations}"

    @pytest.mark.parametrize("workload", ALL_WORKLOADS)
    @pytest.mark.parametrize("gpus", [2, 4, 16])
    def test_named_workloads_are_oracle_clean(self, workload, gpus):
        config = repro.default_system(gpus)
        program = repro.get_workload(workload).build(gpus, scale=0.05, iterations=1)
        for paradigm in ("gps", "memcpy", "um"):
            result = PARADIGMS[paradigm](program, config).run()
            violations = check_result(result, config)
            assert violations == [], f"{workload}/{paradigm}/{gpus}: {violations}"
