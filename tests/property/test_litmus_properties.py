"""Property-based litmus testing: random programs never violate the model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.litmus import LitmusOp, LitmusTest
from repro.trace.records import Scope


def op_strategy():
    return st.one_of(
        st.builds(
            LitmusOp.store,
            address=st.integers(min_value=0, max_value=5),
            scope=st.sampled_from([Scope.WEAK, Scope.WEAK, Scope.WEAK, Scope.SYS]),
        ),
        st.just(LitmusOp.fence()),
    )


program_strategy = st.lists(op_strategy(), max_size=40)


class TestRandomLitmus:
    @given(p0=program_strategy, p1=program_strategy)
    @settings(max_examples=80, deadline=None)
    def test_two_gpu_programs_never_violate(self, p0, p1):
        test = LitmusTest(num_gpus=2, queue_entries=4)
        test.program(0, p0)
        test.program(1, p1)
        result = test.run()
        assert result.same_address_ok
        assert result.point_to_point_ok
        assert result.fence_ok

    @given(
        programs=st.lists(program_strategy, min_size=3, max_size=3),
        entries=st.sampled_from([2, 4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_three_gpu_programs_never_violate(self, programs, entries):
        test = LitmusTest(num_gpus=3, queue_entries=entries)
        for gpu, ops in enumerate(programs):
            test.program(gpu, ops)
        assert test.run().ok

    @given(p0=program_strategy)
    @settings(max_examples=60, deadline=None)
    def test_delivery_count_bounded_by_issued(self, p0):
        test = LitmusTest(num_gpus=2, queue_entries=4)
        test.program(0, p0)
        result = test.run()
        stores = sum(1 for op in p0 if op.kind == "store")
        assert len(result.delivered[1]) <= stores
