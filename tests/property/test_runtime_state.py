"""Stateful property test: the GPS driver never corrupts its bookkeeping.

Random sequences of driver operations (subscribe, unsubscribe, tracking
cycles, oversubscription evictions, sys-scope collapses) must preserve the
cross-structure invariants that a real driver bug would break:

* the subscription manager, GPS page table, and conventional page tables
  agree on every page's subscriber set;
* every replica is backed by exactly one allocated frame on its GPU, and
  frame accounting matches replica counts;
* every page keeps at least one subscriber;
* the GPS bit is set iff the page has more than one subscriber.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.runtime import GPSRuntime, MemAdvise
from repro.errors import SubscriptionError

PAGE = 65536
NUM_PAGES = 6


def op_strategy():
    gpu = st.integers(min_value=0, max_value=3)
    return st.one_of(
        st.tuples(st.just("subscribe"), gpu),
        st.tuples(st.just("unsubscribe"), gpu),
        st.tuples(st.just("evict"), gpu),
        st.tuples(st.just("collapse"), gpu),
        st.tuples(st.just("track"), gpu),
    )


def check_invariants(runtime: GPSRuntime, alloc) -> None:
    pages = list(alloc.pages(PAGE))
    expected_frames = [0] * 4
    for vpn in pages:
        subs = runtime.subscriptions.subscribers(vpn)
        assert len(subs) >= 1
        # Page-table agreement.
        assert runtime.gps_page_table.subscribers(vpn) == subs
        for gpu in range(4):
            pte = runtime.page_tables[gpu].try_lookup(vpn)
            if gpu in subs:
                assert pte is not None
                assert pte.resident_gpu == gpu
                assert pte.gps == (len(subs) > 1)
                frame = runtime.gps_page_table.lookup(vpn).replicas[gpu]
                assert runtime.memories[gpu].is_allocated(frame)
                expected_frames[gpu] += 1
            else:
                assert pte is None
    for gpu in range(4):
        assert runtime.memories[gpu].frames_in_use == expected_frames[gpu]


class TestDriverStateMachine:
    @given(ops=st.lists(op_strategy(), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold_under_random_driver_ops(self, ops):
        runtime = GPSRuntime(repro.default_system(4))
        alloc = runtime.malloc_gps("x", NUM_PAGES * PAGE)
        pages = list(alloc.pages(PAGE))
        rng = np.random.default_rng(0)
        for index, (op, gpu) in enumerate(ops):
            vpn = pages[index % NUM_PAGES]
            try:
                if op == "subscribe":
                    runtime._subscribe_page(gpu, vpn)
                elif op == "unsubscribe":
                    runtime._unsubscribe_page(gpu, vpn)
                elif op == "evict":
                    runtime.handle_oversubscription(gpu, [vpn])
                elif op == "collapse":
                    runtime.collapse_on_sys_store(gpu, vpn)
                elif op == "track":
                    runtime.tracking_start()
                    runtime.record_accesses(gpu, np.array(pages[: 1 + index % NUM_PAGES]))
                    runtime.record_accesses(0, np.array(pages))
                    runtime.tracking_stop()
            except SubscriptionError:
                pass  # rejected ops must leave state untouched
            check_invariants(runtime, alloc)

    @given(ops=st.lists(op_strategy(), max_size=25))
    @settings(max_examples=30, deadline=None)
    def test_free_always_releases_everything(self, ops):
        runtime = GPSRuntime(repro.default_system(4))
        alloc = runtime.malloc_gps("x", NUM_PAGES * PAGE)
        pages = list(alloc.pages(PAGE))
        for index, (op, gpu) in enumerate(ops):
            vpn = pages[index % NUM_PAGES]
            try:
                if op == "subscribe":
                    runtime._subscribe_page(gpu, vpn)
                elif op == "unsubscribe":
                    runtime._unsubscribe_page(gpu, vpn)
                elif op == "evict":
                    runtime.handle_oversubscription(gpu, [vpn])
                elif op == "collapse":
                    runtime.collapse_on_sys_store(gpu, vpn)
            except SubscriptionError:
                pass
        runtime.free("x")
        for memory in runtime.memories:
            assert memory.frames_in_use == 0
        assert len(runtime.gps_page_table) == 0
