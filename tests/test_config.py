"""Unit tests for :mod:`repro.config` — the Table 1 parameter sets."""

import dataclasses
import math

import pytest

from repro.config import (
    CACHE_BLOCK,
    CONFIG_SCHEMA_VERSION,
    config_fingerprint,
    GPSConfig,
    GPUConfig,
    INFINITE_LINK,
    LinkConfig,
    LINKS_BY_NAME,
    PAGE_2M,
    PAGE_4K,
    PAGE_64K,
    PCIE3,
    PCIE6,
    SystemConfig,
    default_system,
)
from repro.errors import ConfigError
from repro.units import GiB, MiB


class TestGPUConfig:
    """Defaults must match paper Table 1."""

    def test_table1_values(self):
        gpu = GPUConfig()
        assert gpu.cache_block == 128
        assert gpu.dram_bytes == 16 * GiB
        assert gpu.num_sms == 80
        assert gpu.cores_per_sm == 64
        assert gpu.l2_bytes == 6 * MiB
        assert gpu.warp_size == 32
        assert gpu.max_threads_per_sm == 2048
        assert gpu.max_threads_per_cta == 1024

    def test_throughput_is_positive(self):
        assert GPUConfig().throughput_ops > 1e12

    def test_rejects_zero_sms(self):
        with pytest.raises(ConfigError):
            GPUConfig(num_sms=0)

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ConfigError):
            GPUConfig(cache_block=100)

    def test_rejects_negative_bandwidth(self):
        with pytest.raises(ConfigError):
            GPUConfig(dram_bandwidth=-1)


class TestGPSConfig:
    def test_table1_values(self):
        gps = GPSConfig()
        assert gps.write_queue_entries == 512
        assert gps.write_queue_entry_bytes == 135
        assert gps.gps_tlb_entries == 32
        assert gps.gps_tlb_assoc == 8
        assert gps.virtual_address_bits == 49
        assert gps.physical_address_bits == 47
        assert gps.page_size == PAGE_64K

    def test_default_watermark_is_capacity_minus_one(self):
        assert GPSConfig().effective_watermark == 511

    def test_explicit_watermark(self):
        assert GPSConfig(high_watermark=100).effective_watermark == 100

    def test_watermark_out_of_range(self):
        with pytest.raises(ConfigError):
            GPSConfig(high_watermark=513)

    def test_tracking_bitmap_is_64kib_for_32gib(self):
        # Paper section 5.2: "Tracking a 32GB virtual address range, the
        # bitmap requires only 64KB of DRAM".
        assert GPSConfig().tracking_bitmap_bytes == 64 * 1024

    def test_gps_pte_bits_matches_paper(self):
        # Paper section 5.1: VPN 33 bits + 3 remote PPNs of 31 bits = 126
        # for 4 GPUs with 64 KiB pages. The width is the architectural
        # minimum — no per-slot valid bits are counted (the docstring once
        # claimed one; the formula, which matches the paper, won).
        gps = GPSConfig()
        assert gps.vpn_bits == 33
        assert gps.ppn_bits == 31
        assert gps.gps_pte_bits(num_gpus=4) == 126

    def test_gps_pte_bits_scales_with_remote_subscribers(self):
        gps = GPSConfig()
        assert gps.gps_pte_bits(num_gpus=2) == 33 + 31  # one remote PPN
        assert gps.gps_pte_bits(num_gpus=16) == 33 + 31 * 15

    def test_gps_pte_bits_at_4k_pages(self):
        gps = GPSConfig(page_size=PAGE_4K)
        assert gps.vpn_bits == 37
        assert gps.ppn_bits == 35
        assert gps.gps_pte_bits(num_gpus=4) == 37 + 35 * 3

    def test_tlb_entries_must_divide_assoc(self):
        with pytest.raises(ConfigError):
            GPSConfig(gps_tlb_entries=30, gps_tlb_assoc=8)

    def test_page_size_power_of_two(self):
        with pytest.raises(ConfigError):
            GPSConfig(page_size=60000)


class TestLinkConfig:
    def test_pcie6_matches_paper(self):
        # Section 7.3: projected PCIe 6.0 operating at 128 GB/s.
        assert PCIE6.bandwidth == 128e9

    def test_effective_bandwidth_applies_efficiency(self):
        link = LinkConfig("x", bandwidth=100e9, latency=1e-6, efficiency=0.5)
        assert link.effective_bandwidth == 50e9

    def test_infinite_link(self):
        assert math.isinf(INFINITE_LINK.bandwidth)
        assert INFINITE_LINK.latency == 0.0

    def test_generations_monotonic(self):
        gens = [LINKS_BY_NAME[n] for n in ("pcie3", "pcie4", "pcie5", "pcie6")]
        bandwidths = [g.bandwidth for g in gens]
        assert bandwidths == sorted(bandwidths)
        assert bandwidths[0] * 8 == bandwidths[3]

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigError):
            LinkConfig("x", bandwidth=1e9, latency=0, efficiency=1.5)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigError):
            LinkConfig("x", bandwidth=1e9, latency=-1e-6)


class TestSystemConfig:
    def test_default_system(self):
        system = default_system(4)
        assert system.num_gpus == 4
        assert system.link is PCIE6
        assert system.page_size == PAGE_64K

    def test_with_link(self):
        system = default_system(4).with_link(PCIE3)
        assert system.link is PCIE3
        assert system.num_gpus == 4

    def test_with_num_gpus(self):
        assert default_system(4).with_num_gpus(16).num_gpus == 16

    def test_with_page_size(self):
        assert default_system(4).with_page_size(PAGE_2M).page_size == PAGE_2M
        assert default_system(4).with_page_size(PAGE_4K).gps.page_size == PAGE_4K

    def test_rejects_zero_gpus(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_gpus=0)

    def test_configs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            default_system(4).num_gpus = 8

    def test_cache_block_constant(self):
        assert CACHE_BLOCK == 128


class TestConfigFingerprint:
    """The canonical fingerprint behind the runner's cache keys.

    Completeness (every field participates) is covered exhaustively in
    tests/harness/test_runner_cache_key.py; here the basic contract.
    """

    def test_deterministic_and_hex(self):
        a = config_fingerprint(default_system(4))
        b = config_fingerprint(default_system(4))
        assert a == b
        assert len(a) == 64
        int(a, 16)  # valid hex digest

    def test_covers_nested_fields(self):
        base = default_system(4)
        tweaked = dataclasses.replace(
            base, um=dataclasses.replace(base.um, prefetch_overlap=0.9)
        )
        assert config_fingerprint(base) != config_fingerprint(tweaked)

    def test_extra_scopes_the_digest(self):
        base = default_system(4)
        assert config_fingerprint(base) != config_fingerprint(base, extra="jacobi")
        assert config_fingerprint(base, extra="jacobi") == config_fingerprint(
            base, extra="jacobi"
        )

    def test_infinite_bandwidth_hashable(self):
        assert len(config_fingerprint(default_system(4, INFINITE_LINK))) == 64

    def test_schema_version_pinned(self):
        # Bumping the schema version must be a deliberate act: it invalidates
        # every persisted simulation result at once.
        assert CONFIG_SCHEMA_VERSION == 1
