"""Scalar-vs-vectorized replay differential.

``REPRO_SCALAR_REPLAY=1`` forces the per-element reference path through the
remote write queue, the GPS-TLB walk, and the routing fan-out; the default
path runs the batched numpy kernels. The two are one model, so for every
program they must produce byte-identical result payloads and identical
write-queue / GPS-TLB / SM-coalescer counters.

The corpus seeds replay the committed past-bug shapes; the fresh fuzz seeds
keep the comparison honest on programs nobody hand-picked.
"""

from __future__ import annotations

from pathlib import Path

import pytest

import repro
from repro.paradigms import PARADIGMS
from repro.system.analysis import clear_analysis_cache
from repro.trace.io import load_program
from repro.verify import canonical_payload, generate_program
from repro.verify.differential import _scoped_env

CORPUS = Path(__file__).parent / "corpus"
CORPUS_SEEDS = (0, 4, 5, 6, 7, 12, 13, 18, 21, 25)
FRESH_SEEDS = (31, 47, 62, 88, 104)
NUM_GPUS, SCALE, ITERATIONS = 4, 0.25, 2


def _run(program, paradigm: str, scalar: bool):
    config = repro.default_system(NUM_GPUS)
    clear_analysis_cache()  # memoised streams must not leak across paths
    with _scoped_env(REPRO_SCALAR_REPLAY="1" if scalar else None):
        executor = PARADIGMS[paradigm](program, config)
        result = executor.run()
    return result


def _counter_family(result, family: str) -> dict:
    return {k: v for k, v in result.counters.items() if family in k}


def _assert_paths_identical(program, paradigm: str = "gps") -> None:
    vec = _run(program, paradigm, scalar=False)
    ref = _run(program, paradigm, scalar=True)
    assert canonical_payload(vec) == canonical_payload(ref)
    assert vec.write_queue_stats == ref.write_queue_stats
    assert vec.gps_tlb_stats == ref.gps_tlb_stats
    for family in ("write_queue", "gps_tlb", "sm_coalescer"):
        assert _counter_family(vec, family) == _counter_family(ref, family), family


class TestCorpusSeeds:
    @pytest.mark.parametrize("seed", CORPUS_SEEDS)
    def test_byte_identical_payloads_and_counters(self, seed):
        program = load_program(CORPUS / f"corpus-s{seed}.json")
        _assert_paths_identical(program)


class TestFreshFuzzSeeds:
    @pytest.mark.parametrize("seed", FRESH_SEEDS)
    def test_byte_identical_payloads_and_counters(self, seed):
        program = generate_program(seed, NUM_GPUS, scale=SCALE, iterations=ITERATIONS)
        _assert_paths_identical(program)


class TestParadigmVariants:
    @pytest.mark.parametrize("paradigm", ("gps_nosub", "gps_nocoalesce"))
    def test_ablations_agree_too(self, paradigm):
        # gps_nosub keeps all-to-all fan-out hot for the whole run;
        # gps_nocoalesce forces every store down the atomic bypass.
        program = load_program(CORPUS / "corpus-s4.json")
        _assert_paths_identical(program, paradigm)
