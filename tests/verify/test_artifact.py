"""Failure-repro artifact tests: schema, round-trip, replay."""

from __future__ import annotations

import json

import pytest

from repro.trace.io import program_to_dict
from repro.verify.artifact import (
    ARTIFACT_VERSION,
    artifact_program,
    build_artifact,
    load_artifact,
    replay_violations,
    write_artifact,
)
from repro.verify.differential import CaseReport
from repro.verify.fuzzer import FuzzSpec, generate_program
from repro.verify.oracle import Violation

PARADIGMS = ("gps", "memcpy")


def failing_case() -> CaseReport:
    case = CaseReport(FuzzSpec(seed=3, num_gpus=2, scale=0.25, iterations=2))
    case.violations.append(Violation("wire-byte-conservation", "gps: off by 4096"))
    case.violations.append(Violation("differential-pool", "gps: payload differs"))
    return case


class TestArtifact:
    def test_build_records_the_full_identity(self):
        payload = build_artifact(failing_case(), PARADIGMS, "pcie6")
        assert payload["artifact_version"] == ARTIFACT_VERSION
        assert payload["kind"] == "verify-failure"
        assert payload["case"]["workload"] == "fuzz/3"
        assert payload["case"]["paradigms"] == list(PARADIGMS)
        assert len(payload["config_fingerprint_sha256"]) == 64
        assert payload["config_fingerprint"]  # complete canonical config
        assert [v["check"] for v in payload["violations"]] == [
            "wire-byte-conservation",
            "differential-pool",
        ]

    def test_default_program_is_the_generated_one(self):
        payload = build_artifact(failing_case(), PARADIGMS, "pcie6")
        expected = generate_program(3, 2, scale=0.25, iterations=2)
        assert payload["program"] == program_to_dict(expected)

    def test_write_load_round_trip(self, tmp_path):
        payload = build_artifact(failing_case(), PARADIGMS, "pcie6")
        path = write_artifact(tmp_path / "artifacts", payload)
        assert path.name == "verify-s3-g2.json"
        loaded = load_artifact(path)
        assert loaded == json.loads(json.dumps(payload))

    def test_version_mismatch_raises(self, tmp_path):
        payload = build_artifact(failing_case(), PARADIGMS, "pcie6")
        payload["artifact_version"] = ARTIFACT_VERSION + 1
        path = write_artifact(tmp_path, payload)
        with pytest.raises(ValueError, match="artifact version"):
            load_artifact(path)

    def test_program_and_violations_replay(self, tmp_path):
        minimized = generate_program(3, 2, scale=0.25, iterations=2)
        payload = build_artifact(failing_case(), PARADIGMS, "pcie6", program=minimized)
        path = write_artifact(tmp_path, payload)
        loaded = load_artifact(path)
        rebuilt = artifact_program(loaded)
        assert program_to_dict(rebuilt) == program_to_dict(minimized)
        violations = replay_violations(loaded)
        assert [v.check for v in violations] == [
            "wire-byte-conservation",
            "differential-pool",
        ]
