"""Differential-harness tests: path identity, divergence localisation."""

from __future__ import annotations

import os

import pytest

from repro.verify.differential import (
    CaseReport,
    _compare_path,
    _scoped_env,
    canonical_payload,
    run_differential,
)
from repro.verify.fuzzer import FuzzSpec, generate_program
from repro.paradigms import PARADIGMS

import repro


class TestScopedEnv:
    def test_sets_and_restores(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with _scoped_env(REPRO_NO_CACHE=None, REPRO_CACHE_DIR="/tmp/x"):
            assert "REPRO_NO_CACHE" not in os.environ
            assert os.environ["REPRO_CACHE_DIR"] == "/tmp/x"
        assert os.environ["REPRO_NO_CACHE"] == "1"
        assert "REPRO_CACHE_DIR" not in os.environ

    def test_restores_on_exception(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "3")
        with pytest.raises(RuntimeError):
            with _scoped_env(REPRO_MAX_WORKERS="7"):
                raise RuntimeError("boom")
        assert os.environ["REPRO_MAX_WORKERS"] == "3"


class TestCompareLocalisation:
    def _payloads(self):
        program = generate_program(1, 2, scale=0.25, iterations=2)
        config = repro.default_system(2)
        return canonical_payload(PARADIGMS["gps"](program, config).run())

    def test_identical_payloads_pass(self):
        payload = self._payloads()
        report = CaseReport(FuzzSpec(1, 2, 0.25, 2))
        report.payloads["gps"] = {"direct": payload}
        _compare_path(report, "pool", "gps", payload)
        assert report.ok

    def test_assembly_divergence_is_localised(self):
        payload = self._payloads()
        report = CaseReport(FuzzSpec(1, 2, 0.25, 2))
        report.payloads["gps"] = {"direct": payload}
        # Same schedule digest, different field: result-assembly bug.
        _compare_path(report, "pool", "gps", payload.replace('"num_gpus":2', '"num_gpus":3'))
        (violation,) = report.violations
        assert violation.check == "differential-pool"
        assert "result assembly or serialisation" in violation.message

    def test_scheduler_divergence_is_localised(self):
        payload = self._payloads()
        report = CaseReport(FuzzSpec(1, 2, 0.25, 2))
        report.payloads["gps"] = {"direct": payload}
        digest = payload.split('"schedule_digest":"')[1][:64]
        _compare_path(
            report, "service", "gps", payload.replace(digest, "f" * 64)
        )
        (violation,) = report.violations
        assert violation.check == "differential-service"
        assert "the scheduler diverged" in violation.message


class TestRunDifferential:
    def test_four_paths_agree(self):
        # Service path is exercised by the service/e2e suites and the CLI
        # smoke; keep this core test on the four cheap paths.
        report = run_differential(
            range(2), num_gpus=2, scale=0.25, iterations=2,
            paradigms=("gps", "gps_nosub", "memcpy", "infinite"),
            use_service=False,
        )
        assert report.ok, [str(v) for _, v in report.violations]
        assert report.paths == ("direct", "cache", "store", "pool")
        for case in report.cases:
            for paradigm, payloads in case.payloads.items():
                assert set(payloads) == {"direct", "cache", "store", "pool"}
                assert len(set(payloads.values())) == 1, paradigm

    def test_rejects_unknown_paradigm(self):
        with pytest.raises(ValueError, match="unknown paradigms"):
            run_differential(range(1), paradigms=("gps", "nope"))

    def test_progress_messages_flow(self):
        messages = []
        report = run_differential(
            range(1), num_gpus=2, scale=0.25, iterations=2,
            paradigms=("gps",), use_service=False, progress=messages.append,
        )
        assert report.ok
        assert any("direct" in m for m in messages)
        assert any("pool" in m for m in messages)


@pytest.mark.slow
class TestRunDifferentialService:
    def test_all_five_paths_agree(self):
        report = run_differential(
            range(1), num_gpus=2, scale=0.25, iterations=2,
            paradigms=("gps", "memcpy"), use_service=True,
        )
        assert report.ok, [str(v) for _, v in report.violations]
        for case in report.cases:
            for payloads in case.payloads.values():
                assert set(payloads) == {
                    "direct", "cache", "store", "pool", "service"
                }
                assert len(set(payloads.values())) == 1
