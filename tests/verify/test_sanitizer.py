"""Sanitizer mutation harness: the analyzer's own safety net."""

from __future__ import annotations

import pytest

from repro.analysis import Severity, analyze_program
from repro.analysis.engine import DEFAULT_PAGE_SIZE
from repro.verify import MUTATORS, SanitizerReport, run_sanitizer
from repro.verify.fuzzer import generate_program

EXPECTED_MUTATORS = {
    "ww-overlap": "GPS001",
    "uninit-read": "GPS003",
    "stale-read": "GPS006",
    "weak-flag": "GPS005",
    "sys-data": "GPS004",
    "atomic-mix": "GPS007",
}


class TestMutators:
    def test_registry(self):
        assert {name: code for name, code, _ in MUTATORS} == EXPECTED_MUTATORS

    @pytest.mark.parametrize("name,code,mutate", MUTATORS,
                             ids=[m[0] for m in MUTATORS])
    def test_mutant_fires_its_rule_with_witness(self, name, code, mutate):
        base = generate_program(0, num_gpus=4, scale=0.25, iterations=2)
        mutant = mutate(base, DEFAULT_PAGE_SIZE)
        assert mutant is not None, f"{name}: mutator skipped seed 0"
        assert mutant is not base
        hits = [d for d in analyze_program(mutant) if d.code == code]
        assert hits, f"{name}: {code} did not fire"
        for hit in hits:
            assert hit.witness is not None
            assert hit.witness.site.kernel

    @pytest.mark.parametrize("name,code,mutate", MUTATORS,
                             ids=[m[0] for m in MUTATORS])
    def test_base_program_does_not_fire_the_rule(self, name, code, mutate):
        base = generate_program(0, num_gpus=4, scale=0.25, iterations=2)
        assert not [
            d for d in analyze_program(base)
            if d.severity.rank >= Severity.WARNING.rank
        ]


class TestReport:
    def test_empty_report_is_ok(self):
        report = SanitizerReport()
        assert report.ok
        assert report.mutants_checked == 0

    def test_failures_flip_ok(self):
        report = SanitizerReport(cases=1, failures=["boom"])
        assert not report.ok

    def test_to_dict_round_trip(self):
        report = SanitizerReport(cases=2, mutants={"b": 2, "a": 1})
        payload = report.to_dict()
        assert payload["cases"] == 2
        assert list(payload["mutants"]) == ["a", "b"]
        assert payload["mutants_checked"] == 3
        assert payload["ok"] is True


class TestRunSanitizer:
    def test_small_sweep_is_clean(self):
        report = run_sanitizer(seed=0, cases=2, num_gpus=2, scale=0.1,
                               iterations=2, simulate_clean=False)
        assert report.ok, report.failures
        assert report.cases == 2
        assert report.mutants_checked >= 2 * (len(MUTATORS) - 1)

    def test_simulate_clean_runs_the_oracle(self):
        report = run_sanitizer(seed=3, cases=1, num_gpus=2, scale=0.1,
                               iterations=2, simulate_clean=True)
        assert report.ok, report.failures

    def test_progress_callback_fires_per_case(self):
        seen = []
        run_sanitizer(seed=0, cases=2, num_gpus=2, scale=0.1, iterations=2,
                      simulate_clean=False, progress=seen.append)
        assert len(seen) == 2
