"""Golden corpus: committed fuzzer programs replayed as differential tests.

The corpus under ``tests/verify/corpus/`` holds ten minimal fuzzer-generated
programs chosen for the shapes that have broken result plumbing before —
zero-payload (idle) kernels, atomic scatters, single- and triple-buffer
programs, back-to-back reduce phases. Each is replayed three ways:

* the on-disk JSON must still match what the fuzzer generates for its seed
  (the generator is part of the contract — a silent grammar change breaks
  cross-process rebuild-by-name);
* every program must stay analyzer-strict-clean and oracle-clean under the
  paradigms the harness differentials;
* the direct and warm-disk-cache paths must agree byte-for-byte.

Two more past-bug shapes ride along as behavioural goldens: a truncated
persistent-cache record must read as a miss (never a crash or a torn
result), and duplicate in-batch jobs must coalesce to one computation.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

import repro
from repro.analysis import Severity, analyze_program
from repro.harness.runner import (
    SimJob,
    clear_run_cache,
    fleet_stats,
    run_many,
    run_simulation,
)
from repro.harness.runner.disk import DiskCache
from repro.paradigms import PARADIGMS
from repro.trace.io import load_program, program_to_dict
from repro.verify import canonical_payload, check_result, generate_program

CORPUS = Path(__file__).parent / "corpus"
CORPUS_SEEDS = (0, 4, 5, 6, 7, 12, 13, 18, 21, 25)
CORPUS_GPUS, CORPUS_SCALE, CORPUS_ITERATIONS = 4, 0.25, 2


def corpus_path(seed: int) -> Path:
    return CORPUS / f"corpus-s{seed}.json"


class TestCorpusIntegrity:
    def test_every_committed_file_is_a_known_seed(self):
        files = sorted(CORPUS.glob("*.json"))
        assert {p.name for p in files} == {f"corpus-s{s}.json" for s in CORPUS_SEEDS}

    @pytest.mark.parametrize("seed", CORPUS_SEEDS)
    def test_generator_still_produces_the_committed_program(self, seed):
        committed = load_program(corpus_path(seed))
        regenerated = generate_program(
            seed, CORPUS_GPUS, scale=CORPUS_SCALE, iterations=CORPUS_ITERATIONS
        )
        assert program_to_dict(committed) == program_to_dict(regenerated)

    def test_corpus_covers_the_past_bug_shapes(self):
        programs = [load_program(corpus_path(s)) for s in CORPUS_SEEDS]
        assert any(  # zero-payload kernels
            not k.accesses for p in programs for k in p.iter_kernels()
        )
        assert any(  # atomic scatters
            a.op.name == "ATOMIC"
            for p in programs for k in p.iter_kernels() for a in k.accesses
        )
        assert {len(p.buffers) for p in programs} >= {1, 2, 3}


class TestCorpusReplay:
    @pytest.mark.parametrize("seed", CORPUS_SEEDS)
    def test_strict_clean_and_oracle_clean(self, seed):
        program = load_program(corpus_path(seed))
        diagnostics = analyze_program(program)
        assert not [
            d for d in diagnostics
            if d.severity in (Severity.ERROR, Severity.WARNING)
        ]
        config = repro.default_system(CORPUS_GPUS)
        for paradigm in ("gps", "memcpy", "infinite"):
            result = PARADIGMS[paradigm](program, config).run()
            assert check_result(result, config) == [], paradigm

    @pytest.mark.parametrize("seed", CORPUS_SEEDS[:4])
    def test_direct_equals_warm_disk_cache(self, seed, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_run_cache()
        try:
            kwargs = dict(scale=CORPUS_SCALE, iterations=CORPUS_ITERATIONS)
            cold = run_simulation(f"fuzz/{seed}", "gps", CORPUS_GPUS, **kwargs)
            clear_run_cache()  # drop the memo: force the disk read
            warm = run_simulation(f"fuzz/{seed}", "gps", CORPUS_GPUS, **kwargs)
            assert canonical_payload(warm) == canonical_payload(cold)
        finally:
            clear_run_cache()


class TestPastBugBehaviours:
    def test_truncated_cache_record_reads_as_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        program = load_program(corpus_path(0))
        config = repro.default_system(CORPUS_GPUS)
        result = PARADIGMS["gps"](program, config).run()
        cache.put("deadbeef", result)
        record = tmp_path / "deadbeef.json"
        record.write_text(record.read_text()[: record.stat().st_size // 2])
        assert cache.get("deadbeef") is None
        assert cache.stats.evictions == 1

    def test_half_written_record_is_valid_json_but_wrong_shape(self, tmp_path):
        cache = DiskCache(tmp_path)
        (tmp_path / "cafe.json").write_text(json.dumps({"version": 1}))
        assert cache.get("cafe") is None

    def test_duplicate_jobs_coalesce_to_one_computation(self):
        clear_run_cache()
        job = SimJob(
            "fuzz/6", "gps", CORPUS_GPUS,
            scale=CORPUS_SCALE, iterations=CORPUS_ITERATIONS,
        )
        results = run_many([job, job, job], max_workers=1)
        assert results[0] is results[1] is results[2]
        stats = fleet_stats()
        assert stats.jobs_submitted >= 3
        assert stats.jobs_computed == 1
        clear_run_cache()
