"""Greedy shrinker tests."""

from __future__ import annotations

from repro.verify.fuzzer import generate_program
from repro.verify.minimize import minimize_program, shrink_stats


def count_structure(program):
    kernels = sum(len(p.kernels) for p in program.phases)
    accesses = sum(len(k.accesses) for k in program.iter_kernels())
    return len(program.phases), kernels, accesses


class TestMinimize:
    def test_shrinks_to_the_failing_structure(self):
        program = generate_program(2, 4, scale=0.25, iterations=3)

        def has_atomic(candidate) -> bool:
            return any(
                access.op.name == "ATOMIC"
                for kernel in candidate.iter_kernels()
                for access in kernel.accesses
            )

        if not has_atomic(program):  # pick a seed that scatters
            program = generate_program(6, 4, scale=0.25, iterations=3)
        assert has_atomic(program)
        minimized = minimize_program(program, has_atomic)
        assert has_atomic(minimized)
        assert count_structure(minimized) < count_structure(program)
        # Greedy descent should reach a single surviving access.
        accesses = sum(len(k.accesses) for k in minimized.iter_kernels())
        assert accesses == 1

    def test_non_reproducing_predicate_returns_original(self):
        program = generate_program(0, 2, scale=0.25)
        result = minimize_program(program, lambda p: False)
        assert result is program

    def test_zero_budget_returns_original(self):
        program = generate_program(0, 2, scale=0.25)
        result = minimize_program(program, lambda p: True, max_evals=0)
        assert result is program

    def test_raising_predicate_counts_as_failure(self):
        program = generate_program(1, 2, scale=0.25)

        def explodes(candidate):
            raise RuntimeError("crash while re-checking")

        minimized = minimize_program(program, explodes, max_evals=30)
        # Everything shrinks away (the crash survives every removal) but the
        # result stays a valid program.
        assert len(minimized.phases) >= 1

    def test_budget_bounds_predicate_evaluations(self):
        program = generate_program(4, 4, scale=0.25, iterations=3)
        calls = []

        def counting(candidate):
            calls.append(1)
            return True

        minimize_program(program, counting, max_evals=10)
        # +1 for the initial reproduction check.
        assert len(calls) <= 11

    def test_shrink_stats_report(self):
        program = generate_program(2, 4, scale=0.25, iterations=3)
        minimized = minimize_program(program, lambda p: True, max_evals=50)
        stats = shrink_stats(program, minimized)
        assert stats["phases"]["before"] >= stats["phases"]["after"]
        assert set(stats) == {"phases", "kernels", "accesses"}
