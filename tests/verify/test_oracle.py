"""Invariant-oracle tests: clean runs pass, injected bugs are caught.

The mutation tests are the oracle's own acceptance criterion: take a known
clean simulation, corrupt one field the way a plumbing bug would (a counter
that stops accumulating, a phase window that drifts, a digest that goes
stale), and assert the *specific* checker fires.
"""

from __future__ import annotations

import math

import pytest

import repro
from repro.paradigms import PARADIGMS
from repro.system.results import PhaseBreakdown
from repro.verify.oracle import (
    ORACLE_CHECKS,
    check_execution,
    check_family,
    check_result,
    oracle_catalogue,
)

from tests.conftest import TINY, build


def run_traced(workload: str, paradigm: str, gpus: int = 2):
    program = build(workload, gpus)
    config = repro.default_system(gpus)
    executor = PARADIGMS[paradigm](program, config)
    executor.collector.enable()
    return executor, executor.run(), config


@pytest.fixture(scope="module")
def gps_run():
    program = repro.get_workload("jacobi").build(2, scale=TINY, iterations=2)
    config = repro.default_system(2)
    executor = PARADIGMS["gps"](program, config)
    executor.collector.enable()
    return executor, executor.run(), config


def checks_fired(violations) -> set:
    return {v.check for v in violations}


class TestCleanRuns:
    @pytest.mark.parametrize("paradigm", sorted(PARADIGMS))
    def test_every_paradigm_is_oracle_clean(self, paradigm):
        executor, result, config = run_traced("pagerank", paradigm)
        assert check_result(result, config) == []
        assert check_execution(executor, result) == []

    def test_family_laws_hold(self):
        program = build("jacobi", 2)
        config = repro.default_system(2)
        family = {
            name: PARADIGMS[name](program, config).run()
            for name in ("gps", "gps_nosub", "memcpy", "infinite")
        }
        assert check_family(family) == []

    def test_catalogue_covers_every_registered_check(self):
        names = {name for name, _, _ in oracle_catalogue()}
        assert names == set(ORACLE_CHECKS)
        assert all(summary for _, _, summary in oracle_catalogue())


class TestMutationsAreCaught:
    """Each injected bug must trip its checker (and only plausibly related ones)."""

    def test_undercounted_link_bytes(self, gps_run):
        _, result, config = gps_run
        result = repro.SimulationResult.from_dict(result.to_dict())
        result.counters["link.bytes"] -= 4096  # a transfer path that forgot to count
        assert "wire-byte-conservation" in checks_fired(check_result(result, config))

    def test_egress_counter_drift(self, gps_run):
        _, result, config = gps_run
        result = repro.SimulationResult.from_dict(result.to_dict())
        result.counters["link.egress0.bytes"] += 128
        assert "wire-byte-conservation" in checks_fired(check_result(result, config))

    def test_nan_total_time(self, gps_run):
        _, result, config = gps_run
        result = repro.SimulationResult.from_dict(result.to_dict())
        result.total_time = math.nan
        assert "total-time-sane" in checks_fired(check_result(result, config))

    def test_negative_counter(self, gps_run):
        _, result, config = gps_run
        result = repro.SimulationResult.from_dict(result.to_dict())
        result.counters["gpu0.dram.read_bytes"] = -1
        fired = checks_fired(check_result(result, config))
        assert "counters-finite-nonnegative" in fired

    def test_rollup_divergence(self, gps_run):
        _, result, config = gps_run
        result = repro.SimulationResult.from_dict(result.to_dict())
        result.counters["dram.read_bytes"] += 64  # aggregate drifts off its parts
        assert "gpu-rollup-conservation" in checks_fired(check_result(result, config))

    def test_phase_gap(self, gps_run):
        _, result, config = gps_run
        result = repro.SimulationResult.from_dict(result.to_dict())
        broken = result.phases[1]
        result.phases[1] = PhaseBreakdown(
            broken.name, broken.start + 1e-3, broken.end,
            broken.kernel_time, broken.exposed_transfer_time,
        )
        assert "phase-timeline-tiles" in checks_fired(check_result(result, config))

    def test_kernel_time_overflows_phase(self, gps_run):
        _, result, config = gps_run
        result = repro.SimulationResult.from_dict(result.to_dict())
        phase = result.phases[0]
        result.phases[0] = PhaseBreakdown(
            phase.name, phase.start, phase.end,
            phase.duration * 2.0, phase.exposed_transfer_time,
        )
        assert "phase-breakdown-sane" in checks_fired(check_result(result, config))

    def test_write_queue_ledger_break(self, gps_run):
        _, result, config = gps_run
        result = repro.SimulationResult.from_dict(result.to_dict())
        result.write_queue_stats[0].stores_seen += 7  # stores that never landed
        assert "write-queue-accounting" in checks_fired(check_result(result, config))

    def test_tlb_evictions_exceed_misses(self, gps_run):
        _, result, config = gps_run
        result = repro.SimulationResult.from_dict(result.to_dict())
        stats = result.gps_tlb_stats[0]
        stats.evictions = stats.misses + 1
        assert "gps-tlb-accounting" in checks_fired(check_result(result, config))

    def test_impossible_subscriber_count(self, gps_run):
        _, result, config = gps_run
        result = repro.SimulationResult.from_dict(result.to_dict())
        result.subscriber_histogram[config.num_gpus + 3] = 10
        assert "subscriber-histogram-sane" in checks_fired(check_result(result, config))

    def test_faults_on_non_faulting_paradigm(self, gps_run):
        _, result, config = gps_run
        result = repro.SimulationResult.from_dict(result.to_dict())
        result.fault_count = 12
        assert "fault-accounting" in checks_fired(check_result(result, config))

    def test_stale_schedule_digest(self, gps_run):
        executor, result, _config = gps_run
        result = repro.SimulationResult.from_dict(result.to_dict())
        result.extras["schedule_digest"] = "0" * 64
        assert "schedule-digest-stable" in checks_fired(check_execution(executor, result))

    def test_missing_schedule_digest(self, gps_run):
        _, result, config = gps_run
        result = repro.SimulationResult.from_dict(result.to_dict())
        del result.extras["schedule_digest"]
        assert "schedule-digest-present" in checks_fired(check_result(result, config))


class TestFamilyMutations:
    @pytest.fixture(scope="class")
    def family(self):
        program = repro.get_workload("jacobi").build(2, scale=TINY, iterations=2)
        config = repro.default_system(2)
        return {
            name: PARADIGMS[name](program, config).run()
            for name in ("gps", "gps_nosub", "memcpy", "infinite")
        }

    def _copy(self, family):
        return {
            name: repro.SimulationResult.from_dict(result.to_dict())
            for name, result in family.items()
        }

    def test_infinite_beaten_is_flagged(self, family):
        doctored = self._copy(family)
        doctored["gps"].total_time = doctored["infinite"].total_time / 2.0
        assert "infinite-lower-bound" in checks_fired(check_family(doctored))

    def test_gps_exceeding_broadcast_is_flagged(self, family):
        doctored = self._copy(family)
        extra = doctored["gps_nosub"].interconnect_bytes + 4096
        doctored["gps"].traffic.add(0, 1, extra)
        fired = checks_fired(check_family(doctored))
        assert "subscription-never-adds-traffic" in fired
        assert "gps-bounded-by-memcpy" in fired

    def test_mixed_programs_are_flagged(self, family):
        doctored = self._copy(family)
        doctored["memcpy"].program_name = "somebody-else"
        assert "same-program-identity" in checks_fired(check_family(doctored))
