"""Fuzzer tests: determinism, analyzer cleanliness, registry addressing."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Severity, analyze_program
from repro.errors import TraceError
from repro.trace.io import program_to_dict
from repro.verify.fuzzer import (
    FUZZ_PREFIX,
    FuzzSpec,
    FuzzWorkload,
    generate_program,
    is_fuzz_workload,
)
from repro.workloads.registry import get_workload, is_known_workload

SEEDS = range(12)


def canonical(program) -> str:
    return json.dumps(program_to_dict(program), sort_keys=True)


class TestDeterminism:
    @pytest.mark.parametrize("seed", [0, 7, 41])
    def test_same_arguments_same_program(self, seed):
        a = generate_program(seed, 4, scale=0.25, iterations=2)
        b = generate_program(seed, 4, scale=0.25, iterations=2)
        assert canonical(a) == canonical(b)

    def test_different_seeds_differ(self):
        programs = {canonical(generate_program(s, 4, scale=0.25)) for s in SEEDS}
        assert len(programs) > 1

    def test_registry_rebuild_matches(self):
        direct = generate_program(9, 2, scale=0.25, iterations=3)
        via_registry = get_workload("fuzz/9").build(2, scale=0.25, iterations=3)
        assert canonical(direct) == canonical(via_registry)


class TestWellFormedness:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("gpus", [1, 2, 4])
    def test_strict_clean_under_analyzer(self, seed, gpus):
        program = generate_program(seed, gpus, scale=0.25, iterations=2)
        diagnostics = analyze_program(program)
        worst = [d for d in diagnostics if d.severity in (Severity.ERROR, Severity.WARNING)]
        assert worst == [], [str(d) for d in worst]

    def test_setup_phase_comes_first(self):
        program = generate_program(3, 4, scale=0.25)
        assert program.phases[0].iteration == -1
        assert all(p.iteration >= 0 for p in program.phases[1:])

    def test_iterations_replay_the_same_plan(self):
        program = generate_program(5, 4, scale=0.25, iterations=3)
        per_iteration = [
            [p.name.split("/", 1)[1] for p in program.phases_in_iteration(i)]
            for i in range(3)
        ]
        assert per_iteration[0] == per_iteration[1] == per_iteration[2]

    def test_corpus_contains_zero_payload_kernels(self):
        # The degenerate empty-kernel shape must actually occur in a modest
        # seed range — it has broken result plumbing before.
        assert any(
            not kernel.accesses
            for seed in range(32)
            for kernel in generate_program(seed, 4, scale=0.25).iter_kernels()
        )

    def test_rejects_bad_arguments(self):
        with pytest.raises(TraceError):
            generate_program(-1, 4)
        with pytest.raises(TraceError):
            generate_program(0, 4, iterations=0)


class TestRegistryAddressing:
    def test_name_round_trip(self):
        spec = FuzzSpec(17, 4, 0.25, 2)
        assert spec.workload_name == "fuzz/17"
        workload = FuzzWorkload.from_name(spec.workload_name)
        assert workload.seed == 17

    @pytest.mark.parametrize("name", ["fuzz/", "fuzz/x", "fuzz/-3", "fuzz/1.5"])
    def test_malformed_names_raise(self, name):
        with pytest.raises(TraceError):
            FuzzWorkload.from_name(name)
        assert not is_known_workload(name)

    def test_known_workload_predicate(self):
        assert is_known_workload("fuzz/0")
        assert is_known_workload("jacobi")
        assert not is_known_workload("no-such-workload")

    def test_is_fuzz_workload(self):
        assert is_fuzz_workload(f"{FUZZ_PREFIX}12")
        assert not is_fuzz_workload("jacobi")
