"""CLI tests for ``repro verify``."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestVerifyCli:
    def test_list_checks(self, capsys):
        assert main(["verify", "--list-checks"]) == 0
        out = capsys.readouterr().out
        assert "wire-byte-conservation" in out
        assert "infinite-lower-bound" in out

    def test_smoke_run_passes(self, capsys, tmp_path):
        code = main([
            "verify", "--cases", "2", "--seed", "0", "--gpus", "2",
            "--no-service", "--out", str(tmp_path / "artifacts"),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "verify: OK" in out
        assert not (tmp_path / "artifacts").exists()  # no failures, no artifacts

    def test_paradigms_all_is_accepted(self, capsys):
        code = main([
            "verify", "--cases", "1", "--seed", "5", "--gpus", "2",
            "--paradigms", "all", "--no-service",
        ])
        assert code == 0
        assert "x 8 paradigms" in capsys.readouterr().out

    def test_unknown_paradigm_errors(self):
        with pytest.raises(ValueError, match="unknown paradigms"):
            main([
                "verify", "--cases", "1", "--gpus", "2",
                "--paradigms", "gps,bogus", "--no-service",
            ])

    def test_failure_writes_artifact(self, capsys, tmp_path, monkeypatch):
        # Inject a counter bug into one executor and assert the verify verb
        # catches it end-to-end: non-zero exit, violation printed, artifact
        # written — the CLI-level mutation check.
        from repro.paradigms.base import ParadigmExecutor

        original = ParadigmExecutor.build_result

        def tampered(self, total_time):
            result = original(self, total_time)
            if result.paradigm == "gps":
                result.counters["link.bytes"] = result.counters.get("link.bytes", 0) + 512
            return result

        monkeypatch.setattr(ParadigmExecutor, "build_result", tampered)
        out_dir = tmp_path / "artifacts"
        code = main([
            "verify", "--cases", "1", "--seed", "0", "--gpus", "2",
            "--paradigms", "gps", "--no-service", "--out", str(out_dir),
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "wire-byte-conservation" in captured.err
        artifacts = list(out_dir.glob("verify-s0-*.json"))
        assert len(artifacts) == 1


class TestSanitizerCli:
    def test_small_sweep_passes(self, capsys):
        code = main([
            "verify", "--sanitizer", "--cases", "1", "--seed", "0",
            "--gpus", "2", "--scale", "0.1",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "verify --sanitizer: OK" in out
        assert "mutant(s)" in out

    def test_reports_per_mutator_counts(self, capsys):
        assert main([
            "verify", "--sanitizer", "--cases", "1", "--seed", "2",
            "--gpus", "2", "--scale", "0.1",
        ]) == 0
        out = capsys.readouterr().out
        assert "ww-overlap=" in out
        assert "sys-data=" in out

    def test_failure_exits_1(self, capsys, monkeypatch):
        # Break a rule/fix invariant by making the harness expect a code
        # that never fires: every mutant check must fail loudly.
        import repro.verify.sanitizer as san

        broken = tuple(
            (name, "GPS999", fn) for name, _code, fn in san.MUTATORS[:1]
        )
        monkeypatch.setattr(san, "MUTATORS", broken)
        code = main([
            "verify", "--sanitizer", "--cases", "1", "--seed", "0",
            "--gpus", "2", "--scale", "0.1",
        ])
        captured = capsys.readouterr()
        assert code == 1
        assert "FAIL" in captured.err
