"""Tests for workload base helpers."""

import pytest

from repro.errors import TraceError
from repro.trace.records import MemOp
from repro.workloads.base import scaled_size, setup_phase, shard_bounds


class TestSetupPhase:
    def test_tagged_as_setup(self):
        phase = setup_phase([("a", 65536 * 4)], num_gpus=4)
        assert phase.iteration == -1
        assert phase.name == "setup/init"

    def test_every_gpu_writes_its_shard(self):
        phase = setup_phase([("a", 65536 * 4)], num_gpus=4)
        assert len(phase.kernels) == 4
        spans = []
        for kernel in phase.kernels:
            store = kernel.accesses[0]
            assert store.op is MemOp.WRITE
            spans.append((store.offset, store.end))
        spans.sort()
        assert spans[0][0] == 0
        assert spans[-1][1] == 65536 * 4
        for (a, b), (c, d) in zip(spans, spans[1:]):
            assert b == c

    def test_multiple_buffers(self):
        phase = setup_phase([("a", 65536), ("b", 65536)], num_gpus=2)
        assert len(phase.kernels[0].accesses) == 2

    def test_single_gpu(self):
        phase = setup_phase([("a", 65536)], num_gpus=1)
        assert phase.kernels[0].accesses[0].length == 65536


class TestScaledSize:
    def test_identity_at_scale_one(self):
        assert scaled_size(65536, 1.0) == 65536

    def test_rounds_up_to_granule(self):
        assert scaled_size(65537, 1.0) == 131072

    def test_floor_is_one_granule(self):
        assert scaled_size(65536, 0.0001) == 65536

    def test_custom_granule(self):
        assert scaled_size(1000, 1.0, granule=512) == 1024

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(TraceError):
            scaled_size(65536, 0.0)


class TestShardBounds:
    def test_single_part(self):
        assert shard_bounds(1000, 1, 0) == (0, 1000)

    def test_last_shard_absorbs_remainder(self):
        start, end = shard_bounds(1000, 3, 2)
        assert end == 1000

    def test_out_of_range_rejected(self):
        with pytest.raises(TraceError):
            shard_bounds(1000, 3, 3)
        with pytest.raises(TraceError):
            shard_bounds(1000, 3, -1)
