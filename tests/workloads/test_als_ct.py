"""Tests for the all-to-all workloads (ALS and CT)."""

import pytest

from repro.trace.records import MemOp, PatternKind
from repro.workloads.als import make_als
from repro.workloads.ct import make_ct


class TestALS:
    def test_alternating_phases(self):
        program = make_als().build(4, scale=0.1, iterations=2)
        names = [p.name for p in program.phases if p.iteration >= 0]
        assert "update_users" in names[0]
        assert "update_items" in names[1]

    def test_gather_reads_whole_opposite_factor(self):
        program = make_als().build(4, scale=0.1, iterations=1)
        kernel = program.phases_in_iteration(0)[0].kernels[0]
        gathers = [a for a in kernel.reads() if a.buffer == "items"]
        assert gathers[0].length == program.buffer("items").size

    def test_gather_has_repeat_without_locality(self):
        # Figure 10's ALS/RDL pathology: repeated sweeps of a random
        # stream refetch lines over the interconnect.
        program = make_als().build(4, scale=0.1, iterations=1)
        kernel = program.phases_in_iteration(0)[0].kernels[0]
        gather = [a for a in kernel.reads() if a.buffer == "items"][0]
        assert gather.repeat >= 2
        assert gather.pattern.kind is PatternKind.RANDOM

    def test_updates_are_atomics(self):
        # Section 7.4: ALS's 0% write-queue hit rate comes from atomics.
        program = make_als().build(4, scale=0.1, iterations=1)
        kernel = program.phases_in_iteration(0)[0].kernels[0]
        stores = kernel.stores()
        assert all(a.op is MemOp.ATOMIC for a in stores)

    def test_ratings_partitioned(self):
        program = make_als().build(4, scale=0.1, iterations=1)
        phase = program.phases_in_iteration(0)[0]
        offsets = set()
        for kernel in phase.kernels:
            ratings = [a for a in kernel.reads() if a.buffer == "ratings"][0]
            offsets.add((ratings.offset, ratings.end))
        assert len(offsets) == 4


class TestCT:
    def test_forward_backward_phases(self):
        program = make_ct().build(4, scale=0.1, iterations=1)
        names = [p.name for p in program.phases_in_iteration(0)]
        assert any("forward" in n for n in names)
        assert any("backward" in n for n in names)

    def test_forward_reads_whole_image(self):
        program = make_ct().build(4, scale=0.1, iterations=1)
        forward = program.phases_in_iteration(0)[0]
        for kernel in forward.kernels:
            read = kernel.reads()[0]
            assert read.buffer == "image"
            assert read.length == program.buffer("image").size

    def test_writes_have_temporal_reuse(self):
        # Figure 14: CT's write-queue hit-rate curve needs write revisits.
        program = make_ct().build(4, scale=0.1, iterations=1)
        kernel = program.phases_in_iteration(0)[0].kernels[0]
        write = kernel.stores()[0]
        assert write.pattern.kind is PatternKind.REUSE
        assert write.pattern.revisit_prob > 0.3

    def test_high_arithmetic_intensity(self):
        # CT is the compute-heavy app where bulk memcpy amortises well.
        assert make_ct().arithmetic_intensity > make_als().arithmetic_intensity

    def test_sino_partitioned_across_gpus(self):
        program = make_ct().build(4, scale=0.1, iterations=1)
        forward = program.phases_in_iteration(0)[0]
        spans = set()
        for kernel in forward.kernels:
            write = kernel.stores()[0]
            spans.add((write.offset, write.end))
        assert len(spans) == 4
