"""Tests for the workload registry and Table 2 fidelity."""

import pytest

from repro.errors import TraceError
from repro.workloads.registry import WORKLOADS, get_workload, workload_names

TABLE2 = {
    "jacobi": "Peer-to-peer",
    "pagerank": "Peer-to-Peer",
    "sssp": "Many-to-many",
    "als": "All-to-all",
    "ct": "All-to-all",
    "eqwp": "Peer-to-peer",
    "diffusion": "Peer-to-peer",
    "hit": "Peer-to-peer",
}


class TestRegistry:
    def test_all_eight_applications(self):
        assert workload_names() == list(TABLE2)

    def test_communication_patterns_match_table2(self):
        for name, pattern in TABLE2.items():
            assert get_workload(name).info.comm_pattern == pattern

    def test_unknown_workload(self):
        with pytest.raises(TraceError):
            get_workload("zzz")

    def test_descriptions_nonempty(self):
        for workload in WORKLOADS.values():
            assert workload.info.description


class TestBuildContract:
    @pytest.mark.parametrize("name", list(TABLE2))
    def test_builds_for_various_gpu_counts(self, name):
        for num_gpus in (1, 2, 4):
            program = get_workload(name).build(num_gpus, scale=0.1, iterations=2)
            assert program.num_gpus == num_gpus
            assert program.iterations == 2

    @pytest.mark.parametrize("name", list(TABLE2))
    def test_setup_phase_present(self, name):
        program = get_workload(name).build(4, scale=0.1, iterations=1)
        assert len(program.phases_in_iteration(-1)) == 1
        assert program.phases[0].iteration == -1

    @pytest.mark.parametrize("name", list(TABLE2))
    def test_every_gpu_participates(self, name):
        program = get_workload(name).build(4, scale=0.1, iterations=1)
        for phase in program.phases:
            assert phase.gpus == tuple(range(4))

    @pytest.mark.parametrize("name", list(TABLE2))
    def test_metadata(self, name):
        program = get_workload(name).build(4, scale=0.1, iterations=1)
        assert program.metadata["workload"] == name
        assert program.metadata["remote_mlp"] >= 1
        assert program.metadata["scale"] == 0.1

    @pytest.mark.parametrize("name", list(TABLE2))
    def test_has_shared_buffers(self, name):
        program = get_workload(name).build(4, scale=0.1, iterations=1)
        assert program.shared_buffers()

    @pytest.mark.parametrize("name", list(TABLE2))
    def test_deterministic_build(self, name):
        a = get_workload(name).build(4, scale=0.1, iterations=2)
        b = get_workload(name).build(4, scale=0.1, iterations=2)
        assert a.phases == b.phases
        assert a.buffers == b.buffers


class TestStrongScaling:
    @pytest.mark.parametrize("name", list(TABLE2))
    def test_total_problem_fixed(self, name):
        # Strong scaling: total compute is (approximately) independent of
        # the GPU count; per-GPU work shrinks. Halo recomputation adds a
        # genuine overhead that shrinks as the problem grows, so this runs
        # at a larger scale with a generous tolerance.
        one = get_workload(name).build(1, scale=0.4, iterations=2)
        four = get_workload(name).build(4, scale=0.4, iterations=2)
        assert four.total_compute_ops() == pytest.approx(
            one.total_compute_ops(), rel=0.6
        )
        assert four.total_compute_ops() < 2 * one.total_compute_ops()
