"""Tests for the Listing 1 mvmul workload."""

import pytest

import repro
from repro.trace.records import MemOp
from repro.workloads.mvmul import make_mvmul


class TestStructure:
    def test_listing1_buffers(self):
        program = make_mvmul().build(4, scale=0.25, iterations=2)
        assert {b.name for b in program.buffers} == {"mat", "vec1", "vec2"}

    def test_two_launches_per_iteration(self):
        # Listing 1 calls mvmul twice inside each tracked iteration.
        program = make_mvmul().build(4, scale=0.25, iterations=2)
        assert len(program.phases_in_iteration(0)) == 2

    def test_vector_ping_pong(self):
        program = make_mvmul().build(2, scale=0.25, iterations=1)
        first, second = program.phases_in_iteration(0)
        out_first = first.kernels[0].stores()[0].buffer
        out_second = second.kernels[0].stores()[0].buffer
        assert {out_first, out_second} == {"vec1", "vec2"}

    def test_reads_whole_input_vector(self):
        program = make_mvmul().build(4, scale=0.25, iterations=1)
        kernel = program.phases_in_iteration(0)[0].kernels[0]
        vec_reads = [a for a in kernel.reads() if a.buffer.startswith("vec")]
        assert vec_reads[0].length == program.buffer(vec_reads[0].buffer).size

    def test_matrix_rows_partitioned(self):
        program = make_mvmul().build(4, scale=0.25, iterations=1)
        phase = program.phases_in_iteration(0)[0]
        spans = set()
        for kernel in phase.kernels:
            mat = [a for a in kernel.reads() if a.buffer == "mat"][0]
            spans.add((mat.offset, mat.end))
        assert len(spans) == 4


class TestGPSBehaviour:
    def test_matrix_pages_demoted_vectors_stay(self):
        # The paper's point: tracking demotes single-subscriber matrix
        # pages to conventional pages while replicated vectors remain GPS.
        program = make_mvmul().build(4, scale=0.25, iterations=3)
        result = repro.simulate(program, "gps", repro.default_system(4))
        tracking = result.extras["tracking"]
        assert tracking["demoted"] > 0
        # Shared pages (the vectors) are all-to-all.
        assert set(result.subscriber_histogram) == {4}

    def test_gps_traffic_is_vectors_only(self):
        program = make_mvmul().build(4, scale=0.25, iterations=3)
        config = repro.default_system(4)
        gps = repro.simulate(program, "gps", config)
        memcpy = repro.simulate(program, "memcpy", config)
        # memcpy also only broadcasts written vector slices here, so GPS
        # steady traffic is in the same ballpark (plus profiling).
        assert gps.interconnect_bytes < 3 * memcpy.interconnect_bytes

    def test_registered_as_extra(self):
        assert repro.get_workload("mvmul").info.name == "mvmul"
        assert "mvmul" not in repro.workload_names()
