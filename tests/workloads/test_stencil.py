"""Tests for the stencil workload family."""

import pytest

from repro.trace.records import MemOp, PatternKind
from repro.workloads.base import scaled_size, shard_bounds
from repro.workloads.stencil import make_diffusion, make_eqwp, make_hit, make_jacobi


class TestStructure:
    def test_jacobi_double_buffered(self):
        program = make_jacobi().build(4, scale=0.1, iterations=1)
        assert {b.name for b in program.buffers} == {"field_a", "field_b"}

    def test_full_period_per_iteration(self):
        # One iteration spans a full ping-pong period (even sub-steps), so
        # GPS profiling over iteration 0 sees every page's access set.
        program = make_jacobi().build(4, scale=0.1, iterations=1)
        iteration_phases = program.phases_in_iteration(0)
        assert len(iteration_phases) % 2 == 0

    def test_hit_has_multiple_substeps(self):
        hit = make_hit().build(4, scale=0.1, iterations=1)
        jacobi = make_jacobi().build(4, scale=0.1, iterations=1)
        assert len(hit.phases_in_iteration(0)) > len(jacobi.phases_in_iteration(0))

    def test_interior_kernels_read_two_halos(self):
        program = make_jacobi().build(4, scale=0.2, iterations=1)
        phase = program.phases_in_iteration(0)[0]
        interior = phase.kernel_on(1)
        edge = phase.kernel_on(0)
        assert len(interior.reads()) == 3  # shard + 2 halos
        assert len(edge.reads()) == 2  # shard + 1 halo

    def test_single_gpu_has_no_halos(self):
        program = make_jacobi().build(1, scale=0.1, iterations=1)
        kernel = program.phases_in_iteration(0)[0].kernels[0]
        assert len(kernel.reads()) == 1

    def test_writes_cover_own_shard(self):
        program = make_jacobi().build(4, scale=0.2, iterations=1)
        field = program.buffer("field_a").size
        phase = program.phases_in_iteration(0)[0]
        for kernel in phase.kernels:
            store = kernel.stores()[0]
            start, end = shard_bounds(field, 4, kernel.gpu)
            assert (store.offset, store.end) == (start, end)

    def test_ping_pong_alternates(self):
        program = make_jacobi().build(2, scale=0.1, iterations=1)
        p0, p1 = program.phases_in_iteration(0)
        dst0 = p0.kernels[0].stores()[0].buffer
        dst1 = p1.kernels[0].stores()[0].buffer
        assert {dst0, dst1} == {"field_a", "field_b"}


class TestPatterns:
    def test_jacobi_writes_sequential(self):
        # Figure 14: Jacobi's 0% write-queue hit rate comes from fully
        # streaming writes (SM coalescer captures all locality).
        program = make_jacobi().build(4, scale=0.1, iterations=1)
        kernel = program.phases_in_iteration(0)[0].kernels[0]
        assert kernel.stores()[0].pattern.kind is PatternKind.SEQUENTIAL

    @pytest.mark.parametrize("factory", [make_eqwp, make_diffusion, make_hit])
    def test_other_stencils_have_write_reuse(self, factory):
        program = factory().build(4, scale=0.1, iterations=1)
        kernel = program.phases_in_iteration(0)[0].kernels[0]
        pattern = kernel.stores()[0].pattern
        assert pattern.kind is PatternKind.REUSE
        assert pattern.revisit_prob > 0

    def test_no_atomics_in_stencils(self):
        for factory in (make_jacobi, make_eqwp, make_diffusion, make_hit):
            program = factory().build(4, scale=0.1, iterations=1)
            for kernel in program.iter_kernels():
                assert all(a.op is not MemOp.ATOMIC for a in kernel.accesses)


class TestHelpers:
    def test_scaled_size_rounds_to_page(self):
        assert scaled_size(100_000, 1.0) == 131072
        assert scaled_size(100_000, 0.01) == 65536  # floor of one page

    def test_shard_bounds_cover_everything(self):
        total = 1_000_000
        spans = [shard_bounds(total, 4, i) for i in range(4)]
        assert spans[0][0] == 0
        assert spans[-1][1] == total
        for (a, b), (c, d) in zip(spans, spans[1:]):
            assert b == c

    def test_shard_bounds_line_aligned(self):
        for i in range(4):
            start, end = shard_bounds(1_000_000, 4, i)
            assert start % 128 == 0

    def test_shard_index_validated(self):
        with pytest.raises(Exception):
            shard_bounds(1000, 4, 4)
