"""Tests for the graph workloads (Pagerank, SSSP)."""

import pytest

from repro.trace.records import MemOp, PatternKind
from repro.workloads.graph import make_pagerank, make_sssp


class TestStructure:
    def test_buffers(self):
        program = make_pagerank().build(4, scale=0.1, iterations=1)
        assert {b.name for b in program.buffers} == {"values", "updates", "edges"}

    def test_one_fused_phase_per_iteration(self):
        program = make_pagerank().build(4, scale=0.1, iterations=3)
        for it in range(3):
            assert len(program.phases_in_iteration(it)) == 1

    def test_gather_covers_whole_values(self):
        program = make_pagerank().build(4, scale=0.1, iterations=1)
        kernel = program.phases_in_iteration(0)[0].kernels[0]
        gathers = [
            a for a in kernel.reads()
            if a.buffer == "values" and a.pattern.kind is PatternKind.RANDOM
        ]
        assert len(gathers) == 1
        assert gathers[0].length == program.buffer("values").size

    def test_edges_partitioned_privately(self):
        program = make_pagerank().build(4, scale=0.1, iterations=1)
        phase = program.phases_in_iteration(0)[0]
        spans = []
        for kernel in phase.kernels:
            reads = [a for a in kernel.reads() if a.buffer == "edges"]
            assert len(reads) == 1
            spans.append((reads[0].offset, reads[0].end))
        # Non-overlapping, covering partition.
        spans.sort()
        for (a, b), (c, d) in zip(spans, spans[1:]):
            assert b == c


class TestAtomics:
    @pytest.mark.parametrize("factory", [make_pagerank, make_sssp])
    def test_scatter_is_atomic(self, factory):
        program = factory().build(4, scale=0.1, iterations=1)
        kernel = program.phases_in_iteration(0)[0].kernels[0]
        atomics = [a for a in kernel.accesses if a.op is MemOp.ATOMIC]
        assert atomics
        for access in atomics:
            assert access.buffer == "updates"
            assert access.pattern.bytes_per_txn < 128  # partial lines

    def test_neighbor_structure(self):
        program = make_pagerank().build(4, scale=0.1, iterations=1)
        kernel = program.phases_in_iteration(0)[0].kernel_on(1)
        atomics = [a for a in kernel.accesses if a.op is MemOp.ATOMIC]
        # own + left + right + hub tail
        assert len(atomics) == 4

    def test_single_gpu_scatter_local_only(self):
        program = make_pagerank().build(1, scale=0.1, iterations=1)
        kernel = program.phases_in_iteration(0)[0].kernels[0]
        atomics = [a for a in kernel.accesses if a.op is MemOp.ATOMIC]
        assert len(atomics) == 1

    def test_sssp_sparser_than_pagerank(self):
        pr = make_pagerank()
        sp = make_sssp()
        assert sp.params.own_touch < pr.params.own_touch
        assert sp.remote_mlp < pr.remote_mlp
