"""Tests for the memcpy and infinite-bandwidth executors."""

import pytest

import repro
from tests.conftest import TINY, build


class TestMemcpy:
    def test_broadcast_traffic(self, system4):
        result = repro.simulate(build("jacobi", iterations=2), "memcpy", system4)
        assert result.interconnect_bytes > 0

    def test_broadcast_is_written_extent_times_peers(self, system4):
        program = build("jacobi", iterations=2)
        result = repro.simulate(program, "memcpy", system4)
        expected = sum(
            sum(a.length for a in kernel.stores())
            for phase in program.phases
            if phase.iteration >= 0
            for kernel in phase.kernels
        ) * 3
        assert result.interconnect_bytes == expected

    def test_setup_phase_does_not_broadcast(self, system4):
        program = repro.get_workload("jacobi").build(4, scale=TINY, iterations=0)
        result = repro.simulate(program, "memcpy", system4)
        assert result.interconnect_bytes == 0

    def test_single_gpu_no_traffic(self, system1):
        result = repro.simulate(build("jacobi", num_gpus=1, iterations=2), "memcpy", system1)
        assert result.interconnect_bytes == 0

    def test_transfers_not_overlapped(self, system4):
        # memcpy is strictly slower than infinite BW on communication-heavy
        # apps since transfers serialise after kernels.
        program = build("jacobi", iterations=3)
        memcpy = repro.simulate(program, "memcpy", system4)
        infinite = repro.simulate(program, "infinite", system4)
        assert memcpy.total_time > infinite.total_time


class TestInfinite:
    def test_same_dataflow_as_memcpy(self, system4):
        program = build("jacobi", iterations=2)
        memcpy = repro.simulate(program, "memcpy", system4)
        infinite = repro.simulate(program, "infinite", system4)
        assert infinite.interconnect_bytes == memcpy.interconnect_bytes

    def test_fastest_paradigm(self, system4):
        program = build("diffusion", iterations=3)
        infinite = repro.simulate(program, "infinite", system4)
        for paradigm in ("um", "um_hints", "rdl", "memcpy", "gps"):
            other = repro.simulate(program, paradigm, system4)
            assert infinite.total_time <= other.total_time * (1 + 1e-9), paradigm

    def test_name(self, system4):
        result = repro.simulate(build("jacobi", iterations=2), "infinite", system4)
        assert result.paradigm == "infinite"
