"""Tests for the paradigm registry."""

import pytest

import repro
from repro.errors import ParadigmError
from repro.paradigms.registry import FIGURE8_ORDER, LABELS, PARADIGMS, make_executor
from tests.conftest import build


class TestRegistry:
    def test_figure8_order(self):
        assert FIGURE8_ORDER == ("um", "um_hints", "rdl", "memcpy", "gps", "infinite")

    def test_all_figure8_paradigms_registered(self):
        for name in FIGURE8_ORDER:
            assert name in PARADIGMS

    def test_ablation_variants_registered(self):
        assert "gps_nosub" in PARADIGMS
        assert "gps_nocoalesce" in PARADIGMS

    def test_labels_cover_registry(self):
        for name in PARADIGMS:
            assert name in LABELS

    def test_make_executor(self, system4):
        executor = make_executor("gps", build("jacobi"), system4)
        assert executor.name == "gps"

    def test_unknown_paradigm(self, system4):
        with pytest.raises(ParadigmError):
            make_executor("zzz", build("jacobi"), system4)

    def test_executor_names_match_keys(self, system4):
        program = build("jacobi")
        for name, cls in PARADIGMS.items():
            assert cls.name == name


class TestSimulateEntry:
    def test_every_paradigm_runs(self, system4):
        program = build("jacobi", iterations=2)
        for name in PARADIGMS:
            result = repro.simulate(program, name, system4)
            assert result.total_time > 0
            assert result.num_gpus == 4

    def test_speedup_helper(self, system4):
        wl = repro.get_workload("jacobi")
        speedup, multi, single = repro.speedup_over_single_gpu(
            lambda n: wl.build(n, scale=0.1, iterations=2), "infinite", system4
        )
        assert speedup > 1.0
        assert multi.num_gpus == 4
        assert single.num_gpus == 1
