"""Tests for the fault-based Unified Memory executor."""

import pytest

import repro
from tests.conftest import build


@pytest.fixture
def result(system4):
    return repro.simulate(build("jacobi", iterations=3), "um", system4)


class TestFaults:
    def test_faults_occur(self, result):
        assert result.fault_count > 0

    def test_pages_migrate(self, result):
        assert result.pages_migrated > 0

    def test_populate_faults_tracked(self, result):
        assert result.extras["populate_faults"] > 0

    def test_migration_traffic_recorded(self, result):
        assert result.interconnect_bytes > 0

    def test_migration_bytes_are_page_granular(self, result, system4):
        assert result.interconnect_bytes == result.pages_migrated * system4.page_size


class TestThrash:
    def test_halo_pages_thrash_every_iteration(self, system4):
        few = repro.simulate(build("jacobi", iterations=2), "um", system4)
        many = repro.simulate(build("jacobi", iterations=4), "um", system4)
        # Steady-state thrash: migrations grow with iterations.
        assert many.pages_migrated > few.pages_migrated

    def test_single_gpu_never_migrates(self, system1):
        result = repro.simulate(build("jacobi", num_gpus=1, iterations=2), "um", system1)
        assert result.pages_migrated == 0
        assert result.interconnect_bytes == 0


class TestRelativePerformance:
    def test_um_slower_than_gps(self, system4):
        program = build("jacobi", iterations=3)
        um = repro.simulate(program, "um", system4)
        gps = repro.simulate(program, "gps", system4)
        assert um.total_time > gps.total_time

    def test_um_slower_than_memcpy(self, system4):
        program = build("pagerank", iterations=3)
        um = repro.simulate(program, "um", system4)
        memcpy = repro.simulate(program, "memcpy", system4)
        assert um.total_time > memcpy.total_time
