"""Tests for the remote-demand-loads executor."""

import pytest

import repro
from tests.conftest import build


class TestRemoteReads:
    def test_remote_bytes_tracked(self, system4):
        result = repro.simulate(build("jacobi", iterations=3), "rdl", system4)
        assert result.extras["remote_read_bytes"] > 0
        assert result.interconnect_bytes > 0

    def test_single_gpu_reads_locally(self, system1):
        result = repro.simulate(build("jacobi", num_gpus=1, iterations=2), "rdl", system1)
        assert result.extras["remote_read_bytes"] == 0

    def test_setup_establishes_last_writer(self, system4):
        # With the setup phase writing each shard locally, iteration reads
        # of the own shard are local: remote bytes come from halos only,
        # which are a minority of the total read payload.
        program = build("jacobi", scale=0.5, iterations=2)
        result = repro.simulate(program, "rdl", system4)
        total_read = sum(
            fp.total_bytes()
            for kernel in program.iter_kernels()
            for fp in kernel.reads()
        )
        assert result.extras["remote_read_bytes"] < 0.35 * total_read

    def test_line_granularity_inflates_sparse_gathers(self, system4):
        # Pagerank gathers 32 B values but the wire moves 128 B lines.
        result = repro.simulate(build("pagerank", iterations=2), "rdl", system4)
        assert result.interconnect_bytes > result.extras["remote_read_bytes"]


class TestALSRefetch:
    def test_repeat_sweeps_refetch_over_interconnect(self, system4):
        # Figure 10: ALS under RDL moves more data than memcpy because the
        # gather has no temporal locality and remote loads bypass caches.
        program = build("als", iterations=2)
        rdl = repro.simulate(program, "rdl", system4)
        memcpy = repro.simulate(program, "memcpy", system4)
        assert rdl.interconnect_bytes > memcpy.interconnect_bytes


class TestRelativePerformance:
    def test_gps_beats_rdl(self, system4):
        for workload in ("jacobi", "sssp"):
            program = build(workload, iterations=4)
            rdl = repro.simulate(program, "rdl", system4)
            gps = repro.simulate(program, "gps", system4)
            assert gps.total_time < rdl.total_time

    def test_low_mlp_leaves_latency_exposed(self, system4):
        # Dependent access chains (low remote MLP) expose remote-load
        # latency: the same trace runs slower when MLP drops.
        def time_at_mlp(mlp):
            program = build("sssp", iterations=3)
            program.metadata["remote_mlp"] = mlp
            return repro.simulate(program, "rdl", system4).total_time

        assert time_at_mlp(16) > time_at_mlp(1024)
