"""Tests for shared paradigm-executor machinery."""

import math

import pytest

import repro
from repro.config import INFINITE_LINK
from repro.paradigms.memcpy import MemcpyExecutor
from repro.trace.program import Phase
from tests.conftest import build


@pytest.fixture
def executor(system4):
    return MemcpyExecutor(build("jacobi", iterations=2), system4)


class TestResources:
    def test_distinct_per_gpu(self, executor):
        assert executor.gpu_resource(0) is not executor.gpu_resource(1)
        assert executor.egress(0) is not executor.ingress(0)

    def test_stable_identity(self, executor):
        assert executor.gpu_resource(2) is executor.gpu_resource(2)


class TestTransferDuration:
    def test_matches_link_math(self, executor, system4):
        link = system4.link
        expected = link.latency + 1_000_000 / link.effective_bandwidth
        assert executor.transfer_duration(1_000_000) == pytest.approx(expected)

    def test_zero_bytes_free(self, executor):
        assert executor.transfer_duration(0) == 0.0

    def test_infinite_link_free(self):
        config = repro.default_system(4, INFINITE_LINK)
        executor = MemcpyExecutor(build("jacobi", iterations=1), config)
        assert executor.transfer_duration(10**9) == 0.0


class TestAddTransfer:
    def test_records_traffic_and_occupies_ports(self, executor):
        tasks = executor.add_transfer("t", 0, 1, 1000, deps=[])
        assert len(tasks) == 2
        assert executor.traffic.pair_bytes(0, 1) == 1000

    def test_self_transfer_noop(self, executor):
        assert executor.add_transfer("t", 2, 2, 1000, deps=[]) == []
        assert executor.traffic.total_bytes() == 0

    def test_zero_time_keeps_bytes(self, executor):
        tasks = executor.add_transfer("t", 0, 1, 1000, deps=[], zero_time=True)
        assert all(t.duration == 0.0 for t in tasks)
        assert executor.traffic.pair_bytes(0, 1) == 1000

    def test_record_false_skips_accounting(self, executor):
        executor.add_transfer("t", 0, 1, 1000, deps=[], record=False)
        assert executor.traffic.total_bytes() == 0


class TestSetupDetection:
    def test_setup_phase_flag(self, executor):
        program = executor.program
        assert executor.is_setup_phase(program.phases[0])
        assert not executor.is_setup_phase(program.phases[1])


class TestRoofline:
    def test_positive_duration(self, executor):
        kernel = executor.program.phases[1].kernels[0]
        footprint = executor.analysis.footprint(kernel)
        assert executor.roofline(footprint) > 0

    def test_extra_stall_adds(self, executor):
        kernel = executor.program.phases[1].kernels[0]
        footprint = executor.analysis.footprint(kernel)
        base = executor.roofline(footprint)
        assert executor.roofline(footprint, extra_stall=1e-3) == pytest.approx(
            base + 1e-3
        )

    def test_remote_bw_extends_only_past_roofline(self, executor):
        kernel = executor.program.phases[1].kernels[0]
        footprint = executor.analysis.footprint(kernel)
        base = executor.roofline(footprint)
        small = executor.roofline(footprint, remote_bw_time=1e-9)
        assert small == pytest.approx(base)
        large = executor.roofline(footprint, remote_bw_time=base)
        assert large > base

    def test_mismatched_system_rejected(self, system2):
        with pytest.raises(ValueError):
            MemcpyExecutor(build("jacobi", num_gpus=4), system2)
