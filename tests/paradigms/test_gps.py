"""Tests for the GPS paradigm executor."""

import pytest

import repro
from repro.paradigms.gps import GPSExecutor, GPSNoSubscriptionExecutor
from tests.conftest import TINY, build


@pytest.fixture
def result(system4):
    return repro.simulate(build("jacobi", iterations=3), "gps", system4)


class TestExecution:
    def test_positive_time(self, result):
        assert result.total_time > 0

    def test_paradigm_name(self, result):
        assert result.paradigm == "gps"

    def test_profiling_summary_present(self, result):
        assert result.extras["tracking"]["pages"] > 0

    def test_write_queue_stats_per_gpu(self, result):
        assert len(result.write_queue_stats) == 4
        assert any(s.stores_seen > 0 for s in result.write_queue_stats)

    def test_gps_tlb_high_hit_rate(self, result):
        merged_hits = sum(s.hits for s in result.gps_tlb_stats)
        merged = sum(s.accesses for s in result.gps_tlb_stats)
        assert merged_hits / merged > 0.9


class TestSubscriptionEffects:
    def test_jacobi_steady_pages_few_subscribers(self, result):
        # Figure 9: Jacobi's shared pages have two subscribers (halo
        # pairs); at test scale the halo covers most of a shard, so a few
        # pages reach three, but never all-to-all.
        hist = result.subscriber_histogram
        assert set(hist) <= {2, 3}
        assert hist.get(2, 0) >= hist.get(3, 0)

    def test_unsubscription_happened(self, result):
        assert result.extras["tracking"]["unsubscribed"] > 0
        assert result.extras["tracking"]["demoted"] > 0

    def test_traffic_far_below_memcpy(self, system4):
        # After profiling trims subscriptions, Jacobi publishes only halo
        # pages; the all-to-all profiling iteration is the bulk of what
        # remains (Figure 10 shows GPS << memcpy for Jacobi).
        program = build("jacobi", scale=0.3, iterations=4)
        gps = repro.simulate(program, "gps", system4)
        memcpy = repro.simulate(program, "memcpy", system4)
        assert gps.interconnect_bytes < 0.6 * memcpy.interconnect_bytes

    def test_nosub_moves_more_data(self, system4):
        program = build("jacobi", iterations=3)
        gps = repro.simulate(program, "gps", system4)
        nosub = repro.simulate(program, "gps_nosub", system4)
        assert nosub.interconnect_bytes > gps.interconnect_bytes
        assert nosub.subscriber_histogram == {4: sum(nosub.subscriber_histogram.values())}

    def test_als_subscription_does_not_help(self, system4):
        # Figure 11: ALS keeps all-to-all subscriptions, so GPS with and
        # without subscription coincide (within profiling noise).
        program = build("als", iterations=3)
        gps = repro.simulate(program, "gps", system4)
        nosub = repro.simulate(program, "gps_nosub", system4)
        assert gps.interconnect_bytes == pytest.approx(nosub.interconnect_bytes, rel=0.05)


class TestSetupSemantics:
    def test_setup_phase_publishes_nothing(self, system4):
        # Only iteration phases produce GPS traffic; a 0-iteration program
        # (setup only) must move no bytes.
        program = repro.get_workload("jacobi").build(4, scale=TINY, iterations=0)
        result = repro.simulate(program, "gps", system4)
        assert result.interconnect_bytes == 0


class TestCoalescingAblation:
    def test_no_coalescing_moves_more(self, system4):
        program = build("ct", iterations=2)
        gps = repro.simulate(program, "gps", system4)
        nocoal = repro.simulate(program, "gps_nocoalesce", system4)
        assert nocoal.interconnect_bytes > gps.interconnect_bytes

    def test_variant_names(self, system4):
        program = build("ct", iterations=2)
        assert repro.simulate(program, "gps_nocoalesce", system4).paradigm == "gps_nocoalesce"
        assert repro.simulate(program, "gps_nosub", system4).paradigm == "gps_nosub"


class TestLayoutGuard:
    def test_program_too_large_for_system_rejected(self, system2):
        with pytest.raises(ValueError):
            GPSExecutor(build("jacobi", num_gpus=4), system2)

    def test_nosub_constructor_flag(self, system4):
        executor = GPSNoSubscriptionExecutor(build("jacobi"), system4)
        assert not executor.auto_subscription
