"""Cross-cutting paradigm-semantics tests: overlap, steadiness, ordering."""

import pytest

import repro
from repro.system.timeline import extract_timeline
from tests.conftest import build


def phase_window(entries, phase_name):
    """(start, end) of all entries whose task name carries the phase."""
    selected = [e for e in entries if e.name.startswith(phase_name)]
    return min(e.start for e in selected), max(e.end for e in selected)


class TestMemcpyBulkSynchrony:
    def test_transfers_start_after_all_kernels(self, system4):
        executor = repro.make_executor("memcpy", build("ct", iterations=1), system4)
        executor.run()
        entries = extract_timeline(executor.engine)
        for phase in executor.program.phases:
            if executor.is_setup_phase(phase):
                continue
            kernels = [
                e for e in entries if e.name.startswith(phase.name) and "@gpu" in e.name
            ]
            transfers = [
                e for e in entries if e.name.startswith(phase.name) and "memcpy" in e.name
            ]
            assert transfers, phase.name
            last_kernel_end = max(e.end for e in kernels)
            first_transfer_start = min(e.start for e in transfers)
            assert first_transfer_start >= last_kernel_end - 1e-12


class TestGPSOverlap:
    def test_publication_starts_with_kernels(self, system4):
        executor = repro.make_executor("gps", build("ct", iterations=2), system4)
        executor.run()
        entries = extract_timeline(executor.engine)
        # Pick a steady-state phase with publication traffic.
        steady = executor.program.phases_in_iteration(1)[0]
        kernels = [
            e for e in entries if e.name.startswith(steady.name) and "@gpu" in e.name
        ]
        pubs = [
            e for e in entries if e.name.startswith(steady.name) and "gps-pub" in e.name
        ]
        assert pubs, "CT must publish in steady state"
        first_kernel_start = min(e.start for e in kernels)
        first_pub_start = min(e.start for e in pubs)
        # Publication rides alongside the kernel, not after it.
        assert first_pub_start == pytest.approx(first_kernel_start, abs=1e-9)


class TestSteadyStateStationarity:
    @pytest.mark.parametrize("paradigm", ["gps", "memcpy", "rdl"])
    def test_per_iteration_traffic_constant_after_profiling(self, paradigm, system4):
        def bytes_at(iterations):
            return repro.simulate(
                build("diffusion", iterations=iterations), paradigm, system4
            ).interconnect_bytes

        delta_23 = bytes_at(3) - bytes_at(2)
        delta_34 = bytes_at(4) - bytes_at(3)
        assert delta_23 == delta_34

    def test_per_iteration_time_constant_after_profiling(self, system4):
        result = repro.simulate(build("jacobi", iterations=4), "gps", system4)
        steady = [
            p.duration
            for p in result.phases
            if p.name.startswith(("it2", "it3"))
        ]
        assert len(steady) == 4
        assert max(steady) == pytest.approx(min(steady), rel=1e-6)


class TestUMDeterministicOrdering:
    def test_thrash_counts_are_stable(self, system4):
        a = repro.simulate(build("pagerank", iterations=3), "um", system4)
        b = repro.simulate(build("pagerank", iterations=3), "um", system4)
        assert a.pages_migrated == b.pages_migrated
        assert a.fault_count == b.fault_count

    def test_lowest_gpu_touches_first(self, system4):
        # Residency processing runs in ascending GPU order: after a phase
        # where every GPU touches a page, the highest-id accessor holds it,
        # so the *next* phase's lowest accessor faults it back.
        result = repro.simulate(build("als", iterations=2), "um", system4)
        assert result.pages_migrated > 0
