"""Tests for the hint-based Unified Memory executor."""

import pytest

import repro
from repro.paradigms.um_hints import UMHintsExecutor
from tests.conftest import build


class TestPreferredLocations:
    def test_preferred_is_dominant_writer(self, system4):
        program = build("jacobi", iterations=2)
        executor = UMHintsExecutor(program, system4)
        analysis = executor.analysis
        # Every page of the written shard prefers its writing GPU.
        phase = program.phases_in_iteration(0)[0]
        for kernel in phase.kernels:
            footprint = analysis.footprint(kernel)
            own = [
                executor._preferred_of(v) == kernel.gpu
                for v in footprint.store_pages.tolist()
            ]
            # Shard-interior pages prefer their writer (boundary pages can
            # tie with a neighbouring writer under ping-pong).
            assert sum(own) >= 0.9 * len(own)


class TestHintCosts:
    def test_prefetch_and_faults_recorded(self, system4):
        result = repro.simulate(build("jacobi", iterations=3), "um_hints", system4)
        assert result.extras["prefetched_pages"] > 0
        assert result.extras["writeback_faults"] > 0

    def test_contended_reads_fault(self, system4):
        # Every GPU gathers all of pagerank's values: contended prefetches.
        result = repro.simulate(build("pagerank", iterations=3), "um_hints", system4)
        assert result.extras["contended_faults"] > 0

    def test_traffic_recorded(self, system4):
        result = repro.simulate(build("jacobi", iterations=3), "um_hints", system4)
        assert result.interconnect_bytes > 0


class TestOrdering:
    def test_better_than_blind_um(self, system4):
        program = build("jacobi", iterations=3)
        um = repro.simulate(program, "um", system4)
        hints = repro.simulate(program, "um_hints", system4)
        assert hints.total_time < um.total_time

    def test_worse_than_gps(self, system4):
        for workload in ("jacobi", "ct"):
            program = build(workload, iterations=3)
            hints = repro.simulate(program, "um_hints", system4)
            gps = repro.simulate(program, "gps", system4)
            assert gps.total_time < hints.total_time

    def test_single_gpu_no_remote_costs(self, system1):
        result = repro.simulate(build("jacobi", num_gpus=1, iterations=2), "um_hints", system1)
        assert result.interconnect_bytes == 0
        assert result.fault_count == 0
