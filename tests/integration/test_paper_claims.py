"""Paper-shape assertions at moderate scale.

These run the real harness at reduced (but not tiny) scale and assert the
*qualitative* claims of the paper's evaluation — orderings, crossovers,
zero/nonzero structure — not absolute numbers. The benchmark suite runs the
same drivers at full scale and records paper-vs-measured in EXPERIMENTS.md.
"""

import pytest

from repro.harness import (
    fig8_end_to_end,
    fig9_subscriber_distribution,
    fig10_interconnect_traffic,
    fig11_subscription_benefit,
    fig13_bandwidth_sensitivity,
    fig14_write_queue_hit_rate,
)

SCALE = 0.5
ITER = 6
APPS = ["jacobi", "pagerank", "als", "ct", "eqwp", "hit"]


@pytest.fixture(scope="module")
def fig8():
    return fig8_end_to_end(scale=SCALE, iterations=ITER, workloads=APPS)


class TestFig8Claims:
    def test_um_slowest_and_below_one(self, fig8):
        assert fig8["geomean"]["um"] < 1.0
        assert fig8["geomean"]["um"] == min(fig8["geomean"].values())

    def test_memcpy_near_one(self, fig8):
        assert 0.5 < fig8["geomean"]["memcpy"] < 1.8

    def test_ct_is_memcpys_best_app(self, fig8):
        memcpy = {w: fig8["speedups"][w]["memcpy"] for w in APPS}
        assert max(memcpy, key=memcpy.get) == "ct"

    def test_gps_speedup_band(self, fig8):
        # Paper: 3.0x mean; profiling overhead at reduced iteration count
        # puts the harness a little lower.
        assert fig8["geomean"]["gps"] > 2.0

    def test_gps_captures_most_of_opportunity(self, fig8):
        # Paper: 93.7% of infinite-bandwidth opportunity.
        assert fig8["opportunity_captured"] > 0.7

    def test_gps_beats_next_best_everywhere(self, fig8):
        for workload, row in fig8["speedups"].items():
            best_real = max(v for k, v in row.items() if k not in ("gps", "infinite"))
            assert row["gps"] >= best_real, workload

    def test_gps_vs_next_best_factor(self, fig8):
        # Paper: 2.3x over the next best paradigm on average.
        assert fig8["gps_vs_next_best"] > 1.3


class TestFig9Claims:
    def test_jacobi_mostly_pairs_als_all_to_all(self):
        result = fig9_subscriber_distribution(
            scale=SCALE, iterations=2, workloads=["jacobi", "als"]
        )
        jacobi = result["percent_by_subscribers"]["jacobi"]
        als = result["percent_by_subscribers"]["als"]
        assert jacobi.get(2, 0) > 50.0
        assert als.get(4, 0) > 85.0


class TestFig10Claims:
    def test_gps_saves_bandwidth_for_stencils(self):
        result = fig10_interconnect_traffic(
            scale=SCALE, iterations=ITER, workloads=["jacobi", "eqwp"]
        )
        for workload in ("jacobi", "eqwp"):
            assert result["normalized_to_memcpy"][workload]["gps"] < 0.6

    def test_rdl_exceeds_memcpy_for_als(self):
        result = fig10_interconnect_traffic(
            scale=SCALE, iterations=ITER, workloads=["als"]
        )
        assert result["normalized_to_memcpy"]["als"]["rdl"] > 1.0

    def test_um_traffic_exceeds_memcpy_for_als(self):
        # Figure 10's worst case: UM thrashes ALS's factor matrices back
        # and forth (paper reports 4.4x the memcpy traffic).
        result = fig10_interconnect_traffic(
            scale=SCALE, iterations=ITER, workloads=["als"]
        )
        assert result["normalized_to_memcpy"]["als"]["um"] > 1.0

    def test_um_traffic_below_memcpy_for_jacobi(self):
        # One of the paper's stated exceptions: memcpy needlessly copies
        # whole shards to GPUs that only touch halos, so UM moves less for
        # Jacobi. (The paper also lists CT; in this reproduction CT's
        # read-everything phases thrash under UM — see EXPERIMENTS.md.)
        result = fig10_interconnect_traffic(
            scale=SCALE, iterations=ITER, workloads=["jacobi"]
        )
        assert result["normalized_to_memcpy"]["jacobi"]["um"] < 1.0


class TestFig11Claims:
    def test_subscription_drives_stencil_performance(self):
        result = fig11_subscription_benefit(
            scale=SCALE, iterations=ITER, workloads=["jacobi", "als"]
        )
        jacobi = result["speedups"]["jacobi"]
        als = result["speedups"]["als"]
        # Jacobi: subscription tracking is the primary factor.
        assert jacobi["gps"] > 1.3 * jacobi["gps_nosub"]
        # ALS: all-to-all anyway; subscription cannot help much.
        assert als["gps"] < 1.15 * als["gps_nosub"]


class TestFig13Claims:
    def test_gps_gains_most_from_bandwidth(self):
        result = fig13_bandwidth_sensitivity(
            scale=SCALE, iterations=ITER, workloads=["jacobi", "ct"]
        )
        gps_gain = result["geomean"]["pcie6"]["gps"] / result["geomean"]["pcie3"]["gps"]
        um_gain = result["geomean"]["pcie6"]["um"] / result["geomean"]["pcie3"]["um"]
        assert gps_gain > um_gain

    def test_strong_scaling_hard_even_at_pcie6(self):
        result = fig13_bandwidth_sensitivity(
            scale=SCALE, iterations=ITER, workloads=["jacobi", "ct"]
        )
        for paradigm in ("um", "memcpy"):
            assert result["geomean"]["pcie6"][paradigm] < 2.5


class TestFig14Claims:
    def test_paper_hit_rate_structure(self):
        result = fig14_write_queue_hit_rate(scale=SCALE, queue_sizes=(512,))
        rates = result["hit_rate"]
        # Section 7.4: Jacobi 0% (coalescer captures spatial locality);
        # Pagerank/ALS/SSSP 0% (atomics); the other four are positive.
        for workload in ("jacobi", "pagerank", "sssp", "als"):
            assert rates[workload][512] == 0.0
        for workload in ("ct", "eqwp", "diffusion", "hit"):
            assert rates[workload][512] > 0.1
