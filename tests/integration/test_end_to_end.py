"""Cross-module integration tests: full simulations at moderate scale."""

import pytest

import repro
from tests.conftest import build


class TestAllWorkloadsAllParadigms:
    @pytest.mark.parametrize("workload", repro.workload_names())
    def test_six_paradigms_complete(self, workload, system4):
        program = build(workload, iterations=2)
        times = {}
        for paradigm in repro.FIGURE8_ORDER:
            result = repro.simulate(program, paradigm, system4)
            assert result.total_time > 0, (workload, paradigm)
            times[paradigm] = result.total_time
        # Infinite bandwidth is the floor for every app.
        assert times["infinite"] == min(times.values())

    @pytest.mark.parametrize("workload", repro.workload_names())
    def test_gps_is_best_real_paradigm(self, workload, system4):
        program = build(workload, iterations=3)
        gps = repro.simulate(program, "gps", system4).total_time
        for paradigm in ("um", "um_hints", "rdl", "memcpy"):
            other = repro.simulate(program, paradigm, system4).total_time
            assert gps <= other, (workload, paradigm)


class TestDeterminism:
    def test_identical_runs_identical_results(self, system4):
        program = build("ct", iterations=2)
        a = repro.simulate(program, "gps", system4)
        b = repro.simulate(program, "gps", system4)
        assert a.total_time == b.total_time
        assert a.interconnect_bytes == b.interconnect_bytes

    def test_rebuilt_program_identical(self, system4):
        a = repro.simulate(build("hit", iterations=2), "gps", system4)
        b = repro.simulate(build("hit", iterations=2), "gps", system4)
        assert a.total_time == b.total_time


class TestScaling:
    def test_more_gpus_helps_under_infinite_bw(self):
        wl = repro.get_workload("jacobi")
        times = {}
        for n in (1, 2, 4):
            config = repro.default_system(n)
            program = wl.build(n, scale=0.2, iterations=3)
            times[n] = repro.simulate(program, "infinite", config).total_time
        assert times[4] < times[2] < times[1]

    def test_bigger_scale_takes_longer(self, system4):
        wl = repro.get_workload("diffusion")
        small = repro.simulate(wl.build(4, scale=0.1, iterations=2), "gps", system4)
        large = repro.simulate(wl.build(4, scale=0.3, iterations=2), "gps", system4)
        assert large.total_time > small.total_time

    def test_interconnect_bandwidth_helps_memcpy(self):
        wl = repro.get_workload("jacobi")
        program = wl.build(4, scale=0.2, iterations=3)
        slow = repro.simulate(program, "memcpy", repro.default_system(4, repro.PCIE3))
        fast = repro.simulate(program, "memcpy", repro.default_system(4, repro.PCIE6))
        assert fast.total_time < slow.total_time


class TestPhaseBreakdowns:
    def test_phases_cover_total(self, system4):
        program = build("jacobi", iterations=2)
        result = repro.simulate(program, "gps", system4)
        assert len(result.phases) == len(program.phases)
        assert result.phases[-1].end == pytest.approx(result.total_time)
        for prev, cur in zip(result.phases, result.phases[1:]):
            assert cur.end >= prev.end

    def test_summary_fields(self, system4):
        result = repro.simulate(build("jacobi", iterations=2), "um", system4)
        summary = result.summary()
        assert summary["paradigm"] == "um"
        assert summary["fault_count"] == result.fault_count
        assert summary["total_time_s"] > 0
