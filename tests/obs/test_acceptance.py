"""End-to-end acceptance tests for the observability layer.

Mirrors the PR's acceptance criteria: a 4-GPU GPS-vs-memcpy run exports a
Chrome-trace whose per-resource spans reproduce the ASCII Gantt timeline
exactly, and the hardware-counter snapshot (coalescer, GPS-TLB, page table,
link egress, DRAM) survives the disk-cache round-trip.
"""

import json

import pytest

import repro
from repro.obs import chrome_trace
from repro.system.timeline import extract_timeline
from tests.conftest import build


@pytest.fixture(scope="module", params=["gps", "memcpy"])
def traced_run(request):
    """One traced 4-GPU run per paradigm: (paradigm, executor, result)."""
    config = repro.default_system(4)
    executor = repro.make_executor(
        request.param, build("jacobi", num_gpus=4, iterations=2), config
    )
    executor.collector.enable()
    result = executor.run()
    return request.param, executor, result


class TestTraceMatchesTimeline:
    def test_same_resources_starts_and_ends(self, traced_run):
        _, executor, _ = traced_run
        entries = extract_timeline(executor.engine)
        tracks = {}
        payload = chrome_trace(executor.collector)
        tid_names = {
            e["tid"]: e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        for event in payload["traceEvents"]:
            if event["ph"] != "X" or event["dur"] <= 0:
                continue
            tracks.setdefault(tid_names[event["tid"]], []).append(
                (event["name"], event["ts"] / 1e6, (event["ts"] + event["dur"]) / 1e6)
            )
        from_timeline = {}
        for entry in entries:
            from_timeline.setdefault(entry.resource, []).append(
                (entry.name, entry.start, entry.end)
            )
        assert set(tracks) == set(from_timeline)
        for resource, expected in from_timeline.items():
            got = sorted(tracks[resource], key=lambda t: (t[1], t[2], t[0]))
            want = sorted(expected, key=lambda t: (t[1], t[2], t[0]))
            assert len(got) == len(want)
            for (gn, gs, ge), (wn, ws, we) in zip(got, want):
                assert gn == wn
                assert gs == pytest.approx(ws, abs=1e-12)
                assert ge == pytest.approx(we, abs=1e-12)

    def test_gps_trace_has_overlap_memcpy_does_not(self, traced_run):
        paradigm, executor, _ = traced_run
        spans = executor.collector.spans
        kernel_windows = [
            (s.start, s.end) for s in spans if s.category == "kernel" and s.duration > 0
        ]
        transfer_spans = [s for s in spans if s.category == "transfer" and s.duration > 0]
        overlapping = sum(
            1
            for t in transfer_spans
            if any(t.start < k_end and k_start < t.end for k_start, k_end in kernel_windows)
        )
        if paradigm == "gps":
            assert overlapping > 0, "GPS publishes should overlap kernels"
        else:
            assert overlapping == 0, "memcpy broadcasts must trail the kernels"


class TestHardwareCounters:
    REQUIRED_GPS = [
        "gpu0.sm_coalescer.txns_in",
        "gpu0.gps_tlb.misses",
        "gpu0.gps_tlb.hits",
        "gps_page_table.lookups",
        "gps_page_table.installs",
        "link.egress0.bytes",
        "link.transfers",
        "gpu0.dram.read_bytes",
        "gpu0.dram.write_bytes",
        "gpu0.write_queue.stores_seen",
    ]

    def test_gps_exposes_required_counters(self, traced_run):
        paradigm, _, result = traced_run
        if paradigm != "gps":
            pytest.skip("GPS-only counter set")
        missing = [name for name in self.REQUIRED_GPS if name not in result.counters]
        assert not missing, f"missing counters: {missing}"
        hardware_components = {name.split(".")[0] for name in result.counters}
        assert len(result.counters) >= 8
        assert {"gps_page_table", "link"} <= hardware_components

    def test_rollups_match_per_gpu_sums(self, traced_run):
        paradigm, _, result = traced_run
        if paradigm != "gps":
            pytest.skip("GPS-only counter set")
        counters = result.counters
        total = sum(
            counters[f"gpu{g}.gps_tlb.misses"] for g in range(result.num_gpus)
        )
        assert counters["gps_tlb.misses"] == total

    def test_counters_survive_result_round_trip(self, traced_run):
        _, _, result = traced_run
        restored = repro.SimulationResult.from_dict(
            json.loads(json.dumps(result.to_dict()))
        )
        assert restored.counters == result.counters

    def test_counters_survive_disk_cache(self, tmp_path, monkeypatch):
        from repro.harness.runner import clear_run_cache, run_simulation

        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_run_cache()
        kwargs = dict(scale=0.1, iterations=2)
        warm = run_simulation("jacobi", "gps", 4, **kwargs)
        assert warm.counters
        clear_run_cache()  # drop the memo so the next lookup hits the disk
        cold = run_simulation("jacobi", "gps", 4, **kwargs)
        assert cold.counters == warm.counters
        clear_run_cache()

    def test_old_cache_payload_without_counters_loads(self):
        payload = repro.simulate(
            build("jacobi", num_gpus=2, iterations=2), "memcpy", repro.default_system(2)
        ).to_dict()
        del payload["counters"]
        restored = repro.SimulationResult.from_dict(payload)
        assert restored.counters == {}
