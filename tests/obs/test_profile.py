"""Tests for the self-time profiler."""

from repro.obs import Span, format_profile, self_time_profile
from repro.obs.profile import normalise_span_name


class TestNormalise:
    def test_gpu_suffix_folds(self):
        assert normalise_span_name("it3/jacobi@gpu2") == "it3/jacobi"

    def test_port_suffix_folds(self):
        assert normalise_span_name("it3/gps-pub:eg0->1") == "it3/gps-pub"
        assert normalise_span_name("it3/demand:in2->0") == "it3/demand"

    def test_plain_names_pass_through(self):
        assert normalise_span_name("barrier:it3") == "barrier:it3"


class TestProfile:
    def _spans(self):
        return [
            Span("it0/k@gpu0", "kernel", "gpu0", 0.0, 2.0),
            Span("it0/k@gpu1", "kernel", "gpu1", 0.0, 2.0),
            Span("it0/pub:eg0->1", "transfer", "egress0", 0.0, 1.0),
        ]

    def test_instances_aggregate(self):
        rows = self_time_profile(self._spans())
        assert rows[0].name == "it0/k"
        assert rows[0].count == 2
        assert rows[0].total_time == 4.0
        assert rows[0].share == 0.8

    def test_top_truncates(self):
        assert len(self_time_profile(self._spans(), top=1)) == 1

    def test_deterministic_tie_break(self):
        spans = [
            Span("b", "task", "r", 0.0, 1.0),
            Span("a", "task", "r", 0.0, 1.0),
        ]
        assert [r.name for r in self_time_profile(spans)] == ["a", "b"]

    def test_format_includes_rows(self):
        text = format_profile(self_time_profile(self._spans()), title="t")
        assert text.startswith("t")
        assert "it0/k [kernel]" in text

    def test_format_empty(self):
        assert "(no spans recorded)" in format_profile([])
