"""Prometheus text exposition: rendering, grammar validator, golden file."""

from pathlib import Path

from repro.obs import CounterRegistry, prometheus_text, promtext_problems
from repro.obs.promtext import sanitize_metric_name
from repro.service import ServiceMetrics

GOLDEN = Path(__file__).parent / "baselines" / "registry.golden.prom"


def build_registry() -> CounterRegistry:
    """A fixed registry covering every family kind the renderer handles."""
    registry = CounterRegistry()
    scope = registry.scope("svc")
    scope.counter("jobs.completed")
    scope.add("jobs.completed", 3)
    scope.counter("jobs.failed")
    scope.gauge("queue.depth", 2)
    histogram = scope.histogram("latency.run_s", (0.1, 1.0, 10.0))
    for value in (0.05, 0.5, 5.0, 50.0):
        histogram.observe(value)
    return registry


class TestRendering:
    def test_histograms_render_full_families(self):
        text = prometheus_text(build_registry())
        assert "# TYPE svc_latency_run_s histogram" in text
        assert 'svc_latency_run_s_bucket{le="0.1"} 1' in text
        assert 'svc_latency_run_s_bucket{le="1"} 2' in text
        assert 'svc_latency_run_s_bucket{le="+Inf"} 4' in text
        assert "svc_latency_run_s_sum 55.55" in text
        assert "svc_latency_run_s_count 4" in text

    def test_counters_and_gauges_typed(self):
        text = prometheus_text(build_registry())
        assert "# TYPE svc_jobs_completed counter" in text
        assert "svc_jobs_completed 3" in text
        assert "# TYPE svc_jobs_failed counter\nsvc_jobs_failed 0" in text
        assert "# TYPE svc_queue_depth gauge" in text

    def test_output_is_sorted_and_newline_terminated(self):
        text = prometheus_text(build_registry())
        assert text.endswith("\n")
        types = [line.split(" ")[2] for line in text.splitlines()
                 if line.startswith("# TYPE ")]
        assert types == sorted(types)

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("service.jobs.failed") == "service_jobs_failed"
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("a-b c") == "a_b_c"

    def test_matches_golden_file(self):
        text = prometheus_text(build_registry())
        assert text == GOLDEN.read_text(), (
            "promtext rendering drifted; if intentional, regenerate with\n"
            "  PYTHONPATH=src:tests python -c \"from obs.test_promtext import *; "
            "GOLDEN.write_text(prometheus_text(build_registry()))\""
        )


class TestGrammar:
    def test_clean_payload_has_no_problems(self):
        assert promtext_problems(prometheus_text(build_registry())) == []

    def test_missing_type_line(self):
        problems = promtext_problems("orphan_metric 1\n")
        assert any("no TYPE line" in p for p in problems)

    def test_missing_inf_bucket(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 1\nh_sum 1\nh_count 1\n')
        assert any("+Inf" in p for p in promtext_problems(text))

    def test_non_cumulative_buckets(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="1"} 5\nh_bucket{le="+Inf"} 3\n'
                "h_sum 1\nh_count 3\n")
        assert any("cumulative" in p for p in promtext_problems(text))

    def test_inf_bucket_must_equal_count(self):
        text = ("# TYPE h histogram\n"
                'h_bucket{le="+Inf"} 3\nh_sum 1\nh_count 4\n')
        assert any("+Inf bucket != _count" in p for p in promtext_problems(text))

    def test_missing_trailing_newline(self):
        assert any("newline" in p for p in promtext_problems("# TYPE a gauge\na 1"))

    def test_unparseable_sample(self):
        assert any("unparseable" in p for p in promtext_problems("!!!\n"))


class TestServiceScrape:
    def test_service_metrics_scrape_is_clean(self):
        metrics = ServiceMetrics()
        metrics.job_submitted()
        metrics.job_completed(wait_s=0.01, run_s=0.2)
        metrics.job_failed()
        text = metrics.prometheus()
        assert promtext_problems(text) == []
        assert "service_jobs_failed 1" in text
        assert 'service_latency_wait_s_bucket{le="+Inf"} 1' in text
        assert "service_latency_run_s_sum 0.2" in text
        assert "service_latency_run_s_count 1" in text
