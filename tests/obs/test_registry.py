"""Tests for the hierarchical counter/gauge registry."""

from repro.obs import CounterRegistry


class TestCounters:
    def test_add_and_snapshot(self):
        reg = CounterRegistry()
        reg.add("link.bytes", 100)
        reg.add("link.bytes", 28)
        reg.add("link.transfers")
        assert reg.as_dict() == {"link.bytes": 128, "link.transfers": 1}

    def test_counter_object_is_shared(self):
        reg = CounterRegistry()
        counter = reg.counter("dram.read_bytes")
        counter.add(64)
        reg.add("dram.read_bytes", 64)
        assert reg.as_dict()["dram.read_bytes"] == 128

    def test_gauge_last_write_wins(self):
        reg = CounterRegistry()
        reg.gauge("queue.occupancy", 3)
        reg.gauge("queue.occupancy", 7)
        assert reg.as_dict()["queue.occupancy"] == 7

    def test_snapshot_is_sorted(self):
        reg = CounterRegistry()
        reg.add("z.last")
        reg.add("a.first")
        assert list(reg.as_dict()) == ["a.first", "z.last"]


class TestProviders:
    def test_provider_resolved_at_snapshot_time(self):
        reg = CounterRegistry()
        state = {"misses": 0}
        reg.provide("gps_tlb", lambda: dict(state))
        state["misses"] = 42
        assert reg.as_dict()["gps_tlb.misses"] == 42

    def test_scoped_provider_prefixes(self):
        reg = CounterRegistry()
        reg.scope("gpu3").provide("write_queue", lambda: {"inserts": 5})
        assert reg.as_dict()["gpu3.write_queue.inserts"] == 5


class TestScopesAndRollup:
    def test_scope_prefixes_names(self):
        reg = CounterRegistry()
        reg.scope("gpu0").add("gps_tlb.misses", 3)
        reg.scope("gpu0").scope("dram").add("read_bytes", 256)
        snapshot = reg.as_dict()
        assert snapshot["gpu0.gps_tlb.misses"] == 3
        assert snapshot["gpu0.dram.read_bytes"] == 256

    def test_gpu_scopes_roll_up_to_aggregates(self):
        reg = CounterRegistry()
        reg.scope("gpu0").add("gps_tlb.misses", 3)
        reg.scope("gpu1").add("gps_tlb.misses", 4)
        snapshot = reg.as_dict()
        assert snapshot["gps_tlb.misses"] == 7
        assert snapshot["gpu0.gps_tlb.misses"] == 3

    def test_explicit_aggregate_not_overwritten(self):
        reg = CounterRegistry()
        reg.add("link.bytes", 1000)
        reg.scope("gpu0").add("link.bytes", 1)
        assert reg.as_dict()["link.bytes"] == 1000

    def test_non_gpu_scopes_do_not_roll_up(self):
        reg = CounterRegistry()
        reg.scope("link").add("egress0.bytes", 5)
        snapshot = reg.as_dict()
        assert "egress0.bytes" not in snapshot
        assert snapshot["link.egress0.bytes"] == 5
