"""Tests for the trace collector and the engine's span emission."""

from repro.obs import Span, TraceCollector, tracing_enabled
from repro.sim.engine import Engine


class TestTracingFlag:
    def test_default_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_TRACE", raising=False)
        assert tracing_enabled()
        assert TraceCollector().enabled

    def test_zero_means_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_TRACE", "0")
        assert tracing_enabled()

    def test_disabled_collector_drops_records(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_TRACE", "1")
        collector = TraceCollector()
        collector.record(Span("k", "kernel", "gpu0", 0.0, 1.0))
        collector.emit("k2", "kernel", "gpu0", 1.0, 2.0)
        assert len(collector) == 0

    def test_enable_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_TRACE", "1")
        collector = TraceCollector()
        collector.enable()
        collector.emit("k", "kernel", "gpu0", 0.0, 1.0)
        assert len(collector) == 1


class TestEngineEmission:
    def test_spans_match_schedule(self):
        engine = Engine()
        gpu = engine.resource("gpu0")
        k1 = engine.task("k1", 2.0, gpu, category="kernel", attrs={"gpu": 0})
        engine.task("k2", 1.0, gpu, deps=[k1], category="kernel")
        engine.barrier("done", deps=engine.tasks())
        engine.run()
        spans = engine.collector.spans
        # The barrier has no resource, so only the two kernels materialise.
        assert [(s.name, s.start, s.end) for s in spans] == [
            ("k1", 0.0, 2.0),
            ("k2", 2.0, 3.0),
        ]
        assert spans[0].category == "kernel"
        assert spans[0].attrs == {"gpu": 0}
        assert spans[0].track == "gpu0"

    def test_no_trace_skips_materialisation(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_TRACE", "1")
        engine = Engine()
        engine.task("k", 1.0, engine.resource("gpu0"))
        engine.run()
        assert len(engine.collector) == 0

    def test_by_track_sorted(self):
        collector = TraceCollector(enabled=True)
        collector.emit("b", "task", "gpu1", 5.0, 6.0)
        collector.emit("a", "task", "gpu0", 0.0, 1.0)
        collector.emit("c", "task", "gpu1", 1.0, 2.0)
        tracks = collector.by_track()
        assert list(tracks) == ["gpu0", "gpu1"]
        assert [s.name for s in tracks["gpu1"]] == ["c", "b"]

    def test_span_round_trip(self):
        span = Span("k", "kernel", "gpu0", 0.5, 1.5, {"bytes": 128})
        assert Span.from_dict(span.to_dict()) == span
        assert span.duration == 1.0
