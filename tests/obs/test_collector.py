"""Tests for the trace collector and the engine's span emission."""

from repro.obs import Span, TraceCollector, tracing_enabled
from repro.sim.engine import Engine


class TestTracingFlag:
    def test_default_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_TRACE", raising=False)
        assert tracing_enabled()
        assert TraceCollector().enabled

    def test_zero_means_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_TRACE", "0")
        assert tracing_enabled()

    def test_disabled_collector_drops_records(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_TRACE", "1")
        collector = TraceCollector()
        collector.record(Span("k", "kernel", "gpu0", 0.0, 1.0))
        collector.emit("k2", "kernel", "gpu0", 1.0, 2.0)
        assert len(collector) == 0

    def test_enable_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_TRACE", "1")
        collector = TraceCollector()
        collector.enable()
        collector.emit("k", "kernel", "gpu0", 0.0, 1.0)
        assert len(collector) == 1


class TestRingBuffer:
    def _span(self, i: int) -> Span:
        return Span(f"k{i}", "kernel", "gpu0", float(i), float(i) + 1)

    def test_capacity_evicts_oldest(self):
        collector = TraceCollector(enabled=True, capacity=3)
        for i in range(5):
            collector.record(self._span(i))
        assert [s.name for s in collector.spans] == ["k2", "k3", "k4"]
        assert collector.evicted == 2

    def test_env_knob_sets_capacity(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_MAX_SPANS", "2")
        collector = TraceCollector(enabled=True)
        assert collector.capacity == 2
        for i in range(3):
            collector.emit(f"k{i}", "kernel", "gpu0", float(i), float(i) + 1)
        assert len(collector) == 2
        assert collector.evicted == 1

    def test_bad_env_value_falls_back_to_default(self, monkeypatch):
        from repro.obs.collector import DEFAULT_MAX_SPANS

        monkeypatch.setenv("REPRO_TRACE_MAX_SPANS", "not-a-number")
        assert TraceCollector(enabled=True).capacity == DEFAULT_MAX_SPANS
        monkeypatch.setenv("REPRO_TRACE_MAX_SPANS", "0")
        assert TraceCollector(enabled=True).capacity == 1

    def test_clear_resets_eviction_count(self):
        collector = TraceCollector(enabled=True, capacity=1)
        collector.record(self._span(0))
        collector.record(self._span(1))
        assert collector.evicted == 1
        collector.clear()
        assert collector.evicted == 0
        assert len(collector) == 0


class TestEngineEmission:
    def test_spans_match_schedule(self):
        engine = Engine()
        gpu = engine.resource("gpu0")
        k1 = engine.task("k1", 2.0, gpu, category="kernel", attrs={"gpu": 0})
        engine.task("k2", 1.0, gpu, deps=[k1], category="kernel")
        engine.barrier("done", deps=engine.tasks())
        engine.run()
        spans = engine.collector.spans
        # The barrier has no resource, so only the two kernels materialise.
        assert [(s.name, s.start, s.end) for s in spans] == [
            ("k1", 0.0, 2.0),
            ("k2", 2.0, 3.0),
        ]
        assert spans[0].category == "kernel"
        assert spans[0].attrs == {"gpu": 0}
        assert spans[0].track == "gpu0"

    def test_no_trace_skips_materialisation(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_TRACE", "1")
        engine = Engine()
        engine.task("k", 1.0, engine.resource("gpu0"))
        engine.run()
        assert len(engine.collector) == 0

    def test_by_track_sorted(self):
        collector = TraceCollector(enabled=True)
        collector.emit("b", "task", "gpu1", 5.0, 6.0)
        collector.emit("a", "task", "gpu0", 0.0, 1.0)
        collector.emit("c", "task", "gpu1", 1.0, 2.0)
        tracks = collector.by_track()
        assert list(tracks) == ["gpu0", "gpu1"]
        assert [s.name for s in tracks["gpu1"]] == ["c", "b"]

    def test_span_round_trip(self):
        span = Span("k", "kernel", "gpu0", 0.5, 1.5, {"bytes": 128})
        assert Span.from_dict(span.to_dict()) == span
        assert span.duration == 1.0
