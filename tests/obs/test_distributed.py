"""repro.obs.distributed: contexts, span store, re-parenting, export."""

import pytest

from repro.obs import validate_chrome_trace
from repro.obs.distributed import (
    DistSpan,
    SequentialIds,
    TraceContext,
    TraceStore,
    derived_span_id,
    distributed_chrome_trace,
    dump_chrome_trace,
    mint_span_id,
    mint_trace_id,
    parse_traceparent,
    set_id_generator,
    synthesize_roots,
)


@pytest.fixture
def sequential_ids():
    set_id_generator(SequentialIds())
    yield
    set_id_generator(None)


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def tick(self, dt: float = 1.0) -> float:
        self.t += dt
        return self.t


class TestTraceContext:
    def test_mint_and_roundtrip(self):
        context = TraceContext.mint()
        assert len(context.trace_id) == 32
        assert len(context.span_id) == 16
        assert parse_traceparent(context.to_traceparent()) == context

    def test_child_keeps_trace(self):
        context = TraceContext.mint()
        child = context.child()
        assert child.trace_id == context.trace_id
        assert child.span_id != context.span_id

    def test_unsampled_flag_roundtrips(self):
        header = "00-" + "ab" * 16 + "-" + "cd" * 8 + "-00"
        context = parse_traceparent(header)
        assert context is not None and not context.sampled
        assert context.to_traceparent() == header

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-" + "ab" * 16 + "-" + "cd" * 8,  # missing flags
            "00-" + "xy" * 16 + "-" + "cd" * 8 + "-01",  # non-hex
            "00-" + "0" * 32 + "-" + "cd" * 8 + "-01",  # zero trace id
            "00-" + "ab" * 16 + "-" + "0" * 16 + "-01",  # zero span id
        ],
    )
    def test_rejects_malformed(self, header):
        assert parse_traceparent(header) is None

    def test_parse_is_case_insensitive(self):
        header = "00-" + "AB" * 16 + "-" + "CD" * 8 + "-01"
        context = parse_traceparent(header)
        assert context is not None and context.trace_id == "ab" * 16


class TestIdGenerators:
    def test_sequential_is_deterministic(self):
        a, b = SequentialIds(), SequentialIds()
        assert [a.trace_id(), a.span_id()] == [b.trace_id(), b.span_id()]
        assert a.trace_id() != a.trace_id()

    def test_install_and_restore(self, sequential_ids):
        assert mint_trace_id() == f"{1:032x}"
        assert mint_span_id() == f"{2:016x}"
        set_id_generator(None)
        assert mint_trace_id() != f"{3:032x}"

    def test_derived_span_id_is_pure(self):
        assert derived_span_id("abc", 0) == derived_span_id("abc", 0)
        assert derived_span_id("abc", 0) != derived_span_id("abc", 1)
        assert derived_span_id("abc", 0) != derived_span_id("abd", 0)
        assert len(derived_span_id("abc", 7)) == 16


class TestTraceStore:
    def test_start_end_and_point_spans(self, sequential_ids):
        clock = FakeClock()
        store = TraceStore(clock=clock)
        span = store.start_span("t1", "request", kind="server", track="server")
        clock.tick(2.0)
        store.end_span(span)
        assert span.duration == 2.0
        store.end_span(span)  # idempotent
        assert span.end == 1002.0
        store.end_span(None)  # no-op
        point = store.add_span("t1", "cache.hit")
        assert point.duration == 0.0
        assert [s.name for s in store.get("t1")] == ["request", "cache.hit"]
        assert store.get("missing") == []

    def test_eviction_oldest_first(self):
        store = TraceStore(max_traces=2)
        for trace in ("t1", "t2", "t3"):
            store.start_span(trace, "request")
        assert store.get("t1") == []
        assert len(store.get("t3")) == 1
        assert store.evicted_traces == 1
        assert len(store) == 2
        assert store.span_count == 2

    def test_subtree_descends_one_root(self, sequential_ids):
        store = TraceStore(clock=FakeClock())
        root = store.start_span("t1", "request")
        child = store.start_span("t1", "execute", root.span_id)
        store.start_span("t1", "run", child.span_id)
        store.start_span("t1", "other")  # separate root, excluded
        names = [s.name for s in store.subtree("t1", root.span_id)]
        assert names == ["request", "execute", "run"]
        assert store.subtree("t1", "nope") == []

    def test_closure_follows_links_one_hop(self, sequential_ids):
        store = TraceStore(clock=FakeClock())
        execute = store.start_span("primary", "execute")
        store.start_span("primary", "run", execute.span_id)
        store.start_span("dup", "request")
        store.start_span(
            "dup",
            "coalesced",
            links=[{"trace_id": "primary", "span_id": execute.span_id}],
        )
        names = sorted(s.name for s in store.closure("dup"))
        assert names == ["coalesced", "execute", "request", "run"]
        # The primary's own closure never pulls the duplicate's spans.
        assert sorted(s.name for s in store.closure("primary")) == ["execute", "run"]

    def test_attach_engine_tree(self, sequential_ids):
        store = TraceStore(clock=FakeClock())
        run = store.start_span("t1", "run")
        payloads = [
            {"name": "k1", "category": "kernel", "track": "gpu0",
             "start": 0.0, "end": 2.0, "attrs": {"gpu": 0}},
            {"name": "x1", "category": "transfer", "track": "egress0",
             "start": 2.0, "end": 3.5, "attrs": {}},
        ]
        count = store.attach_engine_tree("t1", run.span_id, payloads, anchor=100.0)
        assert count == 2
        engine = [s for s in store.get("t1") if s.kind == "engine"]
        assert [s.span_id for s in engine] == [
            derived_span_id(run.span_id, 0),
            derived_span_id(run.span_id, 1),
        ]
        assert engine[0].parent_id == run.span_id
        assert (engine[0].start, engine[0].end) == (100.0, 102.0)
        assert engine[0].attrs == {
            "gpu": 0, "sim_start": 0.0, "sim_end": 2.0, "category": "kernel",
        }
        assert engine[1].track == "egress0"


class TestSynthesizeRoots:
    def test_orphan_parent_becomes_client_submit(self):
        spans = [
            DistSpan("request", "t1", "s2", "s1", 10.0, 13.0, track="server"),
            DistSpan("queue.wait", "t1", "s3", "s2", 10.5, 11.0),
        ]
        out = synthesize_roots(spans)
        roots = [s for s in out if s.name == "client.submit"]
        assert len(roots) == 1
        root = roots[0]
        assert (root.span_id, root.parent_id) == ("s1", None)
        assert (root.start, root.end) == (10.0, 13.0)
        assert root.attrs == {"synthesized": True}

    def test_no_orphans_no_synthesis(self):
        spans = [DistSpan("request", "t1", "s1", None, 0.0, 1.0)]
        assert synthesize_roots(spans) == spans


class TestExport:
    def _store(self):
        clock = FakeClock()
        store = TraceStore(clock=clock)
        request = store.start_span(
            "t1", "request", "client-root", kind="server", track="server"
        )
        clock.tick(0.5)
        queue = store.start_span("t1", "queue.wait", request.span_id)
        clock.tick(1.0)
        store.end_span(queue)
        execute = store.start_span("t1", "execute", request.span_id)
        run = store.start_span("t1", "run", execute.span_id, track="attempt")
        store.attach_engine_tree(
            "t1", run.span_id,
            [{"name": "k", "category": "kernel", "track": "gpu0",
              "start": 0.0, "end": 0.25, "attrs": {}}],
            anchor=run.start,
        )
        clock.tick(1.0)
        store.end_span(run)
        store.end_span(execute)
        store.end_span(request)
        return store

    def test_export_is_schema_valid(self, sequential_ids):
        store = self._store()
        payload = distributed_chrome_trace("t1", store.closure("t1"))
        assert validate_chrome_trace(payload) == []

    def test_lanes_split_service_and_engine(self, sequential_ids):
        store = self._store()
        payload = distributed_chrome_trace("t1", store.closure("t1"))
        slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in slices}
        assert by_name["k"]["pid"] == 1
        assert by_name["request"]["pid"] == 0
        assert by_name["client.submit"]["args"]["span_id"] == "client-root"
        # Timestamps are rebased: the earliest slice starts at zero.
        assert min(e["ts"] for e in slices) == 0.0

    def test_dump_is_byte_stable(self, sequential_ids):
        store = self._store()
        first = dump_chrome_trace(distributed_chrome_trace("t1", store.closure("t1")))
        second = dump_chrome_trace(distributed_chrome_trace("t1", store.closure("t1")))
        assert first == second
        assert first.endswith("\n")

    def test_empty_trace_exports_empty(self):
        payload = distributed_chrome_trace("t1", [])
        assert payload["traceEvents"] == []
        assert payload["otherData"]["trace_id"] == "t1"
