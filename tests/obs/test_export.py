"""Tests for the Chrome-trace/Perfetto exporter, validator, and metrics views."""

import json

import pytest

import repro
from repro.obs import (
    chrome_trace,
    metrics_csv,
    metrics_json,
    run_manifest,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.span import Span
from tests.conftest import build


@pytest.fixture(scope="module")
def stencil_run():
    """A traced 2-GPU stencil (Jacobi) run: (executor, result, config)."""
    config = repro.default_system(2)
    executor = repro.make_executor("gps", build("jacobi", num_gpus=2, iterations=2), config)
    executor.collector.enable()
    result = executor.run()
    return executor, result, config


class TestChromeTrace:
    def test_structure(self, stencil_run):
        executor, _, _ = stencil_run
        payload = chrome_trace(executor.collector)
        assert isinstance(payload["traceEvents"], list)
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "M"}
        assert {"process_name", "thread_name", "thread_sort_index"} <= names

    def test_gpu_tracks_sort_before_ports(self, stencil_run):
        executor, _, _ = stencil_run
        payload = chrome_trace(executor.collector)
        thread_names = [
            e["args"]["name"]
            for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert thread_names[:2] == ["gpu0", "gpu1"]
        assert all(t.startswith(("egress", "ingress")) for t in thread_names[2:])

    def test_manifest_lands_in_other_data(self, stencil_run):
        executor, result, config = stencil_run
        manifest = run_manifest(result, config, wall_clock=1.5)
        payload = chrome_trace(executor.collector, manifest)
        other = payload["otherData"]
        assert other["program"] == result.program_name
        assert other["paradigm"] == "gps"
        assert other["num_gpus"] == 2
        assert other["wall_clock_s"] == 1.5
        assert len(other["config_fingerprint"]) == 64
        assert other["model"].startswith("repro-model/")


class TestGoldenFile:
    """Satellite: a written 2-GPU stencil trace is loadable and well-formed."""

    def test_written_trace_loads_and_validates(self, stencil_run, tmp_path):
        executor, result, config = stencil_run
        path = tmp_path / "stencil.trace.json"
        write_chrome_trace(path, executor.collector, run_manifest(result, config))
        payload = json.load(open(path))
        assert validate_chrome_trace(payload) == []

    def test_spans_monotonic_and_non_overlapping_per_track(self, stencil_run, tmp_path):
        executor, result, config = stencil_run
        path = tmp_path / "stencil.trace.json"
        write_chrome_trace(path, executor.collector, run_manifest(result, config))
        payload = json.load(open(path))
        by_tid: dict = {}
        for event in payload["traceEvents"]:
            if event["ph"] == "X":
                by_tid.setdefault(event["tid"], []).append(event)
        assert by_tid, "trace holds no complete events"
        for events in by_tid.values():
            cursor = 0.0
            for event in events:
                assert event["ts"] >= cursor - 1e-6, "span overlaps its predecessor"
                cursor = event["ts"] + event["dur"]

    def test_deterministic_across_runs(self, stencil_run, tmp_path):
        _, _, config = stencil_run
        paths = []
        for i in range(2):
            executor = repro.make_executor(
                "gps", build("jacobi", num_gpus=2, iterations=2), config
            )
            executor.collector.enable()
            executor.run()
            path = tmp_path / f"trace{i}.json"
            write_chrome_trace(path, executor.collector)
            paths.append(path.read_text())
        assert paths[0] == paths[1]


class TestValidator:
    def test_rejects_non_object(self):
        assert validate_chrome_trace([]) == ["top-level payload is not a JSON object"]

    def test_rejects_missing_events(self):
        assert validate_chrome_trace({}) == ["traceEvents is missing or not a list"]

    def test_rejects_bad_fields(self):
        payload = {"traceEvents": [{"ph": "X", "name": 7, "pid": 0, "tid": 0,
                                    "cat": "k", "ts": -1.0, "dur": 1.0}]}
        problems = validate_chrome_trace(payload)
        assert any("name is not a string" in p for p in problems)
        assert any("ts is not a non-negative number" in p for p in problems)

    def test_rejects_overlap(self):
        events = [
            {"ph": "X", "name": "a", "cat": "k", "pid": 0, "tid": 0, "ts": 0.0, "dur": 5.0},
            {"ph": "X", "name": "b", "cat": "k", "pid": 0, "tid": 0, "ts": 2.0, "dur": 1.0},
        ]
        problems = validate_chrome_trace({"traceEvents": events})
        assert any("overlaps" in p for p in problems)

    def test_accepts_synthetic_good_trace(self):
        payload = chrome_trace(
            [
                Span("a", "kernel", "gpu0", 0.0, 1.0),
                Span("b", "kernel", "gpu0", 1.0, 2.0),
            ]
        )
        assert validate_chrome_trace(payload) == []


class TestMetricsViews:
    def test_metrics_json(self, stencil_run):
        _, result, _ = stencil_run
        flat = metrics_json(result)
        assert flat["program"] == result.program_name
        assert flat["counters"] == dict(sorted(result.counters.items()))

    def test_metrics_csv(self, stencil_run):
        _, result, _ = stencil_run
        lines = metrics_csv(result).strip().splitlines()
        assert lines[0] == "counter,value"
        assert len(lines) == len(result.counters) + 1
