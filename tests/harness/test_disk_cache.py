"""Unit tests for DiskCache durability and the memoised directory scan.

These pin the two satellite hardenings on the flat persistent cache:

* ``put`` is crash-safe — record bytes are flushed/fsynced to a temp file
  before ``os.replace``, so an injected failure mid-write can never tear
  the published record; and
* the inspection surface (``entry_count``/``size_bytes``/``entries``)
  shares one memoised directory listing, invalidated by the cache's own
  mutations, instead of re-globbing the directory per call.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

import repro
from repro.config import PCIE6
from repro.harness.runner.disk import DiskCache


@pytest.fixture(scope="module")
def results():
    """Two distinct tiny results to write through the cache."""
    program = repro.get_workload("jacobi").build(2, scale=0.1, iterations=2)
    config = repro.default_system(2, PCIE6)
    return {
        name: repro.PARADIGMS[name](program, config).run()
        for name in ("memcpy", "gps")
    }


class TestCrashSafePut:
    def test_fsync_happens_before_publish(self, tmp_path, monkeypatch, results):
        order = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync", lambda fd: (order.append("fsync"), real_fsync(fd))[1]
        )
        monkeypatch.setattr(
            os,
            "replace",
            lambda a, b: (order.append("replace"), real_replace(a, b))[1],
        )
        DiskCache(tmp_path).put("k1", results["memcpy"])
        assert order == ["fsync", "replace"]

    def test_injected_partial_write_never_tears_record(
        self, tmp_path, monkeypatch, results
    ):
        cache = DiskCache(tmp_path)
        cache.put("k1", results["memcpy"], {"workload": "jacobi"})
        published = (tmp_path / "k1.json").read_text()

        # Crash injection: the temp file holds partial (unsynced) bytes
        # when the simulated power cut hits at fsync time.
        def crash(fd):
            raise OSError("injected crash mid-write")

        with monkeypatch.context() as patched:
            patched.setattr(os, "fsync", crash)
            cache.put("k1", results["gps"], {"workload": "jacobi"})

        # The published name still holds the previous complete record ...
        assert (tmp_path / "k1.json").read_text() == published
        loaded = cache.get("k1")
        assert loaded is not None
        assert loaded.to_dict() == results["memcpy"].to_dict()
        # ... the failure was counted, and the partial temp was cleaned up.
        assert cache.stats.disk_errors == 1
        assert list(tmp_path.glob("*.tmp.*")) == []

    def test_failed_write_to_fresh_key_publishes_nothing(
        self, tmp_path, monkeypatch, results
    ):
        cache = DiskCache(tmp_path)
        with monkeypatch.context() as patched:
            patched.setattr(os, "fsync", lambda fd: (_ for _ in ()).throw(OSError()))
            cache.put("k1", results["memcpy"])
        assert list(tmp_path.iterdir()) == []
        assert cache.get("k1") is None

    def test_put_survives_crash_then_succeeds(self, tmp_path, monkeypatch, results):
        cache = DiskCache(tmp_path)
        with monkeypatch.context() as patched:
            patched.setattr(os, "fsync", lambda fd: (_ for _ in ()).throw(OSError()))
            cache.put("k1", results["memcpy"])
        cache.put("k1", results["gps"])
        assert cache.get("k1").to_dict() == results["gps"].to_dict()
        assert cache.stats.disk_writes == 1
        assert cache.stats.disk_errors == 1


class TestMemoisedScan:
    def _populate(self, cache, results, n=3):
        for i in range(n):
            cache.put(f"k{i}", results["memcpy"], {"workload": "jacobi"})

    def test_inspection_shares_one_scan(self, tmp_path, monkeypatch, results):
        cache = DiskCache(tmp_path)
        self._populate(cache, results)
        assert cache.entry_count() == 3  # primes the memo

        def no_rescan(self, pattern):
            raise AssertionError("inspection re-scanned the directory")

        with monkeypatch.context() as patched:
            patched.setattr(Path, "glob", no_rescan)
            assert cache.entry_count() == 3
            assert cache.size_bytes() > 0
            assert len(cache.entries()) == 3
            assert all(row["workload"] == "jacobi" for row in cache.entries())

    def test_put_invalidates_scan(self, tmp_path, results):
        cache = DiskCache(tmp_path)
        self._populate(cache, results)
        assert cache.entry_count() == 3
        cache.put("k9", results["gps"])
        assert cache.entry_count() == 4

    def test_clear_invalidates_scan(self, tmp_path, results):
        cache = DiskCache(tmp_path)
        self._populate(cache, results)
        assert cache.entry_count() == 3
        assert cache.clear() == 3
        assert cache.entry_count() == 0
        assert cache.size_bytes() == 0

    def test_corrupt_eviction_invalidates_scan(self, tmp_path, results):
        cache = DiskCache(tmp_path)
        self._populate(cache, results)
        assert cache.entry_count() == 3
        (tmp_path / "k1.json").write_text("{torn")
        assert cache.get("k1") is None  # evicts the corrupt record
        assert cache.entry_count() == 2

    def test_scan_starts_fresh_when_directory_appears_late(self, tmp_path, results):
        cache = DiskCache(tmp_path / "not-yet")
        assert cache.entry_count() == 0
        cache.put("k0", results["memcpy"])
        assert cache.entry_count() == 1
        record = json.loads((tmp_path / "not-yet" / "k0.json").read_text())
        assert record["key"] == "k0"
