"""Regression tests for config-fingerprint collisions in the memoised runner.

The old ``_config_key`` fingerprinted only 7 of ~25 ``SystemConfig`` fields
(ignoring ``gps.high_watermark``, every ``UMConfig`` knob, ``link.latency``/
``link.efficiency``, ``rdl_latency_hiding``, and most ``GPUConfig`` fields),
so two different configs collided and returned a stale cached result. These
tests are red against that key and green against the complete fingerprint.
"""

import dataclasses
import random

import pytest

from repro.config import PCIE6, SystemConfig, config_fingerprint, default_system
from repro.harness.runner import SimJob, clear_run_cache, run_simulation


def _with(config, **kwargs):
    return dataclasses.replace(config, **kwargs)


class TestCollisionRegressions:
    """Fields the old key ignored must now produce distinct keys and results."""

    def test_high_watermark_distinct(self):
        clear_run_cache()
        base = default_system(4)
        low = _with(base, gps=_with(base.gps, high_watermark=16))
        key_a = SimJob("ct", "gps", 4, "pcie6", 0.2, 2, base).key()
        key_b = SimJob("ct", "gps", 4, "pcie6", 0.2, 2, low).key()
        assert key_a != key_b
        a = run_simulation("ct", "gps", 4, "pcie6", 0.2, 2, config=base)
        b = run_simulation("ct", "gps", 4, "pcie6", 0.2, 2, config=low)
        assert a is not b
        assert a.total_time != b.total_time

    def test_um_fault_latency_distinct(self):
        clear_run_cache()
        base = default_system(4)
        slow = _with(base, um=_with(base.um, fault_latency=100e-6))
        key_a = SimJob("jacobi", "um", 4, "pcie6", 0.2, 2, base).key()
        key_b = SimJob("jacobi", "um", 4, "pcie6", 0.2, 2, slow).key()
        assert key_a != key_b
        a = run_simulation("jacobi", "um", 4, "pcie6", 0.2, 2, config=base)
        b = run_simulation("jacobi", "um", 4, "pcie6", 0.2, 2, config=slow)
        assert a is not b
        assert b.total_time > a.total_time

    def test_link_latency_distinct(self):
        # The link is passed as a LinkConfig (run_simulation overrides
        # config.link with its ``link`` argument, so perturbing the config's
        # own link field would be overwritten).
        clear_run_cache()
        laggy = dataclasses.replace(PCIE6, latency=10e-6)
        key_a = SimJob("jacobi", "memcpy", 4, PCIE6, 0.2, 2).key()
        key_b = SimJob("jacobi", "memcpy", 4, laggy, 0.2, 2).key()
        assert key_a != key_b
        a = run_simulation("jacobi", "memcpy", 4, PCIE6, scale=0.2, iterations=2)
        b = run_simulation("jacobi", "memcpy", 4, laggy, scale=0.2, iterations=2)
        assert a is not b
        assert b.total_time > a.total_time

    def test_rdl_latency_hiding_distinct(self):
        base = default_system(4)
        tweaked = _with(base, rdl_latency_hiding=0.2)
        assert (
            SimJob("jacobi", "rdl", 4, "pcie6", 0.2, 2, base).key()
            != SimJob("jacobi", "rdl", 4, "pcie6", 0.2, 2, tweaked).key()
        )


def _leaf_paths(config, prefix=()):
    """Every (path, value) leaf of a nested frozen-dataclass config."""
    paths = []
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        if dataclasses.is_dataclass(value):
            paths.extend(_leaf_paths(value, prefix + (field.name,)))
        else:
            paths.append((prefix + (field.name,), value))
    return paths


def _replace_path(config, path, value):
    if len(path) == 1:
        return dataclasses.replace(config, **{path[0]: value})
    inner = _replace_path(getattr(config, path[0]), path[1:], value)
    return dataclasses.replace(config, **{path[0]: inner})


def _perturb(value, path):
    """A different-but-valid value for one config field."""
    if path[-1] == "high_watermark":  # default None -> an explicit watermark
        return 77
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value * 2  # keeps powers of two, divisibility, positivity
    if isinstance(value, float):
        return value * 0.5  # keeps (0, 1] and [0, 1) ranges and positivity
    if isinstance(value, str):
        return value + "-x"
    raise AssertionError(f"unhandled field type at {path}: {value!r}")


class TestFingerprintCompleteness:
    """Any-field perturbation must change the fingerprint (acceptance bar)."""

    def test_every_field_changes_fingerprint(self):
        base = default_system(4)
        fingerprints = {config_fingerprint(base)}
        paths = _leaf_paths(base)
        assert len(paths) >= 25, "expected the full ~25-field config surface"
        for path, value in paths:
            perturbed = _replace_path(base, path, _perturb(value, path))
            fingerprints.add(config_fingerprint(perturbed))
        # base + one distinct fingerprint per perturbed field, all pairwise
        # distinct.
        assert len(fingerprints) == len(paths) + 1

    def test_randomly_perturbed_configs_distinct(self):
        rng = random.Random(20210418)  # deterministic property test
        base = default_system(4)
        paths = _leaf_paths(base)
        seen = {config_fingerprint(base): base}
        for _ in range(50):
            config = base
            for path, _value in rng.sample(paths, rng.randint(1, 4)):
                config = _replace_path(
                    config, path, _perturb(getattr_path(config, path), path)
                )
            fingerprint = config_fingerprint(config)
            if fingerprint in seen:
                assert seen[fingerprint] == config, "collision between different configs"
            seen[fingerprint] = config
        assert len(seen) > 25

    def test_identical_configs_share_fingerprint(self):
        assert config_fingerprint(default_system(4)) == config_fingerprint(
            SystemConfig(num_gpus=4)
        )

    def test_job_key_separates_workload_and_paradigm(self):
        assert SimJob("jacobi", "gps", 4).key() != SimJob("jacobi", "rdl", 4).key()
        assert SimJob("jacobi", "gps", 4).key() != SimJob("ct", "gps", 4).key()
        assert SimJob("jacobi", "gps", 4, scale=0.5).key() != SimJob(
            "jacobi", "gps", 4, scale=1.0
        ).key()


def getattr_path(config, path):
    for name in path:
        config = getattr(config, name)
    return config
