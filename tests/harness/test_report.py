"""Tests for report formatting."""

import pytest

from repro.harness.report import format_speedup_matrix, format_table, geomean


class TestGeomean:
    def test_basic(self):
        assert geomean([1, 4]) == pytest.approx(2.0)

    def test_single(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "bb"], [[1.5, "x"], [22.25, "yy"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].endswith("bb")
        assert "1.50" in table
        assert "22.25" in table

    def test_title(self):
        assert format_table(["a"], [[1]], title="T").startswith("T\n")

    def test_empty_rows(self):
        table = format_table(["col"], [])
        assert "col" in table


class TestSpeedupMatrix:
    def test_renders_geomean_row(self):
        result = {
            "paradigms": ["um", "gps"],
            "speedups": {"jacobi": {"um": 0.4, "gps": 3.0}},
            "geomean": {"um": 0.4, "gps": 3.0},
        }
        rendered = format_speedup_matrix(result, title="fig8")
        assert "jacobi" in rendered
        assert "geomean" in rendered
        assert "3.00" in rendered
