"""Tests for regression snapshots."""

import pytest

from repro.harness import fig9_subscriber_distribution
from repro.harness.regression import (
    check_against_baseline,
    compare,
    save_baseline,
    snapshot,
)


class TestSnapshot:
    def test_flattens_numbers(self):
        snap = snapshot({"a": 1, "b": {"c": 2.5, "d": {"e": 3}}})
        assert snap == {"a": 1.0, "b.c": 2.5, "b.d.e": 3.0}

    def test_skips_non_numeric(self):
        snap = snapshot({"name": "fig8", "values": [1, 2], "x": 1, "flag": True})
        assert snap == {"x": 1.0}

    def test_integer_keys_stringify(self):
        snap = snapshot({"hist": {2: 10, 4: 90}})
        assert snap == {"hist.2": 10.0, "hist.4": 90.0}


class TestCompare:
    def test_no_drift_within_tolerance(self):
        base = {"x": 100.0}
        assert compare(base, {"x": 102.0}, rel_tol=0.05) == []

    def test_drift_beyond_tolerance(self):
        drifts = compare({"x": 100.0}, {"x": 120.0}, rel_tol=0.05)
        assert len(drifts) == 1
        assert drifts[0].relative_change == pytest.approx(0.2)
        assert "20.0%" in str(drifts[0])

    def test_added_and_removed_metrics_always_reported(self):
        drifts = compare({"old": 1.0}, {"new": 1.0})
        assert {d.path for d in drifts} == {"old", "new"}
        assert all(d.relative_change == float("inf") for d in drifts)

    def test_zero_baseline_handled(self):
        drifts = compare({"x": 0.0}, {"x": 1e-13}, rel_tol=0.5)
        assert drifts == []


class TestBaselineFiles:
    def test_bootstrap_creates_baseline(self, tmp_path):
        path = tmp_path / "base.json"
        result = {"geomean": {"gps": 3.0}}
        assert check_against_baseline(result, path) == []
        assert path.exists()

    def test_detects_drift_on_second_run(self, tmp_path):
        path = tmp_path / "base.json"
        check_against_baseline({"geomean": {"gps": 3.0}}, path)
        drifts = check_against_baseline({"geomean": {"gps": 2.0}}, path)
        assert len(drifts) == 1
        assert drifts[0].path == "geomean.gps"

    def test_identical_experiment_runs_have_no_drift(self, tmp_path):
        # End-to-end: the simulator is deterministic, so two runs of the
        # same experiment snapshot identically.
        path = tmp_path / "fig9.json"
        kwargs = dict(scale=0.1, iterations=2, workloads=["jacobi"])
        first = fig9_subscriber_distribution(**kwargs)
        save_baseline(first, path)
        second = fig9_subscriber_distribution(**kwargs)
        assert check_against_baseline(second, path, rel_tol=1e-9) == []
