"""Tests for result export."""

import json

import numpy as np
import pytest

from repro.harness.export import series_to_csv, speedups_to_csv, to_json

MATRIX = {
    "paradigms": ["um", "gps"],
    "speedups": {"jacobi": {"um": 0.4, "gps": 3.0}},
    "geomean": {"um": 0.4, "gps": 3.0},
}


class TestToJson:
    def test_round_trips(self):
        text = to_json(MATRIX)
        assert json.loads(text)["speedups"]["jacobi"]["gps"] == 3.0

    def test_numpy_values_coerced(self):
        result = {"value": np.float64(1.5), "arr": np.array([1, 2])}
        data = json.loads(to_json(result))
        assert data["value"] == 1.5
        assert data["arr"] == [1, 2]

    def test_int_keys_coerced(self):
        data = json.loads(to_json({"hist": {2: 10, 4: 90}}))
        assert data["hist"] == {"2": 10, "4": 90}

    def test_writes_file(self, tmp_path):
        path = tmp_path / "out.json"
        to_json(MATRIX, path=path)
        assert json.loads(path.read_text())["paradigms"] == ["um", "gps"]


class TestSpeedupsCsv:
    def test_layout(self):
        text = speedups_to_csv(MATRIX)
        lines = text.strip().splitlines()
        assert lines[0] == "workload,um,gps"
        assert lines[1] == "jacobi,0.4,3"
        assert lines[2].startswith("geomean,")

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            speedups_to_csv({"rows": []})

    def test_writes_file(self, tmp_path):
        path = tmp_path / "out.csv"
        speedups_to_csv(MATRIX, path=path)
        assert path.read_text().startswith("workload,")


class TestSeriesCsv:
    def test_long_form(self):
        result = {"hit_rate": {"ct": {64: 0.1, 512: 0.35}}}
        text = series_to_csv(result, "hit_rate", "queue_size")
        lines = text.strip().splitlines()
        assert lines[0] == "workload,queue_size,hit_rate"
        assert "ct,64,0.1" in lines
        assert "ct,512,0.35" in lines

    def test_missing_series_rejected(self):
        with pytest.raises(ValueError):
            series_to_csv({}, "hit_rate", "x")
