"""Tests for the memoised runner."""

import pytest

from repro.config import PCIE3
from repro.harness.runner import clear_run_cache, run_simulation, run_speedup


class TestMemoisation:
    def test_same_args_same_object(self):
        clear_run_cache()
        a = run_simulation("jacobi", "memcpy", 2, scale=0.1, iterations=2)
        b = run_simulation("jacobi", "memcpy", 2, scale=0.1, iterations=2)
        assert a is b

    def test_different_link_not_shared(self):
        clear_run_cache()
        a = run_simulation("jacobi", "memcpy", 2, "pcie6", scale=0.1, iterations=2)
        b = run_simulation("jacobi", "memcpy", 2, "pcie3", scale=0.1, iterations=2)
        assert a is not b
        assert a.total_time < b.total_time

    def test_link_accepts_config_object(self):
        clear_run_cache()
        result = run_simulation("jacobi", "memcpy", 2, PCIE3, scale=0.1, iterations=2)
        assert result.total_time > 0

    def test_clear(self):
        clear_run_cache()
        a = run_simulation("jacobi", "memcpy", 2, scale=0.1, iterations=2)
        clear_run_cache()
        b = run_simulation("jacobi", "memcpy", 2, scale=0.1, iterations=2)
        assert a is not b
        assert a.total_time == b.total_time  # deterministic


class TestSpeedup:
    def test_infinite_speedup_above_one(self):
        clear_run_cache()
        assert run_speedup("jacobi", "infinite", 4, scale=0.1, iterations=2) > 1.0

    def test_speedup_deterministic(self):
        clear_run_cache()
        a = run_speedup("jacobi", "gps", 4, scale=0.1, iterations=2)
        b = run_speedup("jacobi", "gps", 4, scale=0.1, iterations=2)
        assert a == b
