"""Tests for the experiment drivers (reduced fidelity for speed).

Full-scale paper-shape assertions live in tests/integration; here each
driver is checked for structure and internal consistency at tiny scale.
"""

import pytest

import repro
from repro.config import PAGE_2M, PAGE_4K, PAGE_64K
from repro.harness import (
    fig1_motivation,
    fig3_bandwidth_gap,
    fig8_end_to_end,
    fig9_subscriber_distribution,
    fig10_interconnect_traffic,
    fig11_subscription_benefit,
    fig13_bandwidth_sensitivity,
    fig14_write_queue_hit_rate,
    gps_tlb_sensitivity,
    page_size_sensitivity,
    table1_simulation_settings,
    table2_applications,
)

FAST = dict(scale=0.1, iterations=2, workloads=["jacobi", "pagerank"])


class TestFig1:
    def test_interconnect_ordering(self):
        result = fig1_motivation(**FAST)
        mean = result["geomean"]
        assert mean["pcie3"] < mean["pcie6"] < mean["infinite"]


class TestFig3:
    def test_gap_band(self):
        result = fig3_bandwidth_gap()
        assert len(result["rows"]) == 5
        assert result["min_gap"] >= 2.5


class TestFig8:
    def test_structure(self):
        result = fig8_end_to_end(**FAST)
        assert set(result["speedups"]) == {"jacobi", "pagerank"}
        for per_paradigm in result["speedups"].values():
            assert set(per_paradigm) == set(result["paradigms"])
        assert 0 < result["opportunity_captured"] <= 1.0

    def test_gps_best_real_paradigm(self):
        result = fig8_end_to_end(**FAST)
        for workload, per_paradigm in result["speedups"].items():
            best_real = max(
                v for k, v in per_paradigm.items() if k != "infinite"
            )
            assert per_paradigm["gps"] == best_real, workload


class TestFig9:
    def test_percentages_sum_to_100(self):
        result = fig9_subscriber_distribution(scale=0.1, iterations=2)
        for workload, dist in result["percent_by_subscribers"].items():
            assert sum(dist.values()) == pytest.approx(100.0), workload

    def test_subscriber_counts_in_range(self):
        result = fig9_subscriber_distribution(scale=0.1, iterations=2)
        for dist in result["percent_by_subscribers"].values():
            assert all(2 <= count <= 4 for count in dist)

    def test_als_all_to_all(self):
        # ALS factors are consumed by every GPU; aside from a sliver of
        # false sharing on ratings-shard boundary pages, everything stays
        # subscribed all-to-all.
        result = fig9_subscriber_distribution(
            scale=0.1, iterations=2, workloads=["als"]
        )
        assert result["percent_by_subscribers"]["als"].get(4, 0) > 85.0


class TestFig10:
    def test_memcpy_is_unity_baseline(self):
        result = fig10_interconnect_traffic(**FAST)
        for workload in result["workloads"]:
            raw = result["raw_bytes"][workload]
            assert raw["memcpy"] > 0
            for paradigm, norm in result["normalized_to_memcpy"][workload].items():
                assert norm == pytest.approx(raw[paradigm] / raw["memcpy"])

    def test_gps_below_memcpy_for_jacobi(self):
        result = fig10_interconnect_traffic(
            scale=0.3, iterations=4, workloads=["jacobi"]
        )
        assert result["normalized_to_memcpy"]["jacobi"]["gps"] < 1.0


class TestFig11:
    def test_subscription_never_hurts(self):
        result = fig11_subscription_benefit(**FAST)
        for workload, row in result["speedups"].items():
            assert row["gps"] >= row["gps_nosub"] * 0.98, workload


class TestFig13:
    def test_speedup_monotonic_in_bandwidth(self):
        result = fig13_bandwidth_sensitivity(**FAST)
        for paradigm in ("memcpy", "gps"):
            series = [result["geomean"][l][paradigm] for l in result["links"]]
            assert series == sorted(series), paradigm


class TestFig14:
    def test_zero_hit_apps(self):
        result = fig14_write_queue_hit_rate(
            scale=0.2, queue_sizes=(64, 512), workloads=("jacobi", "pagerank")
        )
        for workload in ("jacobi", "pagerank"):
            assert all(v == 0.0 for v in result["hit_rate"][workload].values())

    def test_hit_rate_monotonic_in_size(self):
        result = fig14_write_queue_hit_rate(
            scale=0.2, queue_sizes=(16, 128, 512), workloads=("ct", "hit")
        )
        for workload in ("ct", "hit"):
            series = [result["hit_rate"][workload][s] for s in (16, 128, 512)]
            assert series == sorted(series)
            assert series[-1] > 0.2


class TestGPSTLB:
    def test_32_entries_near_perfect(self):
        result = gps_tlb_sensitivity(scale=0.2, tlb_sizes=(32,), workloads=["ct"])
        assert result["hit_rate"]["ct"][32] > 0.97

    def test_monotonic_in_size(self):
        result = gps_tlb_sensitivity(
            scale=0.2, tlb_sizes=(2, 32), workloads=["ct"]
        )
        rates = result["hit_rate"]["ct"]
        assert rates[32] >= rates[2]


class TestPageSize:
    def test_64k_is_sweet_spot(self):
        result = page_size_sensitivity(
            scale=0.4, iterations=2, workloads=["jacobi", "ct"]
        )
        slowdown = result["slowdown_vs_64k"]
        assert slowdown[PAGE_64K] == 1.0
        assert slowdown[PAGE_4K] >= 1.0
        assert slowdown[PAGE_2M] >= 1.0


class TestTables:
    def test_table1_matches_paper(self):
        result = table1_simulation_settings()
        assert result["gpu"]["cache_block_bytes"] == 128
        assert result["gpu"]["streaming_multiprocessors"] == 80
        assert result["gps"]["remote_write_queue_entries"] == 512
        assert result["gps"]["tlb_entries"] == 32
        assert result["gps"]["virtual_address_bits"] == 49

    def test_table2_has_eight_rows(self):
        result = table2_applications()
        assert len(result["rows"]) == 8
        assert result["rows"][0]["name"] == "jacobi"
