"""Tests for terminal plotting."""

from repro.harness.ascii_plot import bar_chart, grouped_bar_chart, line_plot


class TestBarChart:
    def test_scales_to_max(self):
        chart = bar_chart({"a": 1.0, "b": 2.0}, width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_title(self):
        assert bar_chart({"a": 1.0}, title="T").startswith("T\n")

    def test_empty(self):
        assert bar_chart({}, title="T") == "T"

    def test_values_rendered(self):
        assert "2.00" in bar_chart({"a": 2.0})

    def test_negative_values_render_empty(self):
        chart = bar_chart({"a": -5.0, "b": 1.0}, width=10)
        assert chart.splitlines()[0].count("#") == 0


class TestGroupedBarChart:
    def test_structure(self):
        chart = grouped_bar_chart(
            {"jacobi": {"um": 0.4, "gps": 3.0}, "ct": {"um": 0.5, "gps": 3.5}},
            width=10,
        )
        lines = chart.splitlines()
        assert lines[0] == "jacobi:"
        assert any("gps" in line and "#" * 8 in line for line in lines)

    def test_shared_scale_across_groups(self):
        chart = grouped_bar_chart(
            {"g1": {"s": 1.0}, "g2": {"s": 4.0}},
            width=8,
        )
        lines = [l for l in chart.splitlines() if "#" in l]
        assert lines[0].count("#") == 2
        assert lines[1].count("#") == 8

    def test_empty(self):
        assert grouped_bar_chart({}, title="x") == "x"


class TestLinePlot:
    def test_dimensions(self):
        plot = line_plot({"s": [(0, 0), (10, 1)]}, width=20, height=5)
        rows = [l for l in plot.splitlines() if l.startswith("|")]
        assert len(rows) == 5
        assert all(len(r) == 21 for r in rows)

    def test_markers_distinct_per_series(self):
        plot = line_plot({"a": [(0, 0)], "b": [(1, 1)]}, width=10, height=4)
        assert "o=a" in plot
        assert "x=b" in plot

    def test_extremes_plotted(self):
        plot = line_plot({"s": [(0, 0), (1, 1)]}, width=10, height=4)
        rows = [l for l in plot.splitlines() if l.startswith("|")]
        assert rows[0][10] == "o"  # max x, max y at top-right
        assert rows[-1][1] == "o"  # min at bottom-left

    def test_empty(self):
        assert line_plot({}, title="t") == "t"

    def test_axis_labels(self):
        plot = line_plot({"s": [(2, 5), (8, 9)]})
        assert "x: 2 .. 8" in plot
        assert "y: 5 .. 9" in plot
