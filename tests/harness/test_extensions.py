"""Tests for harness extensions (weak scaling, fig1 best-available)."""

import pytest

from repro.harness.experiments import fig1_motivation, weak_scaling


class TestWeakScaling:
    @pytest.fixture(scope="class")
    def result(self):
        return weak_scaling(
            workload="jacobi",
            gpu_counts=(1, 2, 4),
            scale_per_gpu=0.1,
            iterations=2,
        )

    def test_structure(self, result):
        assert result["gpu_counts"] == [1, 2, 4]
        for paradigm in result["paradigms"]:
            assert set(result["efficiency"][paradigm]) == {1, 2, 4}

    def test_baseline_efficiency_is_one(self, result):
        for paradigm in result["paradigms"]:
            assert result["efficiency"][paradigm][1] == pytest.approx(1.0)

    def test_gps_beats_memcpy(self, result):
        for n in (2, 4):
            assert result["efficiency"]["gps"][n] > result["efficiency"]["memcpy"][n]

    def test_efficiency_at_most_superlinear_bound(self, result):
        for paradigm in result["paradigms"]:
            for n, eff in result["efficiency"][paradigm].items():
                assert eff <= 1.5  # weak scaling cannot beat flat by much


class TestFig1BestAvailable:
    def test_best_paradigm_recorded(self):
        result = fig1_motivation(scale=0.1, iterations=2, workloads=["jacobi"])
        best = result["best_paradigm"]["jacobi"]
        assert set(best) == {"pcie3", "pcie6", "infinite"}
        assert best["infinite"] == "infinite"
        assert best["pcie6"] in ("um_hints", "rdl", "memcpy")

    def test_best_at_least_each_candidate(self):
        from repro.harness.runner import run_speedup

        result = fig1_motivation(scale=0.1, iterations=2, workloads=["jacobi"])
        for paradigm in ("um_hints", "rdl", "memcpy"):
            candidate = run_speedup("jacobi", paradigm, 4, "pcie6", 0.1, 2)
            assert result["speedups"]["jacobi"]["pcie6"] >= candidate - 1e-12
