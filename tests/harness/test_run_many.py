"""Tests for the parallel runner, the persistent cache, and cache stats."""

import dataclasses
import json

import pytest

import repro
from repro.harness.runner import (
    SimJob,
    cache_stats,
    clear_disk_cache,
    clear_run_cache,
    disk_cache_info,
    fleet_stats,
    run_many,
    run_many_settled,
    run_simulation,
    run_speedup,
)

FAST = dict(scale=0.1, iterations=2)


class TestRunMany:
    def test_preserves_order_and_dedups(self):
        clear_run_cache()
        jobs = [
            SimJob("jacobi", "memcpy", 2, **FAST),
            SimJob("jacobi", "gps", 2, **FAST),
            SimJob("jacobi", "memcpy", 2, **FAST),  # duplicate
        ]
        results = run_many(jobs, max_workers=1)
        assert len(results) == 3
        assert results[0] is results[2]
        assert results[0].paradigm == "memcpy"
        assert results[1].paradigm == "gps"

    def test_matches_run_simulation(self):
        clear_run_cache()
        (via_many,) = run_many([SimJob("pagerank", "rdl", 2, **FAST)])
        direct = run_simulation("pagerank", "rdl", 2, **FAST)
        assert via_many is direct  # second call hit the memo

    def test_parallel_equals_serial(self):
        clear_run_cache()
        jobs = [
            SimJob(w, p, 2, **FAST)
            for w in ("jacobi", "pagerank")
            for p in ("memcpy", "gps")
        ]
        parallel = [r.total_time for r in run_many(jobs, max_workers=2)]
        clear_run_cache()
        serial = [r.total_time for r in run_many(jobs, max_workers=1)]
        assert parallel == serial

    def test_accepts_tuples(self):
        clear_run_cache()
        (result,) = run_many([("jacobi", "memcpy", 2, "pcie6", 0.1, 2)])
        assert result.total_time > 0

    def test_repeated_configs_fingerprint_once(self, monkeypatch):
        # Satellite regression: a grid repeating the same config as distinct
        # SimJob instances must hash the config once, not once per repeat.
        from repro.harness.runner import fingerprint as fp

        clear_run_cache()
        calls = {"n": 0}
        real_job_key = fp.job_key

        def counting_job_key(*args, **kwargs):
            calls["n"] += 1
            return real_job_key(*args, **kwargs)

        monkeypatch.setattr(fp, "job_key", counting_job_key)
        jobs = [
            SimJob("jacobi", "memcpy", 2, **FAST),
            SimJob("jacobi", "gps", 2, **FAST),
            SimJob("jacobi", "memcpy", 2, **FAST),  # repeat, fresh instance
            SimJob("jacobi", "memcpy", 2, **FAST),  # repeat, fresh instance
        ]
        results = run_many(jobs, max_workers=1)
        assert calls["n"] == 2  # one per *distinct* job
        # ... and the shared result fans back out to every repeat slot.
        assert results[0] is results[2] is results[3]
        assert fleet_stats().jobs_computed == 2


class TestRunManySettled:
    def test_matches_run_many_on_success(self):
        clear_run_cache()
        jobs = [SimJob("jacobi", "memcpy", 2, **FAST), SimJob("jacobi", "gps", 2, **FAST)]
        settled = run_many_settled(jobs, max_workers=1)
        clear_run_cache()
        plain = run_many(jobs, max_workers=1)
        assert [r.total_time for r in settled] == [r.total_time for r in plain]

    def test_failure_lands_in_its_slot(self, monkeypatch):
        from repro.harness.runner import parallel

        clear_run_cache()
        real_compute = parallel.compute_job

        def picky(job):
            if job.paradigm == "gps":
                raise RuntimeError("injected failure")
            return real_compute(job)

        monkeypatch.setattr(parallel, "compute_job", picky)
        jobs = [
            SimJob("jacobi", "memcpy", 2, **FAST),
            SimJob("jacobi", "gps", 2, **FAST),
            SimJob("jacobi", "gps", 2, **FAST),  # duplicate shares the failure
        ]
        ok, bad, bad2 = run_many_settled(jobs, max_workers=1)
        assert ok.total_time > 0
        assert isinstance(bad, RuntimeError) and bad is bad2
        assert fleet_stats().jobs_failed == 1
        assert fleet_stats().jobs_computed == 1

    def test_pool_worker_crash_lands_in_its_slot(self):
        # The monkeypatch test above only exercises the serial fallback; a
        # real worker crash crosses a process boundary, so the exception is
        # pickled back from the pool. A fuzz job with iterations=0 raises
        # TraceError inside the worker's build step — a genuine mid-batch
        # poison job, not an injected stub.
        from repro.errors import TraceError

        clear_run_cache()
        jobs = [
            SimJob("jacobi", "memcpy", 2, **FAST),
            SimJob("fuzz/5", "gps", 2, scale=0.1, iterations=0),  # poison
            SimJob("pagerank", "gps", 2, **FAST),
        ]
        before = fleet_stats().jobs_failed
        ok_a, poisoned, ok_b = run_many_settled(jobs, max_workers=2)
        assert ok_a.total_time > 0 and ok_a.paradigm == "memcpy"
        assert ok_b.total_time > 0 and ok_b.program_name == "pagerank"
        assert isinstance(poisoned, TraceError)
        assert fleet_stats().jobs_failed == before + 1
        # The two healthy jobs really went through the pool.
        assert any(
            "(serial)" not in w.worker for w in fleet_stats().workers.values()
        )

    def test_run_many_raises_first_failure(self, monkeypatch):
        from repro.harness.runner import parallel

        clear_run_cache()

        def explode(job):
            raise RuntimeError("injected failure")

        monkeypatch.setattr(parallel, "compute_job", explode)
        with pytest.raises(RuntimeError, match="injected failure"):
            run_many([SimJob("jacobi", "memcpy", 2, **FAST)], max_workers=1)


class TestFleetStats:
    def test_serial_accounting(self):
        clear_run_cache()
        jobs = [
            SimJob("jacobi", "memcpy", 2, **FAST),
            SimJob("jacobi", "gps", 2, **FAST),
            SimJob("jacobi", "memcpy", 2, **FAST),  # in-batch duplicate
        ]
        run_many(jobs, max_workers=1)
        fleet = fleet_stats()
        assert fleet.runs == 1
        assert fleet.jobs_submitted == 3
        assert fleet.jobs_cached == 1  # the duplicate never reaches a worker
        assert fleet.jobs_computed == 2
        assert fleet.wall_clock > 0
        (worker,) = fleet.workers.values()
        assert worker.jobs == 2
        assert "(serial)" in worker.worker

    def test_warm_second_call_counts_cached(self):
        clear_run_cache()
        jobs = [SimJob("jacobi", "memcpy", 2, **FAST)]
        run_many(jobs)
        run_many(jobs)
        fleet = fleet_stats()
        assert fleet.runs == 2
        assert fleet.jobs_submitted == 2
        assert fleet.jobs_cached == 1
        assert fleet.jobs_computed == 1

    def test_clear_run_cache_resets(self):
        clear_run_cache()
        run_many([SimJob("jacobi", "memcpy", 2, **FAST)])
        assert fleet_stats().runs == 1
        clear_run_cache()
        fleet = fleet_stats()
        assert fleet.runs == 0
        assert fleet.jobs_submitted == 0
        assert not fleet.workers

    def test_as_dict_and_report(self):
        clear_run_cache()
        run_many([SimJob("jacobi", "gps", 2, **FAST)])
        fleet = fleet_stats()
        payload = json.loads(json.dumps(fleet.as_dict()))
        assert payload["jobs_computed"] == 1
        (worker,) = payload["workers"]
        assert worker["jobs"] == 1
        assert fleet.report().startswith("fleet: 1 run_many call(s)")


class TestBaselineParadigm:
    def test_all_non_fault_paradigms_agree_on_one_gpu(self):
        # The assumption behind the default memcpy baseline, made explicit:
        # on one GPU there is no communication, so every paradigm except
        # fault-based UM (which pays first-touch population) matches memcpy.
        clear_run_cache()
        times = {
            p: run_simulation("jacobi", p, 1, **FAST).total_time
            for p in sorted(repro.PARADIGMS)
        }
        for paradigm, total_time in times.items():
            if paradigm == "um":
                assert total_time > times["memcpy"]
            else:
                assert total_time == times["memcpy"], paradigm

    def test_baseline_paradigm_kwarg(self):
        clear_run_cache()
        default = run_speedup("jacobi", "gps", 4, **FAST)
        explicit = run_speedup("jacobi", "gps", 4, baseline_paradigm="memcpy", **FAST)
        um_base = run_speedup("jacobi", "gps", 4, baseline_paradigm="um", **FAST)
        assert default == explicit
        assert um_base > default  # UM's 1-GPU run is slower, inflating speedup


@pytest.fixture
def disk_cache(tmp_path, monkeypatch):
    """A live persistent cache in a temp directory (overrides the suite-wide
    REPRO_NO_CACHE isolation)."""
    monkeypatch.setenv("REPRO_NO_CACHE", "")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    clear_run_cache()
    yield tmp_path
    clear_run_cache()


class TestDiskCache:
    def test_writes_records(self, disk_cache):
        run_simulation("jacobi", "memcpy", 2, **FAST)
        info = disk_cache_info()
        assert info["enabled"]
        assert info["entries"] == 1
        record = json.loads(next(disk_cache.glob("*.json")).read_text())
        assert record["job"]["workload"] == "jacobi"
        assert record["model"].startswith("repro-model/")

    def test_round_trip_after_memory_clear(self, disk_cache):
        a = run_simulation("ct", "gps", 4, **FAST)
        clear_run_cache()  # drops the memo, keeps the disk records
        b = run_simulation("ct", "gps", 4, **FAST)
        assert a is not b
        assert cache_stats().disk_hits == 1
        assert b.total_time == a.total_time
        assert b.interconnect_bytes == a.interconnect_bytes
        assert b.subscriber_histogram == a.subscriber_histogram
        assert [p.duration for p in b.phases] == [p.duration for p in a.phases]
        assert [s.hit_rate for s in b.write_queue_stats] == [
            s.hit_rate for s in a.write_queue_stats
        ]
        assert b.extras == a.extras

    def test_corrupt_record_recomputed(self, disk_cache):
        run_simulation("jacobi", "memcpy", 2, **FAST)
        path = next(disk_cache.glob("*.json"))
        path.write_text("{not json")
        clear_run_cache()
        result = run_simulation("jacobi", "memcpy", 2, **FAST)
        assert result.total_time > 0
        stats = cache_stats()
        assert stats.disk_errors == 1
        assert stats.evictions == 1
        assert stats.misses == 1

    def test_non_dict_json_record_recomputed(self, disk_cache):
        # Satellite hardening: a record that parses as JSON but is not an
        # object (e.g. a truncated-then-rewritten file, or a concurrent
        # writer losing a race) must read as a miss, never raise.
        run_simulation("jacobi", "memcpy", 2, **FAST)
        path = next(disk_cache.glob("*.json"))
        for garbage in ('"just-a-string"', "[1, 2, 3]", "null", '{"job": {}}'):
            path.write_text(garbage)
            clear_run_cache()
            result = run_simulation("jacobi", "memcpy", 2, **FAST)
            assert result.total_time > 0
            stats = cache_stats()
            assert stats.disk_errors == 1, garbage
            assert stats.misses == 1, garbage
        # Non-dict payloads are also skipped (not fatal) when enumerating.
        path.write_text('"just-a-string"')
        info = disk_cache_info()
        assert info["enabled"]

    def test_clear_disk_cache(self, disk_cache):
        run_simulation("jacobi", "memcpy", 2, **FAST)
        run_simulation("jacobi", "gps", 2, **FAST)
        assert clear_disk_cache() == 2
        assert disk_cache_info()["entries"] == 0

    def test_no_cache_env_disables(self, disk_cache, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        run_simulation("jacobi", "memcpy", 2, **FAST)
        assert not disk_cache_info()["enabled"]
        assert list(disk_cache.glob("*.json")) == []


class TestCacheStats:
    def test_counters(self):
        clear_run_cache()
        run_simulation("jacobi", "memcpy", 2, **FAST)
        run_simulation("jacobi", "memcpy", 2, **FAST)
        stats = cache_stats()
        assert stats.misses == 1
        assert stats.memory_hits == 1
        assert stats.lookups == 2
        assert stats.hit_rate == 0.5
        assert "hit rate" in stats.report()
        assert stats.as_dict()["lookups"] == 2

    def test_clear_resets_stats_and_handle(self, tmp_path, monkeypatch):
        # Satellite: clear_run_cache must reset the disk handle *and* the
        # counters, so the clear-between-mutations pattern stays sound.
        clear_run_cache()
        run_simulation("jacobi", "memcpy", 2, **FAST)
        assert cache_stats().lookups == 1
        monkeypatch.setenv("REPRO_NO_CACHE", "")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_run_cache()
        assert cache_stats().lookups == 0
        run_simulation("jacobi", "memcpy", 2, **FAST)
        # The re-resolved handle honours the new environment.
        assert disk_cache_info()["directory"] == str(tmp_path)
        assert disk_cache_info()["entries"] == 1
