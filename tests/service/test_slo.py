"""SLO definitions, env override, and live evaluation against the series."""

import pytest

from repro.errors import ServiceError
from repro.service import (
    DEFAULT_SLOS,
    SLO,
    SeriesStore,
    evaluate_slo,
    evaluate_slos,
    slos_from_env,
)


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


class TestDefinition:
    def test_defaults_cover_latency_and_availability(self):
        by_name = {slo.name: slo for slo in DEFAULT_SLOS}
        assert set(by_name) == {"job-latency-30s", "job-availability"}
        assert by_name["job-latency-30s"].threshold_s == 30.0
        assert by_name["job-latency-30s"].series == "jobs.total_s"
        assert by_name["job-availability"].threshold_s is None
        assert by_name["job-availability"].series == "jobs.ok"

    @pytest.mark.parametrize("objective", [0.0, 1.0, -0.5, 2.0])
    def test_objective_must_be_open_interval(self, objective):
        with pytest.raises(ValueError, match="objective"):
            SLO(name="x", series="s", objective=objective)

    def test_window_must_be_positive(self):
        with pytest.raises(ValueError, match="window_s"):
            SLO(name="x", series="s", objective=0.9, window_s=0.0)

    def test_to_dict_round_trips_fields(self):
        slo = SLO(name="x", series="s", objective=0.9, window_s=60.0, threshold_s=1.0)
        assert SLO(**slo.to_dict()) == slo


class TestEnvOverride:
    def test_empty_env_yields_defaults(self):
        assert slos_from_env({}) == DEFAULT_SLOS
        assert slos_from_env({"REPRO_SERVICE_SLO": ""}) == DEFAULT_SLOS

    def test_valid_json_replaces_defaults(self):
        raw = ('[{"name": "fast", "series": "jobs.total_s",'
               ' "objective": 0.5, "window_s": 60.0, "threshold_s": 1.0}]')
        slos = slos_from_env({"REPRO_SERVICE_SLO": raw})
        assert slos == (
            SLO(name="fast", series="jobs.total_s", objective=0.5,
                window_s=60.0, threshold_s=1.0),
        )

    @pytest.mark.parametrize(
        "raw",
        [
            "not json",
            '{"name": "x"}',  # object, not a list
            '[{"name": "x"}]',  # missing required fields
            '[{"name": "x", "series": "s", "objective": 2.0}]',  # bad objective
            '[{"name": "x", "series": "s", "objective": 0.9, "bogus": 1}]',
        ],
    )
    def test_malformed_env_raises(self, raw):
        with pytest.raises(ServiceError, match="REPRO_SERVICE_SLO"):
            slos_from_env({"REPRO_SERVICE_SLO": raw})


class TestEvaluation:
    def _store(self, values, clock=None):
        store = SeriesStore(clock=clock or FakeClock())
        for t, value in values:
            store.record("s", value, t=t)
        return store

    def test_latency_good_at_or_under_threshold(self):
        store = self._store([(990.0, 1.0), (991.0, 5.0), (992.0, 5.1)])
        slo = SLO(name="lat", series="s", objective=0.5, threshold_s=5.0)
        report = evaluate_slo(slo, store)
        assert (report["total"], report["good"]) == (3, 2)
        assert report["compliance"] == pytest.approx(2 / 3)
        assert report["ok"]

    def test_availability_good_when_truthy(self):
        store = self._store([(990.0, 1.0), (991.0, 0.0), (992.0, 1.0)])
        slo = SLO(name="avail", series="s", objective=0.5)
        assert evaluate_slo(slo, store)["good"] == 2

    def test_burn_rate_math(self):
        # 2 bad of 10 with a 10% budget burns the budget at 2x.
        samples = [(990.0 + i, float(i >= 2)) for i in range(10)]
        slo = SLO(name="x", series="s", objective=0.9)
        report = evaluate_slo(slo, self._store(samples))
        assert report["burn_rate"] == pytest.approx(2.0)
        assert report["error_budget_remaining"] == 0.0
        assert report["compliance"] == pytest.approx(0.8)
        assert not report["ok"]

    def test_burn_rate_exactly_on_budget_is_ok(self):
        samples = [(990.0 + i, float(i != 0)) for i in range(10)]
        report = evaluate_slo(SLO(name="x", series="s", objective=0.9),
                              self._store(samples))
        assert report["burn_rate"] == pytest.approx(1.0)
        assert report["ok"]

    def test_empty_window_is_ok(self):
        report = evaluate_slo(SLO(name="x", series="s", objective=0.99),
                              SeriesStore(clock=FakeClock()))
        assert report == {
            "name": "x", "series": "s", "objective": 0.99,
            "window_s": 3600.0, "threshold_s": None,
            "total": 0, "good": 0, "compliance": 1.0,
            "burn_rate": 0.0, "error_budget_remaining": 1.0, "ok": True,
        }

    def test_window_excludes_old_samples(self):
        store = self._store([(100.0, 0.0), (990.0, 1.0)])
        slo = SLO(name="x", series="s", objective=0.9, window_s=60.0)
        report = evaluate_slo(slo, store)
        assert (report["total"], report["good"]) == (1, 1)

    def test_explicit_now_overrides_clock(self):
        store = self._store([(100.0, 0.0)])
        slo = SLO(name="x", series="s", objective=0.9, window_s=60.0)
        assert evaluate_slo(slo, store, now=120.0)["total"] == 1

    def test_evaluate_all(self):
        store = SeriesStore(clock=FakeClock())
        store.record("jobs.total_s", 0.5, t=999.0)
        store.record("jobs.ok", 1.0, t=999.0)
        reports = evaluate_slos(DEFAULT_SLOS, store)
        assert [r["name"] for r in reports] == [s.name for s in DEFAULT_SLOS]
        assert all(r["ok"] for r in reports)
