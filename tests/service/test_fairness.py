"""Fairness and rate-limit battery: WFQ, token buckets, 429 semantics.

The queue's weighted fair queueing must hold three promises:

* **weight ratio** — clients draining a contended queue are served in
  proportion to their configured weights (a 3:1 weight split yields a 9:3
  split over the first 12 dispatches);
* **no starvation** — a greedy client with a deep backlog cannot push a
  slow client's fresh submission behind its whole queue; WFQ bounds the
  slow client's wait to ~one virtual slot;
* **FIFO degeneration** — with a single (or anonymous) client, dispatch
  order is exactly the old priority-then-FIFO order, so sharding+WFQ is
  invisible to existing consumers.

The rate limiter's promises are mechanical and tested with a fake clock:
burst capacity, refill rate, and the retry-after arithmetic the HTTP 429
path surfaces via ``Retry-After`` (header) and ``retry_after_s`` (body).
"""

from __future__ import annotations

import asyncio
import http.client
import json

import pytest

from repro.harness.runner import SimJob, clear_run_cache
from repro.service import (
    ClientError,
    JobQueue,
    RateLimiter,
    ServiceClient,
    ServiceMetrics,
    ServiceSettings,
    TokenBucket,
)

from .conftest import LiveService

FAST = dict(scale=0.1, iterations=2)


def sim(workload: str = "jacobi", iterations: int = 2) -> SimJob:
    return SimJob(workload, "gps", 2, scale=0.1, iterations=iterations)


def in_loop(coro_fn):
    return asyncio.run(coro_fn())


@pytest.fixture
def queue():
    clear_run_cache()
    return JobQueue(ServiceMetrics(), max_depth=128)


class TestWeightedFairQueueing:
    def test_weight_ratio_over_contended_queue(self, queue):
        """Weight 3 vs weight 1 → 9:3 across the first 12 dispatches."""

        async def body():
            heavy = [
                queue.submit(sim("jacobi", iterations=i + 1), client="heavy", weight=3.0)
                for i in range(12)
            ]
            light = [
                queue.submit(sim("pagerank", iterations=i + 1), client="light", weight=1.0)
                for i in range(12)
            ]
            batch = queue.pop_ready(12)
            heavy_ids = {job.id for job in heavy}
            light_ids = {job.id for job in light}
            served_heavy = sum(1 for job in batch if job.id in heavy_ids)
            served_light = sum(1 for job in batch if job.id in light_ids)
            assert (served_heavy, served_light) == (9, 3)

        in_loop(body)

    def test_greedy_client_never_starves_a_slow_one(self, queue):
        """A fresh submission lands within ~one slot, not behind the backlog."""

        async def body():
            for i in range(20):
                queue.submit(sim("jacobi", iterations=i + 1), client="greedy")
            # Serve a few greedy jobs first so the queue's virtual time has
            # advanced past the greedy client's head-of-line stamps.
            queue.pop_ready(4)
            slow = queue.submit(sim("pagerank"), client="slow")
            next_two = queue.pop_ready(2)
            assert slow.id in {job.id for job in next_two}

        in_loop(body)

    def test_ten_to_one_submit_rates_interleave(self, queue):
        """30 greedy jobs queued ahead of 3 slow ones: equal weights mean
        the slow client finishes within the first 6 dispatches, not at the
        tail of the greedy backlog."""

        async def body():
            for i in range(30):
                queue.submit(sim("jacobi", iterations=i + 1), client="fast")
            slow = [
                queue.submit(sim("pagerank", iterations=i + 1), client="slow")
                for i in range(3)
            ]
            first_six = queue.pop_ready(6)
            served = {job.id for job in first_six}
            assert all(job.id in served for job in slow)

        in_loop(body)

    def test_single_client_degenerates_to_fifo(self, queue):
        """Anonymous submissions keep the exact historical dispatch order."""

        async def body():
            jobs = [queue.submit(sim("jacobi", iterations=i + 1)) for i in range(6)]
            batch = queue.pop_ready(6)
            assert [job.id for job in batch] == [job.id for job in jobs]

        in_loop(body)

    def test_priority_still_dominates_weights(self, queue):
        """Priority classes outrank fairness: WFQ only orders within one."""

        async def body():
            low = queue.submit(sim("jacobi"), priority=0, client="heavy", weight=100.0)
            high = queue.submit(sim("pagerank"), priority=5, client="light", weight=0.01)
            batch = queue.pop_ready(2)
            assert [job.id for job in batch] == [high.id, low.id]

        in_loop(body)

    def test_retry_keeps_original_stamp(self, queue):
        """A retried job re-enters at its original virtual finish time, so
        a retry never jumps ahead of jobs admitted before the failure."""

        async def body():
            first = queue.submit(sim("jacobi"), client="a")
            second = queue.submit(sim("pagerank"), client="a")
            (popped,) = queue.pop_ready(1)
            assert popped.id == first.id
            queue.mark_running(popped.key)
            queue.record_attempt(popped.key)
            queue.requeue(popped.key)
            replay = queue.pop_ready(2)
            assert [job.id for job in replay] == [first.id, second.id]

        in_loop(body)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestTokenBucket:
    def test_burst_then_throttle(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert [bucket.try_take() for _ in range(3)] == [0.0, 0.0, 0.0]
        retry = bucket.try_take()
        assert retry == pytest.approx(1.0)

    def test_refill_restores_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
        bucket.try_take()
        bucket.try_take()
        assert bucket.try_take() > 0
        clock.advance(0.5)  # 2/s for 0.5s = one token back
        assert bucket.try_take() == 0.0
        assert bucket.try_take() == pytest.approx(0.5)

    def test_bucket_never_overfills(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(3600.0)
        assert bucket.tokens == pytest.approx(2.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)

    def test_limiter_isolates_clients(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=1.0, burst=1, clock=clock)
        assert limiter.check("a") == 0.0
        assert limiter.check("a") > 0.0  # a is throttled...
        assert limiter.check("b") == 0.0  # ...but b has its own bucket


class TestHTTPRateLimiting:
    def test_429_with_retry_after(self, fast_settings):
        clear_run_cache()
        settings = ServiceSettings(
            **{**fast_settings.__dict__, "rate_limit": 0.5, "rate_burst": 2}
        )
        service = LiveService(settings)
        try:
            client = ServiceClient(service.url, client="bursty")
            jobs = [client.submit("jacobi", gpus=2, **FAST)]
            jobs.append(client.submit("pagerank", gpus=2, **FAST))
            with pytest.raises(ClientError) as excinfo:
                client.submit("sssp", gpus=2, **FAST)
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after_s is not None
            assert excinfo.value.retry_after_s > 0
            for job in jobs:
                client.wait(job["id"], timeout=300)
            metrics = client.metrics()
            assert metrics["service.ratelimit.allowed"] == 2
            assert metrics["service.ratelimit.throttled"] == 1
        finally:
            service.stop(drain=False)
            clear_run_cache()

    def test_retry_after_header_is_set(self, fast_settings):
        clear_run_cache()
        settings = ServiceSettings(
            **{**fast_settings.__dict__, "rate_limit": 0.01, "rate_burst": 1}
        )
        service = LiveService(settings)
        try:
            client = ServiceClient(service.url, client="one-shot")
            first = client.submit("jacobi", gpus=2, **FAST)
            # Second submission over raw http.client so the header itself
            # (not just the body field) is observable.
            conn = http.client.HTTPConnection(
                service.service.host, service.service.port, timeout=10
            )
            try:
                body = json.dumps(
                    {"workload": "pagerank", "gpus": 2, **FAST}
                )
                conn.request(
                    "POST",
                    "/jobs",
                    body=body,
                    headers={
                        "Content-Type": "application/json",
                        "x-repro-client": "one-shot",
                    },
                )
                response = conn.getresponse()
                payload = json.loads(response.read())
                assert response.status == 429
                header = response.getheader("Retry-After")
                assert header is not None and int(header) >= 1
                assert payload["retry_after_s"] > 0
            finally:
                conn.close()
            client.wait(first["id"], timeout=300)
        finally:
            service.stop(drain=False)
            clear_run_cache()

    def test_anonymous_and_distinct_clients_have_own_buckets(self, fast_settings):
        clear_run_cache()
        settings = ServiceSettings(
            **{**fast_settings.__dict__, "rate_limit": 0.01, "rate_burst": 1}
        )
        service = LiveService(settings)
        try:
            a = ServiceClient(service.url, client="alpha")
            b = ServiceClient(service.url, client="beta")
            first = a.submit("jacobi", gpus=2, **FAST)
            with pytest.raises(ClientError):
                a.submit("pagerank", gpus=2, **FAST)
            # beta is untouched by alpha exhausting its bucket.
            second = b.submit("sssp", gpus=2, **FAST)
            for job in (first, second):
                assert ServiceClient(service.url).wait(job["id"], timeout=300)
        finally:
            service.stop(drain=False)
            clear_run_cache()

    def test_rate_limiting_off_by_default(self, live_service):
        client = live_service.client()
        for name in ("jacobi", "pagerank", "sssp", "ct"):
            client.submit(name, gpus=2, **FAST)
        assert "service.ratelimit.allowed" in client.metrics()


class TestClientWeightsEndToEnd:
    def test_weights_flow_from_settings_to_queue(self, fast_settings):
        """Configured client weights shape dispatch order on a live service."""
        clear_run_cache()
        settings = ServiceSettings(
            **{
                **fast_settings.__dict__,
                "client_weights": {"heavy": 3.0, "light": 1.0},
            }
        )
        service = LiveService(settings)
        try:
            assert service.service is not None
            assert service.service._weights == {"heavy": 3.0, "light": 1.0}
            heavy = ServiceClient(service.url, client="heavy")
            job = heavy.submit("jacobi", gpus=2, **FAST)
            assert heavy.wait(job["id"], timeout=300)["state"] == "done"
        finally:
            service.stop(drain=False)
            clear_run_cache()
