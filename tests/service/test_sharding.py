"""The sharded-scheduler battery: identity, assignment, drain, coalescing.

The tentpole claim of the shard pool is that it is *pure topology*: carving
the single queue+scheduler pair into N fingerprint-partitioned shards must
never change a single result byte, must keep coalescing exact within a
shard, and must let one shard quiesce while the rest keep serving. Every
test here attacks one of those claims:

* differential identity — the full 8-workload grid through direct
  ``run_many``, a 1-shard service, and a 4-shard service, byte-compared;
* shard assignment — property tests that :func:`shard_for_key` is total,
  stable, in-range, and process-independent (pure function of the key);
* rolling drain — ``POST /drain?shard=i`` under both the ``reroute`` and
  ``reject`` policies, with the other shard provably unaffected;
* concurrent store commits — shards persisting simultaneously through the
  shared sink never lose a record.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.harness.runner import SimJob, clear_run_cache, run_many
from repro.service import ClientError, ServiceSettings, shard_for_key
from repro.workloads.registry import workload_names

from .conftest import LiveService

FAST = dict(scale=0.1, iterations=2)
GPUS = 2


def sharded(fast_settings: ServiceSettings, shards: int, **extra) -> ServiceSettings:
    return ServiceSettings(**{**fast_settings.__dict__, "shards": shards, **extra})


def grid_jobs() -> "list[SimJob]":
    return [SimJob(name, "gps", GPUS, **FAST) for name in workload_names()]


def home_shard(workload: str, shards: int) -> int:
    return shard_for_key(SimJob(workload, "gps", GPUS, **FAST).key(), shards)


class TestShardAssignment:
    def test_one_shard_is_identity(self):
        for job in grid_jobs():
            assert shard_for_key(job.key(), 1) == 0

    def test_grid_assignment_is_stable_and_total(self):
        first = {job.key(): shard_for_key(job.key(), 4) for job in grid_jobs()}
        second = {job.key(): shard_for_key(job.key(), 4) for job in grid_jobs()}
        assert first == second
        assert all(0 <= shard < 4 for shard in first.values())
        # The 8-workload grid should not degenerate onto one shard.
        assert len(set(first.values())) > 1

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            shard_for_key("ab" * 32, 0)

    def test_non_hex_keys_still_route(self):
        # Fingerprints are hex in practice; the crc32 fallback keeps the
        # router total over arbitrary strings anyway.
        assert 0 <= shard_for_key("not-hex-at-all", 4) < 4

    @given(key=st.text(min_size=1, max_size=64), shards=st.integers(1, 16))
    @settings(max_examples=100, deadline=None)
    def test_total_stable_in_range(self, key: str, shards: int):
        first = shard_for_key(key, shards)
        assert first == shard_for_key(key, shards)
        assert 0 <= first < shards

    @given(seed=st.integers(0, 2**31), shards=st.integers(2, 8))
    @settings(max_examples=50, deadline=None)
    def test_real_fingerprints_route_in_range(self, seed: int, shards: int):
        key = SimJob("jacobi", "gps", GPUS, scale=0.1, iterations=1 + seed % 7).key()
        assert 0 <= shard_for_key(key, shards) < shards


class TestDifferentialIdentity:
    """N shards, 1 shard, and direct execution agree byte-for-byte."""

    def test_grid_byte_identical_across_shard_counts(self, fast_settings):
        jobs = grid_jobs()

        def through_service(shards: int) -> "list[str]":
            clear_run_cache()  # every path computes from scratch
            service = LiveService(sharded(fast_settings, shards))
            try:
                client = service.client()
                tickets = [
                    client.submit(job.workload, gpus=job.num_gpus, **FAST)
                    for job in jobs
                ]
                payloads = [client.wait(t["id"], timeout=300) for t in tickets]
                if shards > 1:
                    # The pool actually spread the grid across shards.
                    assert len({t["shard"] for t in tickets}) > 1
                for ticket, job in zip(tickets, jobs):
                    assert ticket["shard"] == shard_for_key(job.key(), shards)
                return [
                    json.dumps(p["result"], sort_keys=True) for p in payloads
                ]
            finally:
                service.stop(drain=False)

        clear_run_cache()
        direct = [
            json.dumps(r.to_dict(), sort_keys=True)
            for r in run_many(jobs, max_workers=1)
        ]
        assert through_service(1) == direct
        assert through_service(4) == direct
        clear_run_cache()


class TestShardedCoalescing:
    def test_duplicates_coalesce_within_their_shard(self, fast_settings):
        clear_run_cache()
        service = LiveService(sharded(fast_settings, 4))
        try:
            client = service.client()
            first = client.submit("jacobi", gpus=GPUS, **FAST)
            dup = client.submit("jacobi", gpus=GPUS, **FAST)
            assert dup["shard"] == first["shard"]
            assert dup["coalesced"] or dup["cache_hit"]
            a = client.wait(first["id"], timeout=300)
            b = client.wait(dup["id"], timeout=300)
            assert json.dumps(a["result"], sort_keys=True) == json.dumps(
                b["result"], sort_keys=True
            )
            metrics = client.metrics()
            assert (
                metrics["service.queue.coalesced"]
                + metrics["service.queue.cache_hits"]
                == 1
            )
            # The duplicate counted on its shard's scope too.
            shard_scope = f"service.shard{first['shard']}"
            assert (
                metrics[f"{shard_scope}.queue.coalesced"]
                + metrics[f"{shard_scope}.queue.cache_hits"]
                == 1
            )
        finally:
            service.stop(drain=False)
            clear_run_cache()

    def test_per_shard_metrics_roll_up(self, fast_settings):
        clear_run_cache()
        service = LiveService(sharded(fast_settings, 2))
        try:
            client = service.client()
            for name in ("jacobi", "pagerank", "sssp"):
                client.wait(client.submit(name, gpus=GPUS, **FAST)["id"], timeout=300)
            metrics = client.metrics()
            per_shard = [
                metrics[f"service.shard{i}.jobs.completed"] for i in range(2)
            ]
            # Global view is the exact sum of the shard views — the rollup
            # neither double-counts nor drops.
            assert sum(per_shard) == metrics["service.jobs.completed"] == 3
            assert metrics["service.queue.accepted"] == sum(
                metrics[f"service.shard{i}.queue.accepted"] for i in range(2)
            )
        finally:
            service.stop(drain=False)
            clear_run_cache()


def _split_workloads() -> "tuple[str, str]":
    """One workload homed on shard 0 and one on shard 1 (of 2)."""
    by_home: "dict[int, str]" = {}
    for name in workload_names():
        by_home.setdefault(home_shard(name, 2), name)
    assert set(by_home) == {0, 1}, "grid unexpectedly degenerate"
    return by_home[0], by_home[1]


class TestRollingDrain:
    def test_reroute_policy_keeps_serving(self, fast_settings):
        clear_run_cache()
        on_zero, on_one = _split_workloads()
        service = LiveService(sharded(fast_settings, 2))
        try:
            client = service.client()
            # Work in flight on the shard we are about to drain completes.
            inflight = client.submit(on_zero, gpus=GPUS, **FAST)
            assert inflight["shard"] == 0
            ack = client.drain(0)
            assert ack["status"] == "draining"
            assert ack["policy"] == "reroute"
            assert ack["live_shards"] == [1]
            done = client.wait(inflight["id"], timeout=300)
            assert done["state"] == "done"

            # New work homed on the drained shard reroutes to the live one
            # (work already homed elsewhere keeps its home).
            rerouted = client.submit(on_zero, gpus=4, **FAST)
            assert rerouted["shard"] == 1
            assert client.wait(rerouted["id"], timeout=300)["state"] == "done"

            # The other shard is untouched.
            other = client.submit(on_one, gpus=GPUS, **FAST)
            assert other["shard"] == 1
            assert client.wait(other["id"], timeout=300)["state"] == "done"

            health = client.healthz()
            drained, live = health["shards"]
            assert drained["shard"] == 0 and drained["draining"]
            assert live["shard"] == 1 and not live["draining"]

            # Draining an already-draining shard is an idempotent 202.
            assert client.drain(0)["status"] == "draining"
        finally:
            service.stop(drain=False)
            clear_run_cache()

    def test_reject_policy_503s_homed_jobs(self, fast_settings):
        clear_run_cache()
        on_zero, on_one = _split_workloads()
        service = LiveService(sharded(fast_settings, 2, drain_policy="reject"))
        try:
            client = service.client()
            client.drain(0)
            with pytest.raises(ClientError) as excinfo:
                client.submit(on_zero, gpus=GPUS, **FAST)
            assert excinfo.value.status == 503
            # The live shard still serves its own jobs.
            job = client.submit(on_one, gpus=GPUS, **FAST)
            assert job["shard"] == 1
            assert client.wait(job["id"], timeout=300)["state"] == "done"
        finally:
            service.stop(drain=False)
            clear_run_cache()

    def test_all_shards_drained_means_503(self, fast_settings):
        service = LiveService(sharded(fast_settings, 2))
        try:
            client = service.client()
            client.drain(0)
            client.drain(1)
            with pytest.raises(ClientError) as excinfo:
                client.submit("jacobi", gpus=GPUS, **FAST)
            assert excinfo.value.status == 503
        finally:
            service.stop(drain=False)

    def test_drain_validates_its_target(self, fast_settings):
        service = LiveService(sharded(fast_settings, 2))
        try:
            client = service.client()
            with pytest.raises(ClientError) as excinfo:
                client.drain(7)
            assert excinfo.value.status == 404
            status, payload = client._request("POST", "/drain")
            assert status == 400
            assert "shard" in payload["error"]
        finally:
            service.stop(drain=False)
