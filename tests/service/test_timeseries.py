"""SeriesStore: ring bounds, windowing, server-side bucketing, percentiles."""

import pytest

from repro.service import SeriesStore, percentile


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


class TestPercentile:
    def test_endpoints_and_median(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 4.0
        assert percentile(values, 50.0) == 2.5

    def test_linear_interpolation(self):
        assert percentile([0.0, 10.0], 25.0) == 2.5

    def test_single_sample(self):
        assert percentile([7.0], 99.0) == 7.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)


class TestRecording:
    def test_record_and_names(self):
        store = SeriesStore(clock=FakeClock())
        store.record("jobs.run_s", 0.5)
        store.record("jobs.wait_s", 0.1)
        assert store.names() == ["jobs.run_s", "jobs.wait_s"]

    def test_ring_evicts_oldest(self):
        clock = FakeClock()
        store = SeriesStore(max_samples=2, clock=clock)
        for i in range(4):
            clock.t = 1000.0 + i
            store.record("x", float(i))
        assert store.evicted == 2
        rows = store.window("x", 0.0, float("inf"))
        assert [value for _, value in rows] == [2.0, 3.0]

    def test_explicit_timestamp_wins(self):
        store = SeriesStore(clock=FakeClock(1000.0))
        store.record("x", 1.0, t=500.0)
        assert store.window("x", 0.0, 600.0) == [(500.0, 1.0)]

    def test_window_is_half_open(self):
        clock = FakeClock()
        store = SeriesStore(clock=clock)
        for t in (10.0, 20.0, 30.0):
            store.record("x", t, t=t)
        assert [t for t, _ in store.window("x", 10.0, 30.0)] == [10.0, 20.0]
        assert store.window("unknown", 0.0, 100.0) == []


class TestBucketing:
    def _store(self):
        store = SeriesStore(clock=FakeClock())
        # Two buckets at 60s alignment: [60, 120) and [180, 240).
        for t, value in ((65.0, 1.0), (70.0, 3.0), (119.0, 2.0), (185.0, 10.0)):
            store.record("x", value, t=t)
        return store

    def test_buckets_are_floor_aligned(self):
        rows = self._store().bucketed("x", 60.0)
        assert [row["t"] for row in rows] == [60.0, 180.0]

    def test_bucket_stats(self):
        first, second = self._store().bucketed("x", 60.0)
        assert first["count"] == 3
        assert (first["min"], first["max"]) == (1.0, 3.0)
        assert first["avg"] == pytest.approx(2.0)
        assert first["p50"] == 2.0
        assert first["p99"] == pytest.approx(percentile([1.0, 2.0, 3.0], 99.0))
        assert second == {
            "t": 180.0, "count": 1, "min": 10.0, "max": 10.0,
            "avg": 10.0, "p50": 10.0, "p99": 10.0,
        }

    def test_empty_buckets_are_skipped(self):
        rows = self._store().bucketed("x", 60.0)
        assert all(row["count"] > 0 for row in rows)

    def test_start_end_clamp(self):
        rows = self._store().bucketed("x", 60.0, start=180.0)
        assert [row["t"] for row in rows] == [180.0]

    def test_bad_bucket_raises(self):
        with pytest.raises(ValueError):
            self._store().bucketed("x", 0.0)


class TestSummary:
    def test_summary_window(self):
        clock = FakeClock(1000.0)
        store = SeriesStore(clock=clock)
        store.record("x", 5.0, t=100.0)  # outside the window
        store.record("x", 1.0, t=950.0)
        store.record("x", 3.0, t=990.0)
        summary = store.summary("x", window_s=100.0)
        assert summary["count"] == 2
        assert summary["avg"] == 2.0

    def test_empty_summary_is_none(self):
        store = SeriesStore(clock=FakeClock())
        assert store.summary("missing", 60.0) is None
