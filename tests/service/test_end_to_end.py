"""End-to-end acceptance: the full Table 2 suite through the service.

Submits all 8 workloads (two of them duplicated, exercising coalescing),
polls every job to completion, and asserts the service's result payloads
byte-match direct ``run_many()`` output — the serving tier must be a pure
transport around the deterministic runner, never a source of drift.
"""

import json

from repro.harness.runner import SimJob, clear_run_cache, fleet_stats, run_many
from repro.workloads.registry import workload_names

FAST = dict(scale=0.1, iterations=2)
GPUS = 2
DUPLICATED = ("jacobi", "ct")


class TestEndToEnd:
    def test_all_workloads_round_trip_and_byte_match(self, live_service):
        client = live_service.client()
        names = list(workload_names())
        assert len(names) == 8
        submissions = names + list(DUPLICATED)

        jobs = [
            client.submit(name, gpus=GPUS, **FAST)
            for name in submissions
        ]
        payloads = [client.wait(job["id"], timeout=300) for job in jobs]

        # Every job completed with a full result payload.
        for job, payload in zip(jobs, payloads):
            assert payload["state"] == "done"
            assert payload["id"] == job["id"]
            assert payload["result"]["total_time"] > 0

        # Duplicated submissions coalesced (or hit the cache) and produced
        # byte-identical payloads to their originals.
        for name in DUPLICATED:
            original = json.dumps(payloads[names.index(name)]["result"], sort_keys=True)
            duplicate = json.dumps(payloads[submissions.index(name, 8)]["result"],
                                   sort_keys=True)
            assert original == duplicate
        metrics = client.metrics()
        assert (
            metrics["service.queue.coalesced"] + metrics["service.queue.cache_hits"]
            == len(DUPLICATED)
        )
        # Exactly 8 distinct simulations ran, not 10.
        assert metrics["service.runner.fleet.jobs_computed"] == 8

        # Byte-match against the direct in-process API on identical jobs.
        direct = run_many(
            [SimJob(name, "gps", GPUS, **FAST) for name in submissions],
            max_workers=1,
        )
        for payload, result in zip(payloads, direct):
            assert json.dumps(payload["result"], sort_keys=True) == json.dumps(
                result.to_dict(), sort_keys=True
            )
        # ... and the direct pass was served from the shared memo: the
        # service populated it, so nothing recomputed.
        assert fleet_stats().jobs_computed == 8
