"""Distributed tracing through the queue: re-parenting, links, golden export.

The golden test drives the :class:`JobQueue` state machine directly inside
``asyncio.run`` — with sequential ids and a fake clock the whole span tree
(client root -> request -> queue.wait -> execute -> run -> engine spans) is
deterministic down to the byte, so the Perfetto export is pinned to a
committed baseline file.
"""

import asyncio
import json
from pathlib import Path

import pytest

from repro.harness.runner import SimJob, clear_run_cache
from repro.obs import validate_chrome_trace
from repro.obs.distributed import (
    SequentialIds,
    TraceContext,
    TraceStore,
    derived_span_id,
    distributed_chrome_trace,
    dump_chrome_trace,
    set_id_generator,
)
from repro.service import JobQueue, ServiceMetrics

GOLDEN = Path(__file__).parent / "baselines" / "distributed_trace.golden.json"

#: Synthetic engine output, as the worker's ``Span.to_dict`` list.
ENGINE_PAYLOADS = [
    {"name": "k1", "category": "kernel", "track": "gpu0",
     "start": 0.0, "end": 2.0, "attrs": {"gpu": 0}},
    {"name": "x1", "category": "transfer", "track": "egress0",
     "start": 2.0, "end": 3.5, "attrs": {}},
]


class FakeClock:
    def __init__(self, t: float = 1000.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t

    def tick(self, dt: float = 1.0) -> float:
        self.t += dt
        return self.t


@pytest.fixture
def sequential_ids():
    clear_run_cache()  # a memo hit would short-circuit the queue path
    set_id_generator(SequentialIds())
    yield
    set_id_generator(None)


def drive_full_chain(clock: FakeClock) -> "tuple[TraceStore, str]":
    """One traced submission through the whole queue lifecycle."""
    store = TraceStore(clock=clock)
    queue = JobQueue(ServiceMetrics(), tracer=store)
    context = TraceContext.mint()

    async def _drive() -> None:
        job = queue.submit(SimJob("jacobi", "gps", 2, "pcie6", 0.25, 2), trace=context)
        clock.tick(0.5)  # queue wait
        (primary,) = queue.pop_ready(1)
        queue.note_scheduled(primary.key, batch_seq=1, batch_size=1)
        queue.mark_running(primary.key)
        clock.tick(2.0)  # the attempt runs
        queue.attach_spans(primary.key, ENGINE_PAYLOADS, evicted=0)
        queue.finish(primary.key, result=None)
        assert job.state.value == "done"

    asyncio.run(_drive())
    return store, context.trace_id


class TestFullChain:
    def test_span_topology(self, sequential_ids):
        clock = FakeClock()
        store, trace_id = drive_full_chain(clock)
        spans = {s.name: s for s in store.get(trace_id)}
        assert set(spans) == {"request", "queue.wait", "execute", "run", "k1", "x1"}

        request, wait = spans["request"], spans["queue.wait"]
        execute, run = spans["execute"], spans["run"]
        assert request.parent_id is not None  # the client's root span
        assert wait.parent_id == request.span_id
        assert execute.parent_id == request.span_id
        assert run.parent_id == execute.span_id
        assert spans["k1"].parent_id == run.span_id
        assert spans["k1"].span_id == derived_span_id(run.span_id, 0)
        assert all(s.trace_id == trace_id for s in spans.values())

        # queue.wait closes at dispatch; engine spans rebase onto the run.
        assert wait.duration == 0.5
        assert run.duration == 2.0
        assert spans["k1"].start == run.start
        assert spans["x1"].attrs["sim_end"] == 3.5
        assert request.attrs["outcome"] == "done"

    def test_export_matches_golden(self, sequential_ids):
        store, trace_id = drive_full_chain(FakeClock())
        payload = distributed_chrome_trace(trace_id, store.closure(trace_id))
        assert validate_chrome_trace(payload) == []
        text = dump_chrome_trace(payload)
        assert text == GOLDEN.read_text(), (
            "distributed trace export drifted; if intentional, regenerate "
            "with\n  PYTHONPATH=src:tests python -c \"from service.test_tracing "
            "import *; regenerate_golden()\""
        )

    def test_export_has_both_lanes_and_synthesized_root(self, sequential_ids):
        store, trace_id = drive_full_chain(FakeClock())
        payload = distributed_chrome_trace(trace_id, store.closure(trace_id))
        slices = {e["name"]: e for e in payload["traceEvents"] if e["ph"] == "X"}
        assert slices["request"]["pid"] == 0
        assert slices["k1"]["pid"] == 1
        # The client never reported its span; the export synthesizes it.
        assert slices["client.submit"]["args"]["synthesized"] is True
        assert slices["request"]["args"]["parent_id"] == (
            slices["client.submit"]["args"]["span_id"]
        )


class TestCoalescedTraces:
    def drive(self, clock: FakeClock):
        """Two same-fingerprint submissions; the second coalesces."""
        store = TraceStore(clock=clock)
        queue = JobQueue(ServiceMetrics(), tracer=store)
        context_a, context_b = TraceContext.mint(), TraceContext.mint()
        sim = SimJob("jacobi", "gps", 2, "pcie6", 0.25, 2)

        async def _drive() -> None:
            job_a = queue.submit(sim, trace=context_a)
            clock.tick(0.25)
            job_b = queue.submit(SimJob("jacobi", "gps", 2, "pcie6", 0.25, 2),
                                 trace=context_b)
            assert job_b.coalesced and job_b.key == job_a.key
            clock.tick(0.25)
            (primary,) = queue.pop_ready(1)
            assert primary.id == job_a.id
            queue.note_scheduled(primary.key, batch_seq=1, batch_size=1)
            queue.mark_running(primary.key)
            clock.tick(1.0)
            queue.attach_spans(primary.key, ENGINE_PAYLOADS, evicted=0)
            queue.finish(primary.key, result=None)
            assert job_a.state.value == job_b.state.value == "done"

        asyncio.run(_drive())
        return store, context_a.trace_id, context_b.trace_id

    def test_two_traces_share_one_execution(self, sequential_ids):
        store, trace_a, trace_b = self.drive(FakeClock())
        assert trace_a != trace_b

        # The duplicate's own trace holds only its request + coalesced
        # marker; the closure pulls the shared execution in via the link.
        own = sorted(s.name for s in store.get(trace_b))
        assert own == ["coalesced", "request"]
        closure = sorted(s.name for s in store.closure(trace_b))
        assert closure == ["coalesced", "execute", "k1", "request", "run", "x1"]

        coalesced = next(s for s in store.get(trace_b) if s.name == "coalesced")
        execute = next(s for s in store.get(trace_a) if s.name == "execute")
        assert coalesced.links == [
            {"trace_id": trace_a, "span_id": execute.span_id}
        ]
        assert execute.attrs["group_size"] == 2
        # The primary's closure never leaks the duplicate's spans.
        assert "coalesced" not in {s.name for s in store.closure(trace_a)}

    def test_duplicate_export_is_byte_stable_and_valid(self, sequential_ids):
        store, trace_a, trace_b = self.drive(FakeClock())
        for trace_id in (trace_a, trace_b):
            payload = distributed_chrome_trace(trace_id, store.closure(trace_id))
            assert validate_chrome_trace(payload) == []
            assert dump_chrome_trace(payload) == dump_chrome_trace(
                distributed_chrome_trace(trace_id, store.closure(trace_id))
            )
        # The foreign execution subtree lands on a prefixed wall-clock track.
        payload = distributed_chrome_trace(trace_b, store.closure(trace_b))
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert {"coalesced", "execute", "run", "k1"} <= names


class TestLiveTracePropagation:
    FAST = dict(scale=0.1, iterations=2, gpus=2)

    def test_submit_carries_client_trace_end_to_end(self, live_service):
        client = live_service.client()
        job = client.submit("jacobi", **self.FAST)
        trace_id = job["client_trace"]["trace_id"]
        assert job["trace_id"] == trace_id
        client.wait(job["id"], timeout=60)

        trace = client.trace(trace_id)
        names = {span["name"] for span in trace["spans"]}
        assert {"request", "queue.wait", "execute", "run"} <= names
        engine = [s for s in trace["spans"] if s["kind"] == "engine"]
        assert engine, "engine spans were not re-parented under the trace"
        perfetto = client.trace(trace_id, perfetto=True)
        assert validate_chrome_trace(perfetto) == []
        # Terminal traces are frozen: two fetches serialise identically.
        again = client.trace(trace_id, perfetto=True)
        assert json.dumps(perfetto, sort_keys=True) == json.dumps(again, sort_keys=True)


def regenerate_golden() -> None:  # pragma: no cover - maintenance helper
    clear_run_cache()
    set_id_generator(SequentialIds())
    try:
        store, trace_id = drive_full_chain(FakeClock())
        payload = distributed_chrome_trace(trace_id, store.closure(trace_id))
        GOLDEN.write_text(dump_chrome_trace(payload))
        print(f"wrote {GOLDEN}")
    finally:
        set_id_generator(None)
