"""HTTP API tests against a live service on an ephemeral port."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.harness.runner import clear_run_cache
from repro.service import (
    ClientError,
    JobFailed,
    ServiceClient,
    ServiceSettings,
    parse_job_payload,
)

from .conftest import LiveService

FAST = dict(scale=0.1, iterations=2, gpus=2)


def raw_request(url, method="GET", body=None):
    """Talk to the server without the SDK, to pin the wire format."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    if data:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


class TestRoutes:
    def test_healthz(self, live_service):
        status, payload = raw_request(live_service.url + "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["draining"] is False

    def test_unknown_route_404(self, live_service):
        status, payload = raw_request(live_service.url + "/nope")
        assert status == 404
        assert "error" in payload

    def test_wrong_method_405(self, live_service):
        status, _ = raw_request(live_service.url + "/jobs", method="GET")
        assert status == 405

    def test_unknown_job_404(self, live_service):
        client = live_service.client()
        with pytest.raises(ClientError) as excinfo:
            client.status("job-999999")
        assert excinfo.value.status == 404

    def test_submit_rejects_bad_payloads(self, live_service):
        for body, fragment in [
            ({"workload": "zzz"}, "unknown workload"),
            ({"workload": "jacobi", "paradigm": "zzz"}, "unknown paradigm"),
            ({"workload": "jacobi", "link": "zzz"}, "unknown link"),
            ({"workload": "jacobi", "gpus": 0}, "gpus"),
            ({"workload": "jacobi", "scale": -1}, "scale"),
            ({"workload": "jacobi", "bogus": 1}, "unknown fields"),
        ]:
            status, payload = raw_request(live_service.url + "/jobs", "POST", body)
            assert status == 400, body
            assert fragment in payload["error"], body

    def test_submit_rejects_non_json_body(self, live_service):
        request = urllib.request.Request(
            live_service.url + "/jobs", data=b"{not json", method="POST"
        )
        try:
            with urllib.request.urlopen(request) as response:
                status = response.status
        except urllib.error.HTTPError as error:
            status = error.code
        assert status == 400

    def test_metrics_exposes_queue_depth_and_latency(self, live_service):
        metrics = live_service.client().metrics()
        assert "service.queue.depth" in metrics
        assert "service.latency.wait_s.count" in metrics
        assert "service.latency.run_s.le_inf" in metrics


class TestObservabilityRoutes:
    def test_healthz_reports_slo_and_trace(self, live_service):
        status, payload = raw_request(live_service.url + "/healthz")
        assert status == 200
        assert payload["trace"] is True
        assert {r["name"] for r in payload["slo"]} == {
            "job-latency-30s", "job-availability",
        }

    def test_prometheus_format_is_text(self, live_service):
        request = urllib.request.Request(
            live_service.url + "/metrics?format=prometheus"
        )
        with urllib.request.urlopen(request) as response:
            assert response.status == 200
            assert "text/plain" in response.headers["Content-Type"]
            text = response.read().decode()
        from repro.obs import promtext_problems

        assert promtext_problems(text) == []
        assert "service_queue_depth" in text

    def test_series_catalog_and_buckets(self, live_service):
        client = live_service.client()
        client.run("jacobi", timeout=60, **FAST)
        catalog = client.series()
        assert "jobs.total_s" in catalog["series"]
        payload = client.series("jobs.total_s", bucket_s=3600.0)
        assert payload["bucket_s"] == 3600.0
        assert sum(row["count"] for row in payload["buckets"]) >= 1
        row = payload["buckets"][0]
        assert {"t", "count", "min", "max", "avg", "p50", "p99"} <= set(row)

    def test_series_error_statuses(self, live_service):
        status, payload = raw_request(
            live_service.url + "/metrics/series?name=bogus"
        )
        assert status == 404
        assert "series" in payload  # the catalog rides along on the miss
        live_service.client().run("jacobi", timeout=60, **FAST)
        status, _ = raw_request(
            live_service.url + "/metrics/series?name=jobs.total_s&bucket=0"
        )
        assert status == 400

    def test_unknown_trace_404(self, live_service):
        status, payload = raw_request(live_service.url + "/traces/" + "0" * 32)
        assert status == 404
        assert "unknown trace id" in payload["error"]

    def test_tracing_disabled_404s_and_healthz_says_so(self, fast_settings, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_TRACE", "0")
        clear_run_cache()
        service = LiveService(ServiceSettings(**{**fast_settings.__dict__, "trace": False}))
        try:
            client = service.client()
            assert client.healthz()["trace"] is False
            job = client.run("jacobi", timeout=60, **FAST)
            assert job.get("trace_id") is None
            status, payload = raw_request(service.url + "/traces/" + "0" * 32)
            assert status == 404
            assert "disabled" in payload["error"]
        finally:
            service.stop(drain=False)
            clear_run_cache()

    def test_new_routes_reject_wrong_method(self, live_service):
        for path in ("/metrics/series", "/traces/abc", "/jobs/x/events"):
            status, _ = raw_request(live_service.url + path, method="POST")
            assert status == 405, path


class TestJobFlow:
    def test_submit_poll_result(self, live_service):
        client = live_service.client()
        job = client.submit("jacobi", **FAST)
        assert job["state"] in ("queued", "running", "done")
        assert job["id"].startswith("job-")
        payload = client.wait(job["id"], timeout=60)
        assert payload["state"] == "done"
        assert payload["result"]["program_name"].startswith("jacobi")
        assert payload["result"]["total_time"] > 0
        status = client.status(job["id"])
        assert status["state"] == "done"
        assert status["wait_s"] >= 0 and status["run_s"] >= 0

    def test_workload_alias_accepted(self, live_service):
        client = live_service.client()
        payload = client.run("stencil", timeout=60, **FAST)
        assert payload["result"]["program_name"].startswith("jacobi")

    def test_concurrent_identical_submissions_coalesce(self, live_service):
        client = live_service.client()
        # Two submissions race in over separate connections before the
        # batch window closes: exactly one simulation must run.
        jobs = {}

        def submit(slot):
            jobs[slot] = live_service.client().submit("ct", **FAST)

        threads = [threading.Thread(target=submit, args=(i,)) for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        first, second = jobs[0], jobs[1]
        assert first["key"] == second["key"]
        assert sorted([first["coalesced"], second["coalesced"]]) == [False, True]
        payloads = [
            client.wait(job["id"], timeout=60) for job in (first, second)
        ]
        raw = [json.dumps(p["result"], sort_keys=True) for p in payloads]
        assert raw[0] == raw[1]
        metrics = client.metrics()
        assert metrics["service.queue.coalesced"] == 1
        assert metrics["service.jobs.completed"] == 2
        assert metrics["service.runner.fleet.jobs_computed"] == 1

    def test_cache_hit_completes_instantly(self, live_service):
        client = live_service.client()
        first = client.run("jacobi", timeout=60, **FAST)
        job = client.submit("jacobi", **FAST)
        assert job["cache_hit"] is True
        assert job["state"] == "done"
        second = client.wait(job["id"], timeout=10)
        assert json.dumps(second["result"], sort_keys=True) == json.dumps(
            first["result"], sort_keys=True
        )

    def test_failed_job_reports_error(self, live_service, monkeypatch):
        # Break the compute path itself: with REPRO_MAX_WORKERS=1 the
        # scheduler computes serially in this process, so the patch reaches
        # the server thread and the job fails on every retry.
        from repro.harness.runner import parallel

        def explode(job):
            raise RuntimeError("injected compute failure")

        monkeypatch.setattr(parallel, "compute_job", explode)
        client = live_service.client()
        job = client.submit("eqwp", **FAST)
        with pytest.raises(JobFailed):
            client.wait(job["id"], timeout=60)
        status = client.status(job["id"])
        assert status["state"] == "failed"
        assert "injected compute failure" in status["error"]
        assert status["attempts"] == 2  # initial + fast_settings' 1 retry
        metrics = client.metrics()
        assert metrics["service.jobs.failed"] == 1
        assert metrics["service.jobs.retried"] == 1


class TestBackpressure:
    def test_full_queue_returns_429(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_WORKERS", "1")
        clear_run_cache()
        # Age window long enough that nothing dispatches while we fill the
        # one-slot queue.
        service = LiveService(
            ServiceSettings(
                host="127.0.0.1",
                port=0,
                queue_depth=1,
                batch_size=4,
                max_wait_s=30.0,
                max_workers=1,
            )
        )
        try:
            client = service.client()
            client.submit("jacobi", **FAST)
            with pytest.raises(ClientError) as excinfo:
                client.submit("pagerank", **FAST)
            assert excinfo.value.status == 429
            assert client.metrics()["service.queue.rejected"] == 1
        finally:
            service.stop(drain=False)
            clear_run_cache()


class TestShutdown:
    def test_drain_completes_inflight_work(self, fast_settings):
        clear_run_cache()
        service = LiveService(fast_settings)
        client = service.client()
        job = client.submit("jacobi", **FAST)
        client.shutdown(drain=True)
        service._thread.join(60)
        assert not service._thread.is_alive()
        # The job settled before the server stopped: its future resolved.
        queue_job = service.service.queue.get(job["id"])
        assert queue_job.state.value == "done"
        clear_run_cache()

    def test_draining_service_rejects_new_jobs(self, fast_settings):
        clear_run_cache()
        service = LiveService(fast_settings)
        try:
            client = service.client()
            client.submit("jacobi", **FAST)  # keeps the drain busy briefly
            service.service.queue.close()
            with pytest.raises(ClientError) as excinfo:
                client.submit("pagerank", **FAST)
            assert excinfo.value.status == 503
        finally:
            service.stop(drain=False)
            clear_run_cache()


class TestPayloadValidation:
    def test_parse_job_payload_round_trip(self):
        sim, priority = parse_job_payload(
            {"workload": "stencil", "gpus": 2, "scale": 0.25, "priority": 3}
        )
        assert sim.workload == "jacobi"
        assert sim.paradigm == "gps"
        assert sim.num_gpus == 2
        assert priority == 3

    def test_parse_job_payload_rejects_non_object(self):
        with pytest.raises(ValueError):
            parse_job_payload([1, 2, 3])

    def test_parse_job_payload_rejects_bool_ints(self):
        with pytest.raises(ValueError):
            parse_job_payload({"workload": "jacobi", "gpus": True})
