"""Fixtures for the service suite: live servers on ephemeral ports.

``live_service`` boots a full :class:`SimulationService` (HTTP + scheduler)
in a background thread with its own event loop, bound to port 0, and tears
it down through the client's ``/shutdown`` route. Tests that only need the
queue or scheduler drive them directly inside ``asyncio.run`` instead.
"""

from __future__ import annotations

import threading

import pytest

from repro.harness.runner import clear_run_cache
from repro.service import ServiceClient, ServiceSettings, SimulationService


class LiveService:
    """Handle on a service running in a background thread."""

    def __init__(self, settings: ServiceSettings) -> None:
        import asyncio

        self.settings = settings
        self.service: "SimulationService | None" = None
        self._started = threading.Event()

        def _run() -> None:
            async def _main() -> None:
                self.service = SimulationService(settings)
                await self.service.start()
                self._started.set()
                await self.service.serve_forever()

            asyncio.run(_main())

        self._thread = threading.Thread(target=_run, daemon=True)
        self._thread.start()
        assert self._started.wait(10), "service failed to start"

    @property
    def url(self) -> str:
        assert self.service is not None
        return f"http://{self.service.host}:{self.service.port}"

    def client(self, timeout: float = 30.0) -> ServiceClient:
        return ServiceClient(self.url, timeout=timeout)

    def stop(self, drain: bool = True) -> None:
        if self._thread.is_alive():
            try:
                self.client(timeout=5.0).shutdown(drain=drain)
            except Exception:
                pass
            self._thread.join(30)
        assert not self._thread.is_alive(), "service thread failed to stop"


@pytest.fixture
def fast_settings(monkeypatch) -> ServiceSettings:
    """Small, serial, low-latency settings for tests."""
    monkeypatch.setenv("REPRO_MAX_WORKERS", "1")
    return ServiceSettings(
        host="127.0.0.1",
        port=0,
        queue_depth=32,
        batch_size=4,
        max_wait_s=0.02,
        max_retries=1,
        retry_backoff_s=0.01,
        max_workers=1,
    )


@pytest.fixture
def live_service(fast_settings):
    """A running service + blocking client against a clean memo cache."""
    clear_run_cache()
    service = LiveService(fast_settings)
    yield service
    service.stop(drain=False)
    clear_run_cache()
