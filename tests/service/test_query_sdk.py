"""The analytics SDK end-to-end: ``GET /query`` == direct store reads.

Boots a service with an attached result store, runs real jobs through it,
and asserts the whole read path — HTTP endpoint, blocking
:class:`QueryClient`, :class:`AsyncQueryClient`, and the ``repro query``
CLI verb — returns exactly what :func:`repro.store.query.run_query` says
when pointed at the same directory. The service must be a pure transport
over the query engine, the same way the submit path is a pure transport
over the runner.
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.cli import main as cli_main
from repro.harness.runner import clear_run_cache
from repro.service import (
    AsyncQueryClient,
    ClientError,
    QueryClient,
    QueryPayload,
    ServiceSettings,
)
from repro.store import ResultStore
from repro.store.query import run_query

from .conftest import LiveService

FAST = dict(scale=0.1, iterations=2)
SUBMITTED = (
    ("jacobi", 1),
    ("jacobi", 2),
    ("pagerank", 2),
    ("sssp", 4),
    ("ct", 2),
)


@pytest.fixture(scope="module")
def stored_service(tmp_path_factory):
    """A live service whose five completed jobs are persisted to a store."""
    store_dir = str(tmp_path_factory.mktemp("query-sdk") / "store")
    clear_run_cache()
    settings = ServiceSettings(
        host="127.0.0.1",
        port=0,
        queue_depth=32,
        batch_size=4,
        max_wait_s=0.02,
        max_retries=1,
        retry_backoff_s=0.01,
        max_workers=1,
        shards=2,
        store_dir=store_dir,
    )
    service = LiveService(settings)
    client = service.client()
    for workload, gpus in SUBMITTED:
        job = client.submit(workload, gpus=gpus, **FAST)
        assert client.wait(job["id"], timeout=300)["state"] == "done"
    # The sink commits after futures settle; wait for all five records.
    q = QueryClient(service.url)
    deadline = time.monotonic() + 30
    while len(q.query()) < len(SUBMITTED):
        assert time.monotonic() < deadline, "store sink never caught up"
        time.sleep(0.05)
    yield service, store_dir
    service.stop(drain=False)
    clear_run_cache()


@pytest.fixture(scope="module")
def direct_reader(stored_service):
    _, store_dir = stored_service
    return ResultStore.open(store_dir, legacy=False, auto_refresh=False).at(None)


class TestHTTPEquivalence:
    CASES = [
        dict(),
        dict(where=["workload=jacobi"]),
        dict(where=["num_gpus>=2", "paradigm=gps"]),
        dict(where=["workload=jacobi,pagerank"], order_by="-total_time"),
        dict(columns=["key", "workload", "total_time"], order_by="key"),
        dict(order_by="total_time", limit=2),
        dict(where=["workload=absent"]),
    ]

    def test_every_case_matches_direct_run_query(self, stored_service, direct_reader):
        service, _ = stored_service
        q = QueryClient(service.url)
        for case in self.CASES:
            frame = q.query(**case)
            expected = run_query(
                direct_reader,
                where=case.get("where"),
                columns=case.get("columns"),
                order_by=case.get("order_by"),
                limit=case.get("limit"),
            )
            assert frame.rows() == expected.rows(), case
            assert frame.column_names() == list(expected.column_names()), case
            assert frame.columns() == expected.columns(), case
        assert frame.snapshot == direct_reader.snapshot_id

    def test_async_client_agrees_with_sync(self, stored_service):
        service, _ = stored_service
        sync_frame = QueryClient(service.url).query(order_by="key")

        async def fetch():
            return await AsyncQueryClient(service.url).query(order_by="key")

        async_frame = asyncio.run(fetch())
        assert async_frame.rows() == sync_frame.rows()
        assert async_frame.snapshot == sync_frame.snapshot

    def test_time_travel_reads_pin_a_snapshot(self, stored_service, direct_reader):
        service, _ = stored_service
        q = QueryClient(service.url)
        frame = q.query(at=1)
        assert frame.snapshot == 1
        assert 0 < len(frame) < len(SUBMITTED)

    def test_bad_filter_is_a_400(self, stored_service):
        service, _ = stored_service
        with pytest.raises(ClientError) as excinfo:
            QueryClient(service.url).query(where=["nonsense"])
        assert excinfo.value.status == 400

    def test_no_store_means_404(self, live_service):
        with pytest.raises(ClientError) as excinfo:
            QueryClient(live_service.url).query()
        assert excinfo.value.status == 404
        assert "store" in str(excinfo.value)


class TestComposedFetch:
    def test_fan_out_merges_and_dedupes(self, stored_service):
        service, _ = stored_service
        q = QueryClient(service.url, pool_size=3)
        merged = q.fetch(
            [
                ["workload=jacobi"],
                ["workload=pagerank"],
                ["num_gpus>=1"],  # overlaps both — dedup must collapse it
            ],
            columns=["key", "workload"],
        )
        assert len(merged) == len(SUBMITTED)
        assert len({row["key"] for row in merged.rows()}) == len(SUBMITTED)

    def test_async_fetch_matches_sync(self, stored_service):
        service, _ = stored_service
        filter_sets = [["workload=jacobi"], ["workload=ct"]]
        sync = QueryClient(service.url).fetch(filter_sets, order_by="key")

        async def go():
            return await AsyncQueryClient(service.url).fetch(filter_sets, order_by="key")

        merged = asyncio.run(go())
        assert sorted(r["key"] for r in merged.rows()) == sorted(
            r["key"] for r in sync.rows()
        )


class TestBuckets:
    def test_series_buckets_over_http(self, stored_service):
        service, _ = stored_service
        q = QueryClient(service.url)
        names = q.series_names()
        assert "jobs.run_s" in names and "queue.depth" in names
        payload = q.buckets("jobs.run_s", bucket_s=3600.0)
        assert payload["name"] == "jobs.run_s"
        assert payload["bucket_s"] == 3600.0
        assert payload["buckets"], "completed jobs recorded no run_s samples"
        for bucket in payload["buckets"]:
            assert set(bucket) == {"t", "count", "min", "max", "avg", "p50", "p99"}
            assert bucket["min"] <= bucket["p50"] <= bucket["p99"] <= bucket["max"]

    def test_unknown_series_is_a_404(self, stored_service):
        service, _ = stored_service
        with pytest.raises(ClientError) as excinfo:
            QueryClient(service.url).buckets("no.such.series")
        assert excinfo.value.status == 404


class TestQueryPayloadMerge:
    def _frame(self, names, rows, snapshot=1):
        return QueryPayload(names, rows, snapshot)

    def test_column_union_keeps_first_order(self):
        merged = QueryPayload.merge(
            [
                self._frame(["a", "b"], [{"a": 1, "b": 2, "key": "x"}]),
                self._frame(["b", "c"], [{"b": 3, "c": 4, "key": "y"}]),
            ]
        )
        assert merged.column_names() == ["a", "b", "c"]
        assert len(merged) == 2

    def test_dedupe_first_wins(self):
        merged = QueryPayload.merge(
            [
                self._frame(["key", "v"], [{"key": "x", "v": 1}]),
                self._frame(["key", "v"], [{"key": "x", "v": 2}, {"key": "y", "v": 3}]),
            ]
        )
        assert merged.rows() == [{"key": "x", "v": 1}, {"key": "y", "v": 3}]

    def test_dedupe_off_keeps_multiset(self):
        merged = QueryPayload.merge(
            [
                self._frame(["key"], [{"key": "x"}]),
                self._frame(["key"], [{"key": "x"}]),
            ],
            dedupe=None,
        )
        assert len(merged) == 2

    def test_snapshot_survives_only_when_unanimous(self):
        same = QueryPayload.merge([self._frame(["k"], [], 3), self._frame(["k"], [], 3)])
        mixed = QueryPayload.merge([self._frame(["k"], [], 3), self._frame(["k"], [], 4)])
        assert same.snapshot == 3
        assert mixed.snapshot is None


class TestCLI:
    def test_repro_query_table(self, stored_service, capsys):
        service, _ = stored_service
        code = cli_main(
            [
                "query",
                "--url",
                service.url,
                "--where",
                "workload=jacobi",
                "--columns",
                "workload,num_gpus,total_time",
                "--order-by",
                "num_gpus",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 results" in out
        assert "jacobi" in out

    def test_repro_query_json_matches_sdk(self, stored_service, capsys):
        service, _ = stored_service
        code = cli_main(["query", "--url", service.url, "--json", "--order-by", "key"])
        assert code == 0
        printed = json.loads(capsys.readouterr().out)
        sdk = QueryClient(service.url).query(order_by="key").rows()
        assert printed == sdk

    def test_repro_query_buckets(self, stored_service, capsys):
        service, _ = stored_service
        code = cli_main(
            ["query", "--url", service.url, "--bucket", "jobs.run_s", "--bucket-s", "3600"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "jobs.run_s" in out and "p99" in out

    def test_service_error_exits_2(self, capsys):
        code = cli_main(["query", "--url", "http://127.0.0.1:1", "--limit", "1"])
        assert code == 2
        assert "service error" in capsys.readouterr().err
