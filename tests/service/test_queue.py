"""Unit tests for the priority job queue: coalescing, backpressure, order."""

import asyncio

import pytest

from repro.harness.runner import SimJob, clear_run_cache, run_simulation
from repro.service import JobQueue, JobState, QueueFull, ServiceClosed, ServiceMetrics

FAST = dict(scale=0.1, iterations=2)


def sim(workload="jacobi", paradigm="gps", gpus=2, **kwargs):
    return SimJob(workload, paradigm, gpus, **{**FAST, **kwargs})


def in_loop(coro_fn):
    """Run an async test body inside a fresh event loop."""
    return asyncio.run(coro_fn())


@pytest.fixture
def queue():
    clear_run_cache()
    metrics = ServiceMetrics()
    return JobQueue(metrics, max_depth=4), metrics


class TestSubmit:
    def test_accepts_and_tracks(self, queue):
        q, _ = queue

        async def body():
            job = q.submit(sim())
            assert job.state is JobState.QUEUED
            assert job.id == "job-000001"
            assert not job.coalesced and not job.cache_hit
            assert q.depth == 1 and q.inflight == 1
            assert q.get(job.id) is job
            assert q.get("job-999999") is None

        in_loop(lambda: body())

    def test_coalesces_identical_fingerprints(self, queue):
        q, metrics = queue

        async def body():
            a = q.submit(sim())
            b = q.submit(sim())
            assert b.coalesced and not a.coalesced
            assert a.future is b.future
            assert a.id != b.id
            # The duplicate consumed no queue slot.
            assert q.depth == 1
            snapshot = metrics.snapshot()
            assert snapshot["service.queue.coalesced"] == 1
            assert snapshot["service.queue.accepted"] == 1
            assert snapshot["service.queue.submitted"] == 2

        in_loop(lambda: body())

    def test_distinct_configs_do_not_coalesce(self, queue):
        q, _ = queue

        async def body():
            a = q.submit(sim(gpus=2))
            b = q.submit(sim(gpus=4))
            assert not b.coalesced
            assert a.future is not b.future
            assert q.depth == 2

        in_loop(lambda: body())

    def test_cached_result_short_circuits(self, queue):
        q, metrics = queue
        # Warm the memo outside the service, as a figure driver would.
        warm = run_simulation("jacobi", "gps", 2, **FAST)

        async def body():
            job = q.submit(sim())
            assert job.cache_hit
            assert job.state is JobState.DONE
            assert job.result is warm
            assert q.depth == 0 and q.inflight == 0
            assert metrics.snapshot()["service.queue.cache_hits"] == 1
            assert job.wait_s == 0.0 and job.run_s == 0.0

        in_loop(lambda: body())

    def test_backpressure_raises_queue_full(self, queue):
        q, metrics = queue

        async def body():
            for gpus in (1, 2, 4, 8):
                q.submit(sim(gpus=gpus))
            with pytest.raises(QueueFull):
                q.submit(sim(gpus=16))
            assert metrics.snapshot()["service.queue.rejected"] == 1
            # Coalescing still works at capacity — no slot needed.
            assert q.submit(sim(gpus=4)).coalesced

        in_loop(lambda: body())

    def test_closed_queue_rejects(self, queue):
        q, _ = queue

        async def body():
            q.close()
            with pytest.raises(ServiceClosed):
                q.submit(sim())

        in_loop(lambda: body())


class TestDispatchOrder:
    def test_priority_then_fifo(self, queue):
        q, _ = queue

        async def body():
            low = q.submit(sim(gpus=1), priority=0)
            high = q.submit(sim(gpus=2), priority=5)
            mid_a = q.submit(sim(gpus=4), priority=2)
            mid_b = q.submit(sim(gpus=8), priority=2)
            batch = q.pop_ready(10)
            assert [j.id for j in batch] == [high.id, mid_a.id, mid_b.id, low.id]

        in_loop(lambda: body())

    def test_pop_respects_limit(self, queue):
        q, _ = queue

        async def body():
            for gpus in (1, 2, 4):
                q.submit(sim(gpus=gpus))
            assert len(q.pop_ready(2)) == 2
            assert q.depth == 1

        in_loop(lambda: body())


class TestLifecycle:
    def test_finish_resolves_whole_group(self, queue):
        q, metrics = queue

        async def body():
            a = q.submit(sim())
            b = q.submit(sim())
            (primary,) = q.pop_ready(1)
            q.mark_running(primary.key)
            assert a.state is JobState.RUNNING and b.state is JobState.RUNNING
            result = run_simulation("jacobi", "gps", 2, **FAST)
            q.finish(primary.key, result=result)
            for job in (a, b):
                assert job.state is JobState.DONE
                assert job.result is result
                assert job.wait_s is not None and job.run_s is not None
            assert q.inflight == 0
            assert metrics.snapshot()["service.jobs.completed"] == 2

        in_loop(lambda: body())

    def test_finish_with_error_fails_group(self, queue):
        q, metrics = queue

        async def body():
            job = q.submit(sim())
            q.pop_ready(1)
            q.mark_running(job.key)
            q.finish(job.key, error=RuntimeError("worker crashed"))
            assert job.state is JobState.FAILED
            assert "worker crashed" in job.error
            assert job.result is None
            assert metrics.snapshot()["service.jobs.failed"] == 1

        in_loop(lambda: body())

    def test_requeue_returns_to_queue(self, queue):
        q, metrics = queue

        async def body():
            job = q.submit(sim())
            q.pop_ready(1)
            q.mark_running(job.key)
            assert q.record_attempt(job.key) == 1
            q.requeue(job.key)
            assert job.state is JobState.QUEUED
            assert q.depth == 1
            assert metrics.snapshot()["service.jobs.retried"] == 1
            (again,) = q.pop_ready(1)
            assert again is job

        in_loop(lambda: body())

    def test_abort_queued_fails_pending(self, queue):
        q, _ = queue

        async def body():
            job = q.submit(sim())
            assert q.abort_queued() == 1
            assert job.state is JobState.FAILED
            assert "shut down" in job.error

        in_loop(lambda: body())

    def test_as_dict_is_json_safe(self, queue):
        import json

        q, _ = queue

        async def body():
            job = q.submit(sim())
            payload = json.loads(json.dumps(job.as_dict()))
            assert payload["state"] == "queued"
            assert payload["job"]["workload"] == "jacobi"
            assert payload["key"] == job.key

        in_loop(lambda: body())
