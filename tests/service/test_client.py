"""Client SDK tests: URL resolution, error surfaces, the async client."""

import asyncio
import json

import pytest

from repro.errors import ServiceError
from repro.service import (
    AsyncServiceClient,
    ClientError,
    ServiceClient,
    service_url,
)

FAST = dict(scale=0.1, iterations=2, gpus=2)


class TestServiceUrl:
    def test_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_URL", "http://example:1")
        assert service_url("http://other:2") == "http://other:2"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_URL", "http://example:1")
        assert service_url() == "http://example:1"

    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SERVICE_URL", raising=False)
        assert service_url() == "http://127.0.0.1:8787"

    def test_non_http_scheme_rejected(self):
        with pytest.raises(ClientError):
            ServiceClient("https://secure:443")
        with pytest.raises(ClientError):
            AsyncServiceClient("ftp://nope:21")


class TestTransportErrors:
    def test_unreachable_service_raises_client_error(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=0.5)
        with pytest.raises(ClientError) as excinfo:
            client.healthz()
        assert excinfo.value.status is None
        # ClientError is part of the library-wide hierarchy.
        assert isinstance(excinfo.value, ServiceError)

    def test_async_unreachable_service_raises(self):
        async def body():
            client = AsyncServiceClient("http://127.0.0.1:9", timeout=0.5)
            with pytest.raises(ClientError):
                await client.healthz()

        asyncio.run(body())


class TestAsyncClient:
    def test_full_flow_matches_blocking_client(self, live_service):
        blocking = live_service.client()

        async def body():
            client = AsyncServiceClient(live_service.url)
            health = await client.healthz()
            assert health["status"] == "ok"
            payload = await client.run("als", timeout=60, **FAST)
            assert payload["state"] == "done"
            metrics = await client.metrics()
            assert metrics["service.jobs.completed"] >= 1
            return payload

        async_payload = asyncio.run(body())
        # Deterministic simulation: the blocking client sees the same bytes.
        blocking_payload = blocking.run("als", timeout=60, **FAST)
        assert json.dumps(async_payload["result"], sort_keys=True) == json.dumps(
            blocking_payload["result"], sort_keys=True
        )

    def test_async_status_and_pending_result(self, live_service):
        async def body():
            client = AsyncServiceClient(live_service.url)
            job = await client.submit("diffusion", **FAST)
            status = await client.status(job["id"])
            assert status["id"] == job["id"]
            # result() returns None while pending rather than raising.
            pending = await client.result(job["id"])
            assert pending is None or pending["state"] == "done"
            final = await client.wait(job["id"], timeout=60)
            assert final["result"]["total_time"] > 0

        asyncio.run(body())
