"""ServiceMetrics: stable key set, latency histograms, runner bridge."""

import json

from repro.harness.runner import SimJob, clear_run_cache, run_many
from repro.obs import CounterRegistry, Histogram
from repro.service import LATENCY_BUCKETS_S, ServiceMetrics


class TestStableSurface:
    def test_counters_exist_before_any_job(self):
        snapshot = ServiceMetrics().snapshot()
        for name in (
            "service.queue.submitted",
            "service.queue.accepted",
            "service.queue.coalesced",
            "service.queue.cache_hits",
            "service.queue.rejected",
            "service.queue.depth",
            "service.queue.inflight",
            "service.jobs.completed",
            "service.jobs.failed",
            "service.jobs.retried",
            "service.scheduler.batches",
            "service.scheduler.batched_jobs",
            "service.latency.wait_s.count",
            "service.latency.run_s.count",
            "service.runner.cache.hit_rate",
            "service.runner.fleet.jobs_computed",
        ):
            assert name in snapshot, name

    def test_snapshot_is_json_safe_and_sorted(self):
        snapshot = ServiceMetrics().snapshot()
        json.dumps(snapshot)
        assert list(snapshot) == sorted(snapshot)

    def test_shares_caller_registry(self):
        registry = CounterRegistry()
        registry.add("dram.read_bytes", 7)
        snapshot = ServiceMetrics(registry).snapshot()
        assert snapshot["dram.read_bytes"] == 7
        assert "service.queue.submitted" in snapshot


class TestLatencyHistograms:
    def test_completion_observes_both_latencies(self):
        metrics = ServiceMetrics()
        metrics.job_completed(wait_s=0.003, run_s=0.7)
        snapshot = metrics.snapshot()
        assert snapshot["service.latency.wait_s.count"] == 1
        assert snapshot["service.latency.wait_s.le_0.005"] == 1
        assert snapshot["service.latency.run_s.le_0.5"] == 0
        assert snapshot["service.latency.run_s.le_1"] == 1

    def test_bucket_bounds_are_increasing(self):
        assert list(LATENCY_BUCKETS_S) == sorted(LATENCY_BUCKETS_S)

    def test_histogram_cumulative_counts(self):
        histogram = Histogram("t", (1, 10, 100))
        for value in (0.5, 5, 50, 500):
            histogram.observe(value)
        snapshot = histogram.snapshot()
        assert snapshot["le_1"] == 1
        assert snapshot["le_10"] == 2
        assert snapshot["le_100"] == 3
        assert snapshot["le_inf"] == 4
        assert snapshot["count"] == 4
        assert snapshot["sum"] == 555.5


class TestRunnerBridge:
    def test_bridge_reflects_fleet_counters(self):
        clear_run_cache()
        metrics = ServiceMetrics()
        run_many([SimJob("jacobi", "memcpy", 2, scale=0.1, iterations=2)], max_workers=1)
        snapshot = metrics.snapshot()
        assert snapshot["service.runner.fleet.jobs_computed"] == 1
        assert snapshot["service.runner.cache.lookups"] == 1
        clear_run_cache()
        assert metrics.snapshot()["service.runner.fleet.jobs_computed"] == 0
