"""Scheduler tests: batching windows, per-job retry, graceful drain.

A stub runner stands in for ``run_many_settled`` so these tests exercise
scheduling policy (batch packing, retry bookkeeping, drain barriers)
without paying for real simulations.
"""

import asyncio

from repro.harness.runner import SimJob
from repro.service import BatchScheduler, JobQueue, JobState, ServiceMetrics

FAST = dict(scale=0.1, iterations=2)


def sim(gpus=2, **kwargs):
    return SimJob("jacobi", "gps", gpus, **{**FAST, **kwargs})


class StubRunner:
    """Records batches; fails each fingerprint a configurable number of times."""

    def __init__(self, fail_times=0):
        self.batches = []
        self.fail_times = fail_times
        self.failures = {}

    def __call__(self, sims, max_workers=None):
        self.batches.append(list(sims))
        outcomes = []
        for job in sims:
            key = job.key()
            seen = self.failures.get(key, 0)
            if seen < self.fail_times:
                self.failures[key] = seen + 1
                outcomes.append(RuntimeError(f"boom #{seen + 1}"))
            else:
                outcomes.append(f"result-for-{key[:8]}")
        return outcomes


def make_stack(runner, **kwargs):
    metrics = ServiceMetrics()
    queue = JobQueue(metrics, max_depth=32)
    defaults = dict(batch_size=4, max_wait_s=0.01, max_retries=2, retry_backoff_s=0.001)
    scheduler = BatchScheduler(queue, metrics, runner=runner, **{**defaults, **kwargs})
    return queue, scheduler, metrics


class TestBatching:
    def test_packs_queued_jobs_into_one_batch(self):
        runner = StubRunner()

        async def body():
            queue, scheduler, metrics = make_stack(runner, max_wait_s=0.05)
            jobs = [queue.submit(sim(gpus=g)) for g in (1, 2, 4)]
            scheduler.start()
            await asyncio.gather(*(asyncio.wait_for(j.future, 5) for j in jobs))
            await scheduler.stop()
            assert len(runner.batches) == 1
            assert len(runner.batches[0]) == 3
            snapshot = metrics.snapshot()
            assert snapshot["service.scheduler.batches"] == 1
            assert snapshot["service.scheduler.batched_jobs"] == 3

        asyncio.run(body())

    def test_dispatches_immediately_when_batch_fills(self):
        runner = StubRunner()

        async def body():
            # A long age window must not delay a full batch.
            queue, scheduler, _ = make_stack(runner, batch_size=2, max_wait_s=30.0)
            scheduler.start()
            jobs = [queue.submit(sim(gpus=g)) for g in (1, 2)]
            await asyncio.wait_for(
                asyncio.gather(*(j.future for j in jobs)), timeout=5
            )
            await scheduler.stop(drain=False)

        asyncio.run(body())

    def test_oversized_backlog_splits_into_batches(self):
        runner = StubRunner()

        async def body():
            queue, scheduler, _ = make_stack(runner, batch_size=2, max_wait_s=0.01)
            jobs = [queue.submit(sim(gpus=2**i)) for i in range(5)]
            scheduler.start()
            await asyncio.gather(*(asyncio.wait_for(j.future, 5) for j in jobs))
            await scheduler.stop()
            assert all(len(batch) <= 2 for batch in runner.batches)
            assert sum(len(b) for b in runner.batches) == 5

        asyncio.run(body())


class TestRetry:
    def test_transient_failure_retries_then_succeeds(self):
        runner = StubRunner(fail_times=1)

        async def body():
            queue, scheduler, metrics = make_stack(runner, max_retries=2)
            job = queue.submit(sim())
            scheduler.start()
            result = await asyncio.wait_for(job.future, 5)
            await scheduler.stop()
            assert result.startswith("result-for-")
            assert job.state is JobState.DONE
            assert job.attempts == 1
            assert metrics.snapshot()["service.jobs.retried"] == 1

        asyncio.run(body())

    def test_retries_exhausted_fails_job(self):
        runner = StubRunner(fail_times=10)

        async def body():
            queue, scheduler, metrics = make_stack(runner, max_retries=2)
            job = queue.submit(sim())
            scheduler.start()
            try:
                await asyncio.wait_for(job.future, 5)
            except RuntimeError:
                pass
            await scheduler.stop()
            assert job.state is JobState.FAILED
            assert "boom" in job.error
            assert job.attempts == 3  # initial + 2 retries
            # 3 attempts total: the runner saw the job three times.
            assert sum(len(b) for b in runner.batches) == 3
            assert metrics.snapshot()["service.jobs.failed"] == 1

        asyncio.run(body())

    def test_one_bad_job_does_not_poison_batch(self):
        class OneBadApple(StubRunner):
            def __call__(self, sims, max_workers=None):
                self.batches.append(list(sims))
                return [
                    RuntimeError("always broken") if job.num_gpus == 1
                    else f"result-for-{job.key()[:8]}"
                    for job in sims
                ]

        runner = OneBadApple()

        async def body():
            queue, scheduler, _ = make_stack(runner, max_retries=1)
            bad = queue.submit(sim(gpus=1))
            good = queue.submit(sim(gpus=2))
            scheduler.start()
            result = await asyncio.wait_for(good.future, 5)
            assert result.startswith("result-for-")
            try:
                await asyncio.wait_for(bad.future, 5)
            except RuntimeError:
                pass
            await scheduler.stop()
            assert good.state is JobState.DONE
            assert bad.state is JobState.FAILED

        asyncio.run(body())


class TestDrain:
    def test_stop_drains_backlog(self):
        runner = StubRunner()

        async def body():
            queue, scheduler, _ = make_stack(runner, batch_size=2)
            jobs = [queue.submit(sim(gpus=2**i)) for i in range(4)]
            scheduler.start()
            queue.close()
            await scheduler.stop(drain=True)
            assert all(j.state is JobState.DONE for j in jobs)

        asyncio.run(body())

    def test_stop_without_drain_aborts_queued(self):
        runner = StubRunner()

        async def body():
            queue, scheduler, _ = make_stack(runner, max_wait_s=30.0, batch_size=64)
            # Scheduler never fires (window never fills, age 30s); jobs sit queued.
            scheduler.start()
            jobs = [queue.submit(sim(gpus=2**i)) for i in range(3)]
            queue.close()
            await scheduler.stop(drain=False)
            assert all(j.state is JobState.FAILED for j in jobs)
            assert runner.batches == []

        asyncio.run(body())
