"""Streaming job event logs: ``GET /jobs/{id}/events`` via the client."""

import pytest

from repro.service import ClientError

FAST = dict(scale=0.1, iterations=2, gpus=2)


class TestEventStream:
    def test_followed_stream_covers_the_lifecycle(self, live_service):
        client = live_service.client()
        job = client.submit("jacobi", **FAST)
        events = list(client.events(job["id"]))  # follows until terminal
        names = [e["event"] for e in events]
        assert names[0] == "queued"
        assert names[-1] == "done"
        assert "scheduled" in names and "running" in names
        assert "spans_attached" in names
        assert names.index("scheduled") < names.index("running")

        assert [e["seq"] for e in events] == list(range(len(events)))
        assert all(e["t"] > 0 for e in events)
        queued = events[0]
        assert queued["depth"] >= 0
        scheduled = events[names.index("scheduled")]
        assert scheduled["batch_size"] >= 1

    def test_snapshot_does_not_follow(self, live_service):
        client = live_service.client()
        job = client.submit("jacobi", **FAST)
        client.wait(job["id"], timeout=60)
        snapshot = list(client.events(job["id"], follow=False))
        assert [e["event"] for e in snapshot][-1] == "done"
        # A second snapshot of a terminal job is identical.
        assert snapshot == list(client.events(job["id"], follow=False))

    def test_cache_hit_event_head(self, live_service):
        client = live_service.client()
        client.run("jacobi", timeout=60, **FAST)
        job = client.submit("jacobi", **FAST)
        assert job["cache_hit"] is True
        names = [e["event"] for e in client.events(job["id"])]
        assert names == ["cache_hit", "done"]

    def test_coalesced_event_names_primary(self, live_service):
        client = live_service.client()
        first = client.submit("ct", **FAST)
        second = client.submit("ct", **FAST)
        client.wait(second["id"], timeout=60)
        if second["coalesced"]:  # lost the race only if the first finished
            events = list(client.events(second["id"], follow=False))
            assert events[0]["event"] == "coalesced"
            assert events[0]["primary"] == first["id"]
        else:
            assert second["cache_hit"]

    def test_unknown_job_404(self, live_service):
        client = live_service.client()
        with pytest.raises(ClientError) as excinfo:
            list(client.events("job-999999"))
        assert excinfo.value.status == 404
