"""Figure 11: performance sensitivity to subscription tracking.

Paper claims: bandwidth savings from subscription tracking are the primary
factor in GPS's scalability for most apps; the exceptions are ALS and CT,
whose pages are subscribed by all GPUs anyway.
"""

from conftest import run_once

from repro.harness import fig11_subscription_benefit
from repro.harness.report import format_speedup_matrix


def test_fig11_subscription_benefit(benchmark, bench_scale, bench_iterations):
    result = run_once(
        benchmark,
        fig11_subscription_benefit,
        scale=bench_scale,
        iterations=bench_iterations,
    )
    print()
    print(
        format_speedup_matrix(
            result, title="Figure 11: GPS with vs without subscription"
        )
    )
    benchmark.extra_info["speedups"] = {
        w: dict(row) for w, row in result["speedups"].items()
    }

    speedups = result["speedups"]
    # Subscription tracking never hurts.
    for workload, row in speedups.items():
        assert row["gps"] >= row["gps_nosub"] * 0.98, workload
    # Primary factor for the peer-to-peer apps...
    for workload in ("jacobi", "eqwp", "diffusion", "hit"):
        assert speedups[workload]["gps"] > 1.25 * speedups[workload]["gps_nosub"]
    # ...but not for the all-to-all apps (paper's stated exceptions).
    for workload in ("als", "ct"):
        assert speedups[workload]["gps"] < 1.2 * speedups[workload]["gps_nosub"]
