"""Figure 10: interconnect bytes moved, normalised to memcpy.

Paper claims: UM inflates traffic via thrashing (up to 4.4x for ALS); GPS's
unsubscription drastically cuts traffic for most apps (tiny for stencils,
near 1x for the all-to-all apps); RDL exceeds memcpy only for ALS.
"""

from conftest import run_once

from repro.harness import fig10_interconnect_traffic
from repro.harness.report import format_table


def test_fig10_interconnect_traffic(benchmark, bench_scale, bench_iterations):
    result = run_once(
        benchmark,
        fig10_interconnect_traffic,
        scale=bench_scale,
        iterations=bench_iterations,
    )
    norm = result["normalized_to_memcpy"]
    rows = [
        [w] + [norm[w][p] for p in result["paradigms"]] for w in result["workloads"]
    ]
    print()
    print(
        format_table(
            ["app"] + result["paradigms"],
            rows,
            title="Figure 10: data moved over interconnect (memcpy = 1.0)",
        )
    )
    benchmark.extra_info["normalized"] = {w: dict(d) for w, d in norm.items()}

    assert norm["als"]["um"] > 1.2, "UM thrashes ALS (paper: 4.4x; shape, not magnitude)"
    assert norm["jacobi"]["um"] < 1.0, "paper exception: UM < memcpy for Jacobi"
    assert norm["als"]["rdl"] > 1.0, "RDL refetches ALS lines (paper)"
    for stencil in ("jacobi", "eqwp", "diffusion", "hit"):
        assert norm[stencil]["gps"] < 0.5, f"GPS slashes {stencil} traffic"
    assert norm["als"]["gps"] > 0.5, "ALS stays near all-to-all under GPS"
