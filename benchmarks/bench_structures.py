#!/usr/bin/env python
"""Per-structure microbenchmarks for the GPS hardware models.

Isolates each structure on the replay hot path — remote write queue,
GPS-TLB, SM coalescer, GPS page table, subscription manager, and the
runtime's page bookkeeping — and reports ns/operation plus the structure's
own rate metrics (queue hit rate, TLB hit rate, coalescer merge rate).
Structures with both a scalar and a batched kernel report the speedup; the
committed ``BENCH_structures.json`` pins those ratios and ``--check`` fails
on >25% regression (microbenches are noisier than the end-to-end replay
bench, whose gate is the tight one).

Usage:
    python benchmarks/bench_structures.py --out BENCH_structures.json
    python benchmarks/bench_structures.py --check BENCH_structures.json
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from bench_common import check_speedups, load_report, measure, write_report

#: Event count per timed pass; large enough that per-pass setup is noise.
N_EVENTS = 65536


def _rng() -> np.random.Generator:
    return np.random.default_rng(1234)


def _row(structure: str, op: str, ns_vector: float, ns_scalar: "float | None",
         **extra) -> dict:
    row = {"structure": structure, "op": op, "ns_per_op_vector": round(ns_vector, 1)}
    if ns_scalar is not None:
        row["ns_per_op_scalar"] = round(ns_scalar, 1)
        row["speedup"] = round(ns_scalar / ns_vector, 2) if ns_vector else 0.0
    row.update(extra)
    return row


def bench_write_queue() -> list[dict]:
    from repro.config import default_system
    from repro.core.write_queue import RemoteWriteQueue

    rng = _rng()
    cfg = default_system(4).gps
    out = []
    for label, lines in (
        # Streaming: every line distinct -> pure-miss fast path.
        ("stream", np.arange(N_EVENTS, dtype=np.int64)),
        # Reuse: hot working set just above capacity -> real coalescing.
        ("reuse", rng.integers(0, 48, size=N_EVENTS).astype(np.int64)),
    ):
        pays = rng.choice([4, 16, 64, 128], size=N_EVENTS).astype(np.int32)
        queues = {"vector": RemoteWriteQueue(cfg), "scalar": RemoteWriteQueue(cfg)}

        def vec_pass():
            queues["vector"].process_stream_batch(lines, pays)

        def scalar_pass():
            out_entries: list = []
            push = queues["scalar"]._push_one
            for line, nbytes in zip(lines.tolist(), pays.tolist()):
                push(line, nbytes, out_entries)

        vec_reps, vec_t = measure(vec_pass, min_time=0.4)
        scalar_reps, scalar_t = measure(scalar_pass, min_time=0.4, max_reps=5)
        stats = queues["vector"].stats
        out.append(_row(
            "write_queue", f"process_stream/{label}",
            vec_t / vec_reps / N_EVENTS * 1e9,
            scalar_t / scalar_reps / N_EVENTS * 1e9,
            hit_rate=round(stats.hit_rate, 4),
            bandwidth_reduction=round(stats.bandwidth_reduction, 4),
        ))
    return out


def bench_gps_tlb() -> list[dict]:
    from repro.config import default_system
    from repro.core.gps_page_table import GPSPageTable
    from repro.core.gps_tlb import GPSTLB

    rng = _rng()
    cfg = default_system(4).gps
    table = GPSPageTable(cfg, num_gpus=4)
    pages = 4096
    for vpn in range(pages):
        for gpu in range(4):
            table.install_replica(vpn, gpu, vpn * 4 + gpu)
    # Page-run sequence: random pages, short same-page runs (drain order).
    heads = rng.integers(0, pages, size=N_EVENTS // 8).astype(np.int64)
    run_len = np.full(heads.shape[0], 8, dtype=np.int64)
    total = int(run_len.sum())
    tlbs = {"vector": GPSTLB(cfg, table), "scalar": GPSTLB(cfg, table)}
    head_list = heads.tolist()

    def vec_pass():
        tlbs["vector"].translate_batch(head_list, total)

    def scalar_pass():
        translate = tlbs["scalar"].translate_run
        for vpn in head_list:
            translate(vpn, 8)

    vec_reps, vec_t = measure(vec_pass, min_time=0.4)
    scalar_reps, scalar_t = measure(scalar_pass, min_time=0.4, max_reps=20)
    return [_row(
        "gps_tlb", "translate",
        vec_t / vec_reps / total * 1e9,
        scalar_t / scalar_reps / total * 1e9,
        hit_rate=round(tlbs["vector"].stats.hit_rate, 4),
    )]


def bench_sm_coalescer() -> list[dict]:
    from repro.gpu.sm_coalescer import CoalescerStats, sm_coalesce
    from repro.trace.expand import LineStream

    rng = _rng()
    # Strided pattern: runs of 4 identical lines, the coalescer's bread and butter.
    lines = np.repeat(rng.integers(0, N_EVENTS, size=N_EVENTS // 4), 4).astype(np.int64)
    stream = LineStream(lines, np.full(N_EVENTS, 32, dtype=np.int32))
    stats = CoalescerStats()

    def one_pass():
        sm_coalesce(stream, stats)

    reps, elapsed = measure(one_pass)
    return [_row(
        "sm_coalescer", "coalesce",
        elapsed / reps / N_EVENTS * 1e9, None,
        merge_rate=round(stats.merge_rate, 4),
    )]


def bench_gps_page_table() -> list[dict]:
    from repro.config import default_system
    from repro.core.gps_page_table import GPSPageTable

    rng = _rng()
    cfg = default_system(4).gps
    pages = 8192
    vpns = np.arange(pages, dtype=np.int64)
    frames = np.arange(pages, dtype=np.int64)

    def install_pass():
        table = GPSPageTable(cfg, num_gpus=4)
        for gpu in range(4):
            table.install_replicas(vpns, gpu, frames)

    reps, elapsed = measure(install_pass)
    install_ns = elapsed / reps / (pages * 4) * 1e9

    table = GPSPageTable(cfg, num_gpus=4)
    for gpu in range(4):
        table.install_replicas(vpns, gpu, frames)
    lookup_vpns = rng.integers(0, pages, size=N_EVENTS // 8).tolist()

    def lookup_batch_pass():
        table.lookup_batch(lookup_vpns, len(lookup_vpns))

    def lookup_scalar_pass():
        lookup = table.lookup
        for vpn in lookup_vpns:
            lookup(vpn)

    vec_reps, vec_t = measure(lookup_batch_pass, min_time=0.4)
    scalar_reps, scalar_t = measure(lookup_scalar_pass, min_time=0.4, max_reps=50)
    n = len(lookup_vpns)
    return [
        _row("gps_page_table", "install_replicas", install_ns, None),
        _row("gps_page_table", "lookup",
             vec_t / vec_reps / n * 1e9, scalar_t / scalar_reps / n * 1e9),
    ]


def bench_subscription() -> list[dict]:
    from repro.core.subscription import SubscriptionManager

    rng = _rng()
    manager = SubscriptionManager(num_gpus=4)
    pages = 8192
    manager.register_all_to_all(range(pages))
    for vpn in range(0, pages, 2):  # half the pages drop to one subscriber
        for gpu in (1, 2, 3):
            manager.unsubscribe(gpu, vpn)
    manager.demote_single_subscriber_pages()
    query = rng.integers(0, pages, size=N_EVENTS // 4).astype(np.int64)

    def mask_pass():
        manager.multi_subscriber_mask(query)

    def scalar_pass():
        subscribers = manager.subscribers
        demoted = manager.is_demoted
        for vpn in query.tolist():
            _keep = len(subscribers(vpn)) > 1 and not demoted(vpn)

    vec_reps, vec_t = measure(mask_pass, min_time=0.4)
    scalar_reps, scalar_t = measure(scalar_pass, min_time=0.4, max_reps=20)
    n = query.shape[0]
    return [_row(
        "subscription", "multi_subscriber_mask",
        vec_t / vec_reps / n * 1e9, scalar_t / scalar_reps / n * 1e9,
    )]


def bench_runtime_pages() -> list[dict]:
    from repro.config import default_system
    from repro.core.runtime import GPSRuntime

    config = default_system(4)
    pages = 2048
    size = pages * config.gps.page_size

    def alloc_free_pass():
        runtime = GPSRuntime(config)
        runtime.malloc_gps("buf", size)
        runtime.free("buf")

    reps, elapsed = measure(alloc_free_pass)
    # One pass allocates and frees `pages` pages with 4 replicas each.
    return [_row(
        "runtime", "malloc_gps+free",
        elapsed / reps / pages * 1e9, None,
    )]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write BENCH_structures.json here")
    parser.add_argument("--check", default=None,
                        help="compare against a committed BENCH_structures.json; "
                             "exit 1 on >25%% speedup regression")
    args = parser.parse_args(argv)

    results = []
    for bench in (bench_write_queue, bench_gps_tlb, bench_sm_coalescer,
                  bench_gps_page_table, bench_subscription, bench_runtime_pages):
        results.extend(bench())
    for row in results:
        speed = f"  {row['speedup']:>7.1f}x vs scalar" if "speedup" in row else ""
        print(f"{row['structure']:>15}.{row['op']:<24} "
              f"{row['ns_per_op_vector']:>8.1f} ns/op{speed}")

    ratios = [row["speedup"] for row in results if "speedup" in row]
    summary = {
        "rows": len(results),
        "min_speedup": min(ratios),
        "max_speedup": max(ratios),
    }
    if args.out:
        write_report(args.out, "structures", results, summary,
                     {"events_per_pass": N_EVENTS})
    if args.check:
        baseline = load_report(args.check)
        print(f"checking against {args.check} (model {baseline['model_version']}):")
        gated = [row for row in results if "speedup" in row]
        regressions = check_speedups(baseline, gated, ("structure", "op"), tolerance=0.25)
        if regressions:
            print(f"FAIL: {regressions} row(s) regressed >25% vs baseline")
            return 1
        print("PASS: no speedup regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
