"""Figure 8: 4-GPU speedup of every paradigm on every application.

Paper headline: GPS averages 3.0x over one GPU (93.7% of the 3.2x
infinite-bandwidth opportunity) and beats the next best paradigm by 2.3x
on average; UM is below 1x; memcpy averages ~1x with CT its best case.
"""

from conftest import run_once

from repro.harness import fig8_end_to_end
from repro.harness.report import format_speedup_matrix


def test_fig8_end_to_end(benchmark, bench_scale, bench_iterations):
    result = run_once(
        benchmark, fig8_end_to_end, scale=bench_scale, iterations=bench_iterations
    )
    print()
    print(format_speedup_matrix(result, title="Figure 8: 4-GPU speedups (PCIe 6.0)"))
    print(
        f"GPS vs next best (geomean): {result['gps_vs_next_best']:.2f}x | "
        f"opportunity captured: {100 * result['opportunity_captured']:.1f}%"
    )
    benchmark.extra_info["geomean"] = result["geomean"]
    benchmark.extra_info["gps_vs_next_best"] = result["gps_vs_next_best"]

    mean = result["geomean"]
    # Paper-shape assertions.
    assert mean["um"] < 1.0
    assert mean["um"] == min(mean.values())
    assert 0.6 < mean["memcpy"] < 1.8
    assert mean["gps"] > 2.5, "paper: 3.0x average"
    assert mean["infinite"] > 2.8, "paper: 3.2x opportunity"
    assert result["opportunity_captured"] > 0.8, "paper: 93.7%"
    assert result["gps_vs_next_best"] > 1.5, "paper: 2.3x next best"
    # GPS wins on every application.
    for workload, row in result["speedups"].items():
        best_real = max(v for k, v in row.items() if k not in ("gps", "infinite"))
        assert row["gps"] >= best_real, workload
    # CT is memcpy's best application.
    memcpy_per_app = {w: result["speedups"][w]["memcpy"] for w in result["workloads"]}
    assert max(memcpy_per_app, key=memcpy_per_app.get) == "ct"
