"""Microbenchmarks of the hardware-structure models themselves.

Unlike the figure benchmarks (deterministic one-shot experiments), these
use pytest-benchmark's repeated timing to track the simulator's own
throughput: the write queue, the L2 model, trace expansion, and the DES
engine are the inner loops everything else pays for.
"""

import numpy as np

import repro
from repro.cache.cache import Cache
from repro.config import GPSConfig
from repro.core.write_queue import RemoteWriteQueue
from repro.gpu.sm_coalescer import sm_coalesce
from repro.sim.engine import Engine
from repro.trace.expand import LineStream, expand_range
from repro.trace.records import AccessRange, MemOp, PatternKind, PatternSpec

N_EVENTS = 50_000


def _reuse_stream(n=N_EVENTS):
    rng = np.random.default_rng(7)
    lines = rng.integers(0, 4096, size=n, dtype=np.int64)
    payload = np.full(n, 64, dtype=np.int32)
    return LineStream(lines, payload)


def test_write_queue_throughput(benchmark):
    stream = _reuse_stream()

    def run():
        queue = RemoteWriteQueue(GPSConfig())
        queue.process_stream(stream.lines, stream.bytes_per_txn)
        queue.flush()
        return queue.stats.stores_seen

    assert benchmark(run) == N_EVENTS


def test_l2_cache_throughput(benchmark):
    stream = _reuse_stream()

    def run():
        cache = Cache(6 * 1024 * 1024, 128, 16)
        stats = cache.simulate_stream(stream.lines)
        return stats.accesses

    assert benchmark(run) == N_EVENTS


def test_sm_coalescer_throughput(benchmark):
    stream = _reuse_stream()

    def run():
        return len(sm_coalesce(stream))

    assert benchmark(run) > 0


def test_trace_expansion_throughput(benchmark):
    access = AccessRange(
        "b",
        0,
        8 * 1024 * 1024,
        MemOp.WRITE,
        PatternSpec(PatternKind.REUSE, revisit_prob=0.4, revisit_window=300),
    )

    def run():
        return len(expand_range(access, 1 << 20))

    assert benchmark(run) > 60_000


def test_des_engine_throughput(benchmark):
    def run():
        engine = Engine()
        resources = [engine.resource(f"r{i}") for i in range(8)]
        prev = None
        for i in range(2000):
            prev = engine.task(
                f"t{i}", 1e-6, resources[i % 8], deps=[prev] if prev else []
            )
        return engine.run()

    assert benchmark(run) > 0


def test_full_simulation_throughput(benchmark):
    """End-to-end: one small GPS simulation per round."""
    config = repro.default_system(4)
    program = repro.get_workload("jacobi").build(4, scale=0.1, iterations=2)

    def run():
        return repro.simulate(program, "gps", config).total_time

    assert benchmark(run) > 0
