#!/usr/bin/env python
"""Static-analysis throughput benchmark: cold analysis vs cache hits.

Analyzes every registered workload (built at pinned parameters) twice:
cold (``use_cache=False``, the full vector-clock + footprint pipeline) and
warm (a fingerprint-keyed cache hit). Reports ms per cold analysis, µs per
warm lookup, and the warm/cold speedup ratio. Raw rates are
machine-dependent; the committed ``BENCH_analysis.json`` pins the *ratios*
and ``--check`` fails on >25% regression — a cache that stops hitting (or
a fingerprint that became as slow as the analysis it guards) shows up as a
collapsed ratio on any machine.

Usage:
    python benchmarks/bench_analysis.py --out BENCH_analysis.json
    python benchmarks/bench_analysis.py --check BENCH_analysis.json
"""

from __future__ import annotations

import argparse
import sys

from bench_common import check_speedups, load_report, measure, write_report

#: Pinned build parameters — match tests/analysis/baselines/regen.py.
NUM_GPUS = 4
SCALE = 0.25
ITERATIONS = 2


def bench_workload(name: str) -> dict:
    from repro.analysis import analyze_program, clear_cache
    from repro.workloads.registry import WORKLOADS

    program = WORKLOADS[name].build(NUM_GPUS, scale=SCALE, iterations=ITERATIONS)

    def cold():
        clear_cache()
        analyze_program(program)

    reps, secs = measure(cold)
    ns_cold = secs / reps * 1e9

    clear_cache()
    diagnostics = analyze_program(program)  # prime the cache once

    def warm():
        analyze_program(program)

    reps, secs = measure(warm)
    ns_warm = secs / reps * 1e9

    return {
        "structure": "analysis",
        "op": name,
        "ms_cold": round(ns_cold / 1e6, 3),
        "us_cached": round(ns_warm / 1e3, 2),
        "diagnostics": len(diagnostics),
        "speedup": round(ns_cold / ns_warm, 2) if ns_warm else 0.0,
    }


def main(argv=None) -> int:
    from repro.workloads.registry import WORKLOADS

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write BENCH_analysis.json here")
    parser.add_argument("--check", default=None,
                        help="compare against a committed BENCH_analysis.json; "
                             "exit 1 on >25%% speedup regression")
    args = parser.parse_args(argv)

    results = [bench_workload(name) for name in sorted(WORKLOADS)]
    for row in results:
        print(f"{row['op']:>12}  {row['ms_cold']:>8.3f} ms cold  "
              f"{row['us_cached']:>7.2f} us cached  "
              f"{row['speedup']:>8.1f}x  ({row['diagnostics']} diag)")

    ratios = [row["speedup"] for row in results]
    summary = {
        "rows": len(results),
        "min_speedup": min(ratios),
        "max_speedup": max(ratios),
    }
    config = {"num_gpus": NUM_GPUS, "scale": SCALE, "iterations": ITERATIONS}
    if args.out:
        write_report(args.out, "analysis", results, summary, config)
    if args.check:
        baseline = load_report(args.check)
        print(f"checking against {args.check} (model {baseline['model_version']}):")
        regressions = check_speedups(baseline, results, ("structure", "op"),
                                     tolerance=0.25)
        if regressions:
            print(f"FAIL: {regressions} row(s) regressed >25% vs baseline")
            return 1
        print("PASS: no speedup regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
