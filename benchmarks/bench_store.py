#!/usr/bin/env python
"""Throughput benchmarks for the ``repro.store`` result lakehouse.

Measures the store's three hot operations on a synthetic 1000-result
catalog — commit (append snapshots), query (filter + order over the live
partition set), compact — plus the quantity the subsystem exists for:
**incremental view refresh vs a full rescan**. The figure views refresh
from the delta between two manifests, so bringing a view up to date after
one small append must not re-read the whole catalog.

Raw rates are machine-dependent; the committed ``BENCH_store.json``
baseline gates on the *refresh speedup ratio* (incremental vs full,
measured in the same run on the same machine). Independently of any
baseline, the run fails outright if incremental refresh is less than
5x faster than a full rescan on the 1000-result catalog — that floor is
the subsystem's acceptance bar, not a regression gate.

Usage:
    python benchmarks/bench_store.py --out BENCH_store.json
    python benchmarks/bench_store.py --check BENCH_store.json
"""

from __future__ import annotations

import argparse
import hashlib
import sys
import tempfile
import time
from pathlib import Path

from bench_common import check_speedups, load_report, measure, write_report

#: Catalog shape: 5 workloads x 4 paradigms x 50 scales = 1000 results,
#: committed one scale at a time (50 append snapshots of 20 records).
WORKLOADS = ("jacobi", "ct", "pagerank", "hit", "spmv")
PARADIGMS = ("memcpy", "gps", "um", "rdl")
SCALES = 50
CATALOG = len(WORKLOADS) * len(PARADIGMS) * SCALES

#: Views gated on the incremental-vs-full floor.
GATED_VIEWS = ("fig08", "fig11")

#: Hard acceptance floor for the refresh speedup (see module docstring).
SPEEDUP_FLOOR = 5.0


def synth_record(workload: str, paradigm: str, scale: float):
    """One deterministic synthetic result (the store treats it as opaque)."""
    from repro.store import StoredRecord

    num_gpus = 1 if paradigm == "memcpy" else 4
    meta = {
        "workload": workload,
        "paradigm": paradigm,
        "num_gpus": num_gpus,
        "link": "PCIe 6.0",
        "scale": scale,
        "iterations": 8,
    }
    key = hashlib.sha256(
        "|".join(str(meta[k]) for k in sorted(meta)).encode()
    ).hexdigest()
    traffic = [[0 if i == j else 4096 for j in range(num_gpus)] for i in range(num_gpus)]
    result = {
        "program_name": workload,
        "paradigm": paradigm,
        "num_gpus": num_gpus,
        "total_time": 1.0 + scale,
        "traffic": traffic,
        "phases": [],
        "write_queue_stats": [],
        "gps_tlb_stats": [],
        "subscriber_histogram": {},
        "fault_count": 0,
        "pages_migrated": 0,
        "counters": {},
        "extras": {},
    }
    return StoredRecord(key=key, meta=meta, result=result, model="repro-model/bench")


def populate(directory: Path):
    """Build the 1000-result catalog; returns (store, seconds)."""
    from repro.store import ResultStore

    store = ResultStore.open(directory, legacy=False, auto_refresh=False)
    start = time.perf_counter()
    for i in range(SCALES):
        scale = round(0.1 + i * 0.05, 2)
        batch = [
            synth_record(workload, paradigm, scale)
            for workload in WORKLOADS
            for paradigm in PARADIGMS
        ]
        store.append(batch)
    return store, time.perf_counter() - start


def bench_query(store) -> dict:
    def one_query():
        store.query(where=["paradigm=gps"], order_by="-total_time")

    reps, total = measure(one_query, min_time=0.5)
    rows = len(store.query(where=["paradigm=gps"]))
    return {
        "op": "query/filter_order",
        "rows": rows,
        "catalog": CATALOG,
        "queries_per_s": round(reps / total, 1),
    }


def bench_refresh(store, view: str) -> dict:
    """Full-vs-incremental refresh of one figure view after a small append."""
    from repro.store.incremental import _state_path, refresh_view, state_ids

    target = store.current_snapshot_id()
    base = store.log.load(target).parent

    def clear_states():
        for snapshot_id in state_ids(store, view):
            _state_path(store.directory, view, snapshot_id).unlink()

    def full_pass():
        clear_states()
        _, stats = refresh_view(store, view, target)
        assert stats.mode == "full", stats.mode
        return stats

    def incremental_pass():
        _state_path(store.directory, view, target).unlink(missing_ok=True)
        _, stats = refresh_view(store, view, target)
        assert stats.mode == "incremental", stats.mode
        return stats

    full_reps, full_t = measure(full_pass, min_time=0.5)
    full_stats = full_pass()
    # Re-seed the base state the full passes kept deleting, then time deltas.
    clear_states()
    refresh_view(store, view, base)
    inc_reps, inc_t = measure(incremental_pass, min_time=0.5)
    inc_stats = incremental_pass()

    full_s = full_t / full_reps
    inc_s = inc_t / inc_reps
    return {
        "op": f"refresh/{view}",
        "catalog": CATALOG,
        "full_ms": round(full_s * 1e3, 2),
        "incremental_ms": round(inc_s * 1e3, 2),
        "partitions_full": full_stats.partitions_read,
        "partitions_incremental": inc_stats.partitions_read,
        "speedup": round(full_s / inc_s, 2) if inc_s else 0.0,
    }


def bench_compact(store) -> dict:
    from repro.store import compact

    files_before = store.stats()["partition_files"]
    start = time.perf_counter()
    report = compact(store)
    seconds = time.perf_counter() - start
    return {
        "op": "compact",
        "catalog": CATALOG,
        "files_before": files_before,
        "files_after": report.files_after + (files_before - report.files_before),
        "records": report.records,
        "seconds": round(seconds, 3),
    }


def run_benchmarks() -> list[dict]:
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as scratch:
        store, commit_s = populate(Path(scratch) / "store")
        results = [
            {
                "op": "commit/append",
                "records": CATALOG,
                "commits": SCALES,
                "records_per_s": round(CATALOG / commit_s, 1),
            },
            bench_query(store),
        ]
        # One small append on top of the full catalog: the delta the
        # incremental refresh should pay for, and nothing else.
        store.append([synth_record(w, p, 99.0) for w in WORKLOADS for p in PARADIGMS])
        for view in GATED_VIEWS:
            results.append(bench_refresh(store, view))
        results.append(bench_compact(store))
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write BENCH_store.json here")
    parser.add_argument("--check", default=None,
                        help="compare against a committed BENCH_store.json; "
                             "exit 1 on >25%% refresh-speedup regression")
    args = parser.parse_args(argv)

    results = run_benchmarks()
    for row in results:
        detail = ", ".join(
            f"{k}={v}" for k, v in sorted(row.items()) if k != "op"
        )
        print(f"{row['op']:<22} {detail}")

    gated = [row for row in results if "speedup" in row]
    summary = {
        "rows": len(results),
        "catalog": CATALOG,
        "min_refresh_speedup": min(row["speedup"] for row in gated),
    }

    failed = 0
    for row in gated:
        if row["speedup"] < SPEEDUP_FLOOR:
            print(f"FAIL: {row['op']} speedup {row['speedup']:.1f}x "
                  f"is below the {SPEEDUP_FLOOR:.0f}x acceptance floor")
            failed += 1
    if args.out and not failed:
        write_report(args.out, "store", results, summary, {
            "workloads": list(WORKLOADS),
            "paradigms": list(PARADIGMS),
            "scales": SCALES,
            "speedup_floor": SPEEDUP_FLOOR,
        })
    if args.check:
        baseline = load_report(args.check)
        print(f"checking against {args.check} (model {baseline['model_version']}):")
        regressions = check_speedups(baseline, gated, ("op",), tolerance=0.25)
        if regressions:
            print(f"FAIL: {regressions} row(s) regressed >25% vs baseline")
            return 1
        print("PASS: no refresh-speedup regressions")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
