"""Figure 3: the persistent ~3x local-vs-remote bandwidth gap."""

from conftest import run_once

from repro.harness import fig3_bandwidth_gap
from repro.harness.report import format_table


def test_fig3_bandwidth_gap(benchmark):
    result = run_once(benchmark, fig3_bandwidth_gap)
    rows = [
        [r["platform"], r["gpu"], r["interconnect"], r["local_gb_s"], r["remote_gb_s"], r["gap"]]
        for r in result["rows"]
    ]
    print()
    print(
        format_table(
            ["platform", "gpu", "interconnect", "local GB/s", "remote GB/s", "gap"],
            rows,
            title="Figure 3: local vs remote bandwidth across GPU platforms",
        )
    )
    assert result["min_gap"] >= 2.5, "the paper's ~3x gap must persist"
    assert result["max_gap"] < 20
