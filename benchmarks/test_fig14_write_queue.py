"""Figure 14: remote write queue hit rate vs queue size.

Paper claims: with 512 entries all applications achieve near-peak
coalescing; Jacobi sits at 0% (the SM coalescer captures its spatial
locality) and Pagerank/ALS/SSSP at 0% (atomics are not coalesced); CT,
EQWP, Diffusion, and HIT show rising curves.
"""

from conftest import run_once

from repro.harness import fig14_write_queue_hit_rate
from repro.harness.experiments import COALESCING_APPS, ZERO_HIT_APPS
from repro.harness.report import format_table


def test_fig14_write_queue_hit_rate(benchmark, bench_scale):
    result = run_once(benchmark, fig14_write_queue_hit_rate, scale=bench_scale)
    sizes = result["queue_sizes"]
    rows = [
        [w] + [100 * result["hit_rate"][w][s] for s in sizes]
        for w in result["workloads"]
    ]
    print()
    print(
        format_table(
            ["app"] + [str(s) for s in sizes],
            rows,
            title="Figure 14: write queue hit rate (%) vs queue size",
        )
    )
    benchmark.extra_info["hit_rate"] = {
        w: {str(s): result["hit_rate"][w][s] for s in sizes}
        for w in result["workloads"]
    }

    for workload in ZERO_HIT_APPS:
        assert all(v == 0.0 for v in result["hit_rate"][workload].values()), workload
    for workload in COALESCING_APPS:
        series = [result["hit_rate"][workload][s] for s in sizes]
        assert series == sorted(series), f"{workload} curve must be monotonic"
        assert series[-1] > 0.1, workload
        # Near-peak by 512 entries: growing the queue to 1024 buys little.
        at512 = result["hit_rate"][workload][512]
        at1024 = result["hit_rate"][workload][1024]
        assert at1024 - at512 < 0.12, workload
