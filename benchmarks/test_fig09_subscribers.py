"""Figure 9: subscriber distribution for shared application pages.

Paper claims: ALS subscribes nearly all pages all-to-all; Jacobi needs only
one remote subscriber (2 total) for most pages because of halo exchange;
the variation across apps justifies automatic unsubscription.
"""

from conftest import run_once

from repro.harness import fig9_subscriber_distribution
from repro.harness.report import format_table


def test_fig9_subscriber_distribution(benchmark, bench_scale):
    result = run_once(
        benchmark, fig9_subscriber_distribution, scale=bench_scale, iterations=2
    )
    dist = result["percent_by_subscribers"]
    rows = [
        [w, d.get(2, 0.0), d.get(3, 0.0), d.get(4, 0.0)] for w, d in dist.items()
    ]
    print()
    print(
        format_table(
            ["app", "2 subs %", "3 subs %", "4 subs %"],
            rows,
            title="Figure 9: shared pages by subscriber count (4 GPUs)",
        )
    )
    benchmark.extra_info["distribution"] = {w: dict(d) for w, d in dist.items()}

    assert dist["jacobi"].get(2, 0) > 60, "Jacobi: halo pairs dominate"
    assert dist["als"].get(4, 0) > 85, "ALS: all-to-all"
    assert dist["ct"].get(4, 0) > 85, "CT: all-to-all"
    # Graph apps show a genuine mixture.
    assert len(dist["pagerank"]) >= 2
