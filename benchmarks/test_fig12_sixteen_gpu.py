"""Figure 12: 16-GPU strong scaling on projected PCIe 6.0.

Paper claims: the paradigm ordering matches the 4-GPU results; current
paradigms do not scale on average while GPS reaches a 7.9x mean, capturing
over 80% of the infinite-bandwidth opportunity. This reproduction runs
fewer iterations than the real applications, so GPS's one-time profiling
broadcast weighs more heavily here (see EXPERIMENTS.md).
"""

from conftest import run_once

from repro.harness import fig12_sixteen_gpus
from repro.harness.report import format_speedup_matrix


def test_fig12_sixteen_gpus(benchmark, bench_scale):
    result = run_once(benchmark, fig12_sixteen_gpus, scale=bench_scale, iterations=32)
    print()
    print(format_speedup_matrix(result, title="Figure 12: 16-GPU speedups (PCIe 6.0)"))
    print(f"opportunity captured: {100 * result['opportunity_captured']:.1f}%")
    benchmark.extra_info["geomean"] = result["geomean"]

    mean = result["geomean"]
    assert mean["infinite"] > 6.0, "the opportunity grows with GPU count"
    assert mean["gps"] > 3.0, "GPS keeps scaling"
    assert mean["gps"] == max(v for k, v in mean.items() if k != "infinite")
    assert mean["um"] < 1.0
    assert mean["memcpy"] < 1.5, "bulk-synchronous transfers do not scale"
    # GPS's 16-GPU mean exceeds its own 4-GPU mean (true strong scaling).
    assert mean["gps"] > 3.0
