#!/usr/bin/env python
"""Service-path latency benchmark: closed-loop load over the live HTTP API.

Boots a full :class:`repro.service.SimulationService` (HTTP frontend +
batch scheduler + serial runner) on an ephemeral port and drives it with
three workload phases through the blocking client SDK:

* **cold** — one distinct simulation per registered workload, closed loop
  (submit, wait, repeat). Every job misses all caches and runs the engine.
* **warm** — the same jobs resubmitted; each is a memo-cache hit answered
  without touching the queue.
* **burst** — duplicate pairs submitted back-to-back *without* waiting (a
  small open burst), so the second submission coalesces onto the first's
  in-flight execution (or, if the first already finished, hits the cache —
  either way it never re-simulates).

A fourth phase load-proves the scheduler shard pool:

* **sharded burst** — 48 distinct-fingerprint jobs submitted as one open
  burst against a 4-shard service and again against a 1-shard service.
  Both runs replace the engine with a fixed-service-time stub runner
  (sleeps release the GIL, so shard schedulers genuinely overlap even on
  a 1-CPU host) — the phase measures *scheduler-level* concurrency, which
  is exactly what sharding claims to add, independent of how many cores
  the engine itself gets. The gated quantity is the throughput ratio
  ``makespan(1 shard) / makespan(4 shards)``, with a hard floor of
  ``SHARDED_FLOOR``x on top of the usual baseline-ratio tolerance.

Reported per phase: submit-to-result p50/p99 and, for cold jobs, the
server-side queue-wait vs run-time split. Raw latencies are
machine-dependent, so the committed ``BENCH_service.json`` gates three
machine-independent quantities instead: the warm/cold p50 speedup ratio
(a cache hit answered at HTTP round-trip speed vs a full engine run), the
dedup rate ``(coalesced + cache_hits) / submitted``, which is exactly
determined by the phase script above, and the sharded-burst throughput
ratio (batch counts per shard are fixed by the stable fingerprint hash).

Usage:
    python benchmarks/bench_service.py --out BENCH_service.json
    python benchmarks/bench_service.py --check BENCH_service.json
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

from bench_common import check_speedups, load_report, scoped_env, write_report

#: Pinned job shape — small enough that the full matrix stays CI-friendly.
GPUS = 2
LINK = "pcie6"
SCALE = 0.25
COLD_ITERATIONS = 2
BURST_ITERATIONS = 3  # distinct fingerprints from the cold phase
BURST_PAIRS = 4

#: Dedup-rate drift tolerated by --check. The quantity is deterministic, so
#: any drift at all means the coalescing/cache behaviour changed.
DEDUP_TOLERANCE = 1e-9

#: Sharded-burst phase shape: 8 workloads x 6 iteration values = 48
#: distinct fingerprints, whose shard assignment is fixed by the stable
#: hash (14/12/9/13 across 4 shards for this grid).
SHARDED_SHARDS = 4
SHARDED_ITERATIONS = range(11, 17)  # disjoint from the cold/burst phases
STUB_JOB_S = 0.025  # fixed per-job service time inside the stub runner
#: Hard CI floor: a 4-shard pool must move the burst at >= 2x the 1-shard
#: throughput (the hash distribution above predicts ~3x).
SHARDED_FLOOR = 2.0


class _LiveService:
    """A service running in a background thread (mirrors the test fixture).

    ``prepare`` runs against the constructed :class:`SimulationService`
    before it starts serving — the sharded phase uses it to swap each
    shard scheduler's runner for the fixed-service-time stub.
    """

    def __init__(self, settings, prepare=None) -> None:
        import asyncio

        from repro.service import SimulationService

        self.service = None
        self._started = threading.Event()

        def _run() -> None:
            async def _main() -> None:
                self.service = SimulationService(settings)
                if prepare is not None:
                    prepare(self.service)
                await self.service.start()
                self._started.set()
                await self.service.serve_forever()

            asyncio.run(_main())

        self._thread = threading.Thread(target=_run, daemon=True)
        self._thread.start()
        if not self._started.wait(10):
            raise RuntimeError("service failed to start")

    @property
    def url(self) -> str:
        return f"http://{self.service.host}:{self.service.port}"

    def stop(self) -> None:
        from repro.service import ServiceClient

        if self._thread.is_alive():
            try:
                ServiceClient(self.url, timeout=5.0).shutdown(drain=False)
            except Exception:
                pass
            self._thread.join(30)


def _p(values: "list[float]", q: float) -> float:
    """Percentile of a latency list; ``q`` is in percent (50.0 = median)."""
    from repro.service import percentile

    return percentile(sorted(values), q)


def _ms(values: "list[float]", q: float) -> float:
    return round(_p(values, q) * 1e3, 3)


def run_load() -> "tuple[list[dict], dict]":
    from repro.service import ServiceClient, ServiceSettings
    from repro.workloads.registry import WORKLOADS

    settings = ServiceSettings(
        host="127.0.0.1",
        port=0,
        queue_depth=64,
        batch_size=4,
        max_wait_s=0.05,  # wide enough that burst pairs land in one window
        max_retries=1,
        retry_backoff_s=0.01,
        max_workers=1,
    )
    live = _LiveService(settings)
    client = ServiceClient(live.url, timeout=120.0)
    workloads = sorted(WORKLOADS)

    def submit(workload: str, iterations: int) -> "tuple[str, str, float]":
        job = client.submit(
            workload, paradigm="gps", gpus=GPUS, link=LINK,
            scale=SCALE, iterations=iterations,
        )
        return job["id"], job["client_trace"]["trace_id"], time.perf_counter()

    try:
        # Phase 1: cold, closed loop — every job simulates.
        cold_lat: "list[float]" = []
        cold_ids: "list[str]" = []
        for name in workloads:
            job_id, _, t0 = submit(name, COLD_ITERATIONS)
            client.wait(job_id, timeout=600.0)
            cold_lat.append(time.perf_counter() - t0)
            cold_ids.append(job_id)
        cold_wait = [client.status(job_id)["wait_s"] for job_id in cold_ids]
        cold_run = [client.status(job_id)["run_s"] for job_id in cold_ids]

        # Phase 2: warm, closed loop — every job is a memo-cache hit.
        warm_lat: "list[float]" = []
        for name in workloads:
            job_id, _, t0 = submit(name, COLD_ITERATIONS)
            client.wait(job_id, timeout=60.0)
            warm_lat.append(time.perf_counter() - t0)

        # Phase 3: duplicate-pair bursts — the second submission dedups
        # (coalesces while in flight, cache-hits if already done).
        burst_lat: "list[float]" = []
        first_trace = None
        for name in workloads[:BURST_PAIRS]:
            id_a, trace_a, t_a = submit(name, BURST_ITERATIONS)
            id_b, _, t_b = submit(name, BURST_ITERATIONS)
            first_trace = first_trace or trace_a
            client.wait(id_a, timeout=600.0)
            done_a = time.perf_counter()
            client.wait(id_b, timeout=600.0)
            done_b = time.perf_counter()
            burst_lat.extend((done_a - t_a, done_b - t_b))

        # The observability surface must be live under load: the first
        # burst trace exports a non-empty span closure, and the latency
        # series the SLOs read from has every completed job.
        trace = client.trace(first_trace)
        assert trace["spans"], "distributed trace came back empty"
        series = client.series("jobs.total_s", bucket_s=3600.0)
        samples = sum(row["count"] for row in series["buckets"])
        assert samples >= len(cold_lat), f"series lost samples: {samples}"

        metrics = client.metrics()
    finally:
        live.stop()

    submitted = metrics["service.queue.submitted"]
    coalesced = metrics["service.queue.coalesced"]
    cache_hits = metrics["service.queue.cache_hits"]
    dedup_rate = (coalesced + cache_hits) / submitted
    speedup = _p(cold_lat, 50.0) / _p(warm_lat, 50.0)

    results = [
        {
            "structure": "service", "op": "cold",
            "p50_ms": _ms(cold_lat, 50.0), "p99_ms": _ms(cold_lat, 99.0),
            "wait_ms_p50": _ms(cold_wait, 50.0), "run_ms_p50": _ms(cold_run, 50.0),
            "jobs": len(cold_lat),
        },
        {
            "structure": "service", "op": "warm_cache",
            "p50_ms": _ms(warm_lat, 50.0), "p99_ms": _ms(warm_lat, 99.0),
            "jobs": len(warm_lat),
        },
        {
            "structure": "service", "op": "burst_pairs",
            "p50_ms": _ms(burst_lat, 50.0), "p99_ms": _ms(burst_lat, 99.0),
            "jobs": len(burst_lat),
        },
        {
            "structure": "service", "op": "warm_vs_cold",
            "speedup": round(speedup, 2),
        },
    ]
    summary = {
        "jobs_submitted": submitted,
        "coalesced": coalesced,
        "cache_hits": cache_hits,
        "dedup_rate": round(dedup_rate, 6),
        "cold_p50_ms": _ms(cold_lat, 50.0),
        "warm_p50_ms": _ms(warm_lat, 50.0),
        "warm_vs_cold_speedup": round(speedup, 2),
    }
    return results, summary


def _stub_result():
    """One real SimulationResult for the stub runner to hand every job."""
    import repro
    from repro.config import PCIE6

    program = repro.get_workload("jacobi").build(2, scale=0.1, iterations=1)
    config = repro.default_system(2, PCIE6)
    return repro.PARADIGMS["gps"](program, config).run()


def _drive_sharded_burst(shards: int, result) -> "tuple[float, list[float]]":
    """One open-burst run against an N-shard service with the stub runner.

    Returns ``(makespan_seconds, per_job_latencies)``. The stub runner
    sleeps ``STUB_JOB_S`` per job in the batch — a serial worker with a
    fixed service time whose sleeps release the GIL, so shard schedulers
    overlap for real even on a single-core host.
    """
    from repro.service import ServiceClient, ServiceSettings
    from repro.workloads.registry import WORKLOADS

    settings = ServiceSettings(
        host="127.0.0.1",
        port=0,
        queue_depth=256,
        batch_size=4,
        max_wait_s=0.01,
        max_retries=0,
        retry_backoff_s=0.01,
        max_workers=1,
        trace=False,  # the untraced path is the one the stub runner replaces
        shards=shards,
    )
    stub = _stub_result()

    def runner(sims, max_workers=None):
        time.sleep(STUB_JOB_S * len(sims))
        return [stub for _ in sims]

    def prepare(service) -> None:
        for shard in service.shards:
            shard.scheduler._runner = runner

    live = _LiveService(settings, prepare=prepare)
    client = ServiceClient(live.url, timeout=120.0)
    workloads = sorted(WORKLOADS)
    try:
        t0 = time.perf_counter()
        pending = []
        for iterations in SHARDED_ITERATIONS:
            for name in workloads:
                job = client.submit(
                    name, paradigm="gps", gpus=GPUS, link=LINK,
                    scale=SCALE, iterations=iterations, trace=False,
                )
                pending.append((job["id"], time.perf_counter()))
        latencies = []
        for job_id, submitted in pending:
            client.wait(job_id, timeout=600.0)
            latencies.append(time.perf_counter() - submitted)
        makespan = time.perf_counter() - t0
    finally:
        live.stop()
    return makespan, latencies


def run_sharded_burst() -> "tuple[list[dict], dict]":
    single_makespan, _ = _drive_sharded_burst(1, None)
    sharded_makespan, sharded_lat = _drive_sharded_burst(SHARDED_SHARDS, None)
    jobs = len(sharded_lat)
    ratio = single_makespan / sharded_makespan
    results = [
        {
            "structure": "service", "op": "sharded_burst",
            "p50_ms": _ms(sharded_lat, 50.0), "p99_ms": _ms(sharded_lat, 99.0),
            "jobs": jobs,
        },
        {
            "structure": "service", "op": "sharded_vs_single",
            "speedup": round(ratio, 2),
        },
    ]
    summary = {
        "sharded_shards": SHARDED_SHARDS,
        "sharded_jobs": jobs,
        "single_shard_makespan_ms": round(single_makespan * 1e3, 3),
        "sharded_makespan_ms": round(sharded_makespan * 1e3, 3),
        "sharded_vs_single_speedup": round(ratio, 2),
    }
    return results, summary


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default=None, help="write BENCH_service.json here")
    parser.add_argument("--check", default=None,
                        help="compare against a committed BENCH_service.json; "
                             "exit 1 on speedup regression >85%% or any dedup drift")
    args = parser.parse_args(argv)

    with scoped_env(REPRO_NO_CACHE="1", REPRO_MAX_WORKERS="1",
                    REPRO_SERVICE_SLO=None, REPRO_SERVICE_URL=None):
        from repro.harness.runner import clear_run_cache

        clear_run_cache()
        results, summary = run_load()
        clear_run_cache()
        sharded_results, sharded_summary = run_sharded_burst()
        results += sharded_results
        summary.update(sharded_summary)
        clear_run_cache()

    for row in results:
        if "p50_ms" in row:
            extra = ""
            if "wait_ms_p50" in row:
                extra = (f"  (wait {row['wait_ms_p50']:.1f} ms / "
                         f"run {row['run_ms_p50']:.1f} ms)")
            print(f"{row['op']:>16}  p50 {row['p50_ms']:>9.3f} ms  "
                  f"p99 {row['p99_ms']:>9.3f} ms  ({row['jobs']} jobs){extra}")
    print(f"{'warm_vs_cold':>16}  {summary['warm_vs_cold_speedup']:.1f}x speedup, "
          f"dedup rate {summary['dedup_rate']:.3f} "
          f"({summary['coalesced']} coalesced + {summary['cache_hits']} cache hits "
          f"/ {summary['jobs_submitted']} submitted)")
    print(f"{'sharded_burst':>16}  {summary['sharded_vs_single_speedup']:.2f}x "
          f"throughput at {SHARDED_SHARDS} shards "
          f"({summary['single_shard_makespan_ms']:.0f} ms -> "
          f"{summary['sharded_makespan_ms']:.0f} ms over "
          f"{summary['sharded_jobs']} jobs)")

    config = {
        "gpus": GPUS, "link": LINK, "scale": SCALE,
        "cold_iterations": COLD_ITERATIONS, "burst_iterations": BURST_ITERATIONS,
        "burst_pairs": BURST_PAIRS,
        "sharded_shards": SHARDED_SHARDS,
        "sharded_iterations": [SHARDED_ITERATIONS[0], SHARDED_ITERATIONS[-1]],
        "stub_job_ms": round(STUB_JOB_S * 1e3, 3),
    }
    if args.out:
        write_report(args.out, "service", results, summary, config)
    if args.check:
        baseline = load_report(args.check)
        print(f"checking against {args.check} (model {baseline['model_version']}):")
        # The ratio gate is deliberately loose (floor = 15% of baseline):
        # a cache hit answered at HTTP round-trip speed is still two orders
        # of magnitude faster than an engine run on any machine, while a
        # cache that stops hitting collapses the ratio to ~1x.
        gated = [row for row in results if "speedup" in row]
        regressions = check_speedups(baseline, gated, ("structure", "op"),
                                     tolerance=0.85)
        base_dedup = baseline["summary"]["dedup_rate"]
        drift = abs(summary["dedup_rate"] - base_dedup)
        status = "ok" if drift <= DEDUP_TOLERANCE else "DRIFTED"
        print(f"  dedup rate {summary['dedup_rate']:.6f} "
              f"(baseline {base_dedup:.6f}) {status}")
        if status != "ok":
            regressions += 1
        # The shard pool carries a hard absolute floor on top of the
        # baseline-ratio tolerance: whatever the baseline says, 4 shards
        # must beat 1 shard by at least SHARDED_FLOOR x.
        ratio = summary["sharded_vs_single_speedup"]
        floor_status = "ok" if ratio >= SHARDED_FLOOR else "BELOW FLOOR"
        print(f"  sharded throughput {ratio:.2f}x "
              f"(hard floor {SHARDED_FLOOR:.1f}x) {floor_status}")
        if floor_status != "ok":
            regressions += 1
        if regressions:
            print(f"FAIL: {regressions} gate(s) failed vs baseline")
            return 1
        print("PASS: no service-path regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
