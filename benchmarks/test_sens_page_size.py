"""Section 7.4: page-size sensitivity (4 KiB / 64 KiB / 2 MiB).

Paper claim: 4 KiB pages are 42% slower than 64 KiB (TLB pressure); 2 MiB
pages are 15% slower (false sharing inflates interconnect traffic); 64 KiB
is the sweet spot GPS uses.
"""

from conftest import run_once

from repro.config import PAGE_2M, PAGE_4K, PAGE_64K
from repro.harness import page_size_sensitivity
from repro.harness.report import format_table


def test_page_size_sensitivity(benchmark, bench_scale):
    result = run_once(
        benchmark, page_size_sensitivity, scale=bench_scale, iterations=8
    )
    labels = {PAGE_4K: "4 KiB", PAGE_64K: "64 KiB", PAGE_2M: "2 MiB"}
    rows = [
        [labels[ps], result["total_time"][ps] * 1e3, result["slowdown_vs_64k"][ps]]
        for ps in result["page_sizes"]
    ]
    print()
    print(
        format_table(
            ["page size", "GPS total (ms)", "vs 64 KiB"],
            rows,
            title="Page-size sensitivity of GPS (section 7.4)",
        )
    )
    benchmark.extra_info["slowdown"] = {
        labels[ps]: result["slowdown_vs_64k"][ps] for ps in result["page_sizes"]
    }

    slowdown = result["slowdown_vs_64k"]
    assert slowdown[PAGE_64K] == 1.0
    assert slowdown[PAGE_4K] > 1.1, "paper: 4 KiB is 42% slower"
    assert slowdown[PAGE_2M] > 1.0, "paper: 2 MiB is 15% slower"
    assert slowdown[PAGE_4K] > slowdown[PAGE_2M], "64 KiB sweet spot shape"
