"""Extension study: weak scaling (beyond the paper's strong-scaling focus).

With per-GPU work held constant, GPS's halo communication per GPU stays
flat, so its weak-scaling efficiency should hold near the infinite-BW
ceiling, while bulk-synchronous memcpy degrades as broadcast volume grows
with the GPU count.
"""

from conftest import run_once

from repro.harness.experiments import weak_scaling
from repro.harness.report import format_table


def test_weak_scaling(benchmark, bench_scale, bench_iterations):
    result = run_once(
        benchmark,
        weak_scaling,
        workload="jacobi",
        gpu_counts=(1, 2, 4, 8),
        scale_per_gpu=0.25 * bench_scale,
        iterations=bench_iterations,
    )
    rows = [
        [p] + [result["efficiency"][p][n] for n in result["gpu_counts"]]
        for p in result["paradigms"]
    ]
    print()
    print(
        format_table(
            ["paradigm"] + [f"{n} GPU" for n in result["gpu_counts"]],
            rows,
            title="Extension: Jacobi weak-scaling efficiency (1.0 = flat time)",
        )
    )
    benchmark.extra_info["efficiency"] = {
        p: {str(n): v for n, v in d.items()} for p, d in result["efficiency"].items()
    }

    eff = result["efficiency"]
    # GPS stays within ~35% of flat out to 8 GPUs (the one-time profiling
    # broadcast grows with GPU count; steady state is flatter)...
    assert eff["gps"][8] > 0.6
    # ...and beats memcpy at every non-trivial count.
    for n in (2, 4, 8):
        assert eff["gps"][n] > eff["memcpy"][n]
    # The ideal stays near 1.0 by construction.
    assert eff["infinite"][8] > 0.85
