"""Figure 13: sensitivity to interconnect bandwidth (PCIe 3.0 -> 6.0).

Paper claims: traditional paradigms barely improve with faster links;
GPS converts added bandwidth into scaling and approaches the infinite-
bandwidth limit at PCIe 6.0.
"""

import pytest
from conftest import run_once

from repro.harness import fig13_bandwidth_sensitivity
from repro.harness.report import format_table


def test_fig13_bandwidth_sensitivity(benchmark, bench_scale, bench_iterations):
    result = run_once(
        benchmark,
        fig13_bandwidth_sensitivity,
        scale=bench_scale,
        iterations=bench_iterations,
    )
    rows = [
        [link] + [result["geomean"][link][p] for p in result["paradigms"]]
        for link in result["links"]
    ]
    print()
    print(
        format_table(
            ["link"] + list(result["paradigms"]),
            rows,
            title="Figure 13: geomean 4-GPU speedup vs interconnect",
        )
    )
    benchmark.extra_info["geomean"] = {l: dict(d) for l, d in result["geomean"].items()}

    means = result["geomean"]
    # Every paradigm is monotonic in bandwidth.
    for paradigm in result["paradigms"]:
        series = [means[l][paradigm] for l in result["links"]]
        assert all(b >= a * 0.99 for a, b in zip(series, series[1:])), paradigm
    # GPS gains more from PCIe 3 -> 6 than memcpy or UM do.
    gps_gain = means["pcie6"]["gps"] / means["pcie3"]["gps"]
    assert gps_gain > means["pcie6"]["um"] / means["pcie3"]["um"]
    # At PCIe 6.0, GPS approaches the infinite-bandwidth limit.
    assert means["pcie6"]["gps"] > 0.8 * means["pcie6"]["infinite"]
    # Infinite bandwidth is (nearly) link-independent.
    assert means["pcie3"]["infinite"] == pytest.approx(
        means["pcie6"]["infinite"], rel=0.02
    )

