#!/usr/bin/env python
"""End-to-end replay throughput: vectorized vs scalar GPS hot path.

For every (workload, gpu-count) cell this driver builds the real program,
stands up a :class:`GPSExecutor` (which allocates every buffer through
``malloc_gps`` under subscribed-by-default all-to-all fan-out), pre-expands
each kernel's SM-coalesced store streams (expansion is memoised and excluded
from the timed region), then times complete replay passes — every kernel's
streams pushed through its GPU's remote write queue, translated by the
GPS-TLB, and routed into the outbound window, followed by the barrier
``sync()`` drain.

Each cell is measured twice on the same machine: with the default vectorized
kernels, and with ``REPRO_SCALAR_REPLAY=1`` forcing the reference scalar
path. The two produce byte-identical traffic (see ``tests/verify``), so the
ratio is a pure speed comparison; the committed ``BENCH_replay.json``
baseline pins that ratio and ``--check`` fails when it regresses >10%.

Usage:
    python benchmarks/bench_replay.py --out BENCH_replay.json
    python benchmarks/bench_replay.py --workloads stencil --gpus 2 \
        --check BENCH_replay.json
"""

from __future__ import annotations

import argparse
import sys

from bench_common import check_speedups, load_report, measure, scoped_env, write_report

DEFAULT_WORKLOADS = ["jacobi", "pagerank", "sssp", "als", "ct", "eqwp", "diffusion", "hit"]
DEFAULT_GPUS = [2, 4, 16]


def build_cell(workload: str, num_gpus: int, scale: float, iterations: int):
    """Executor + pre-expanded replay work list for one matrix cell."""
    from repro.harness.runner.fingerprint import SimJob
    from repro.paradigms.gps import GPSExecutor
    from repro.workloads.registry import get_workload

    job = SimJob(workload=workload, paradigm="gps", num_gpus=num_gpus, scale=scale,
                 iterations=iterations)
    program = get_workload(workload).build(num_gpus, scale=scale, iterations=iterations)
    executor = GPSExecutor(program, job.resolved_config())

    seen = set()
    kernels = []
    for phase in program.phases:
        if phase.iteration < 0:  # setup phases publish nothing
            continue
        for kernel in phase.kernels:
            if kernel not in seen:
                seen.add(kernel)
                kernels.append(kernel)

    work = []  # (gpu, stream, atomic)
    for kernel in kernels:
        for access_fp, stream, atomic in executor.analysis.store_streams(kernel):
            if access_fp.is_sys_scoped or len(stream) == 0:
                continue
            work.append((kernel.gpu, stream, atomic))
    return executor, work


def run_cell(workload: str, num_gpus: int, scale: float, iterations: int,
             min_time: float) -> dict:
    executor, work = build_cell(workload, num_gpus, scale, iterations)
    units = executor.runtime.gps_units
    total_lines = sum(len(stream) for _, stream, _ in work)
    total_bytes = sum(stream.total_bytes for _, stream, _ in work)

    def replay() -> None:
        for gpu, stream, atomic in work:
            units[gpu].process_stores(stream, atomic=atomic)
        for unit in units:
            unit.sync()

    vec_reps, vec_elapsed = measure(replay, min_time=min_time)
    with scoped_env(REPRO_SCALAR_REPLAY="1"):
        scalar_reps, scalar_elapsed = measure(replay, min_time=min_time / 2, max_reps=5)

    vec_lps = total_lines * vec_reps / vec_elapsed
    scalar_lps = total_lines * scalar_reps / scalar_elapsed

    queue_seen = sum(u.write_queue.stats.stores_seen for u in units)
    queue_hits = sum(u.write_queue.stats.coalesced_hits for u in units)
    tlb_hits = sum(u.tlb.stats.hits for u in units)
    tlb_accesses = sum(u.tlb.stats.accesses for u in units)
    from repro.system.analysis import clear_analysis_cache

    clear_analysis_cache()
    return {
        "workload": workload,
        "num_gpus": num_gpus,
        "streams": len(work),
        "lines_per_replay": total_lines,
        "payload_bytes_per_replay": total_bytes,
        "vector_replays_per_s": round(vec_reps / vec_elapsed, 3),
        "vector_lines_per_s": round(vec_lps),
        "scalar_replays_per_s": round(scalar_reps / scalar_elapsed, 3),
        "scalar_lines_per_s": round(scalar_lps),
        "speedup": round(vec_lps / scalar_lps, 2) if scalar_lps else 0.0,
        "write_queue_hit_rate": round(queue_hits / queue_seen, 4) if queue_seen else 0.0,
        "gps_tlb_hit_rate": round(tlb_hits / tlb_accesses, 4) if tlb_accesses else 0.0,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workloads", nargs="+", default=DEFAULT_WORKLOADS)
    parser.add_argument("--gpus", nargs="+", type=int, default=DEFAULT_GPUS)
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--iterations", type=int, default=2)
    parser.add_argument("--min-time", type=float, default=0.4,
                        help="minimum timed seconds per vectorized cell")
    parser.add_argument("--out", default=None, help="write BENCH_replay.json here")
    parser.add_argument("--check", default=None,
                        help="compare against a committed BENCH_replay.json; "
                             "exit 1 on >10%% speedup regression")
    args = parser.parse_args(argv)

    from repro.workloads.registry import resolve_workload_name

    # Normalise aliases (stencil -> jacobi) so --check matches baseline cells.
    args.workloads = [resolve_workload_name(name) for name in args.workloads]

    results = []
    for workload in args.workloads:
        for num_gpus in args.gpus:
            row = run_cell(workload, num_gpus, args.scale, args.iterations, args.min_time)
            results.append(row)
            print(
                f"{workload:>10} x{num_gpus:<3} {row['lines_per_replay']:>9} lines "
                f"vec {row['vector_lines_per_s']:>12,.0f} l/s  "
                f"scalar {row['scalar_lines_per_s']:>11,.0f} l/s  "
                f"speedup {row['speedup']:>6.1f}x  "
                f"wq-hit {row['write_queue_hit_rate']:.2%}"
            )

    speedups = [row["speedup"] for row in results]
    summary = {
        "cells": len(results),
        "min_speedup": min(speedups),
        "median_speedup": sorted(speedups)[len(speedups) // 2],
        "max_speedup": max(speedups),
    }
    print(f"speedup min/median/max: {summary['min_speedup']:.1f}x / "
          f"{summary['median_speedup']:.1f}x / {summary['max_speedup']:.1f}x")

    if args.out:
        config = {
            "workloads": args.workloads,
            "gpus": args.gpus,
            "scale": args.scale,
            "iterations": args.iterations,
            "link": "pcie6",
            "paradigm": "gps",
        }
        write_report(args.out, "replay", results, summary, config)

    if args.check:
        baseline = load_report(args.check)
        print(f"checking against {args.check} (model {baseline['model_version']}):")
        regressions = check_speedups(baseline, results, ("workload", "num_gpus"))
        if regressions:
            print(f"FAIL: {regressions} cell(s) regressed >10% vs baseline")
            return 1
        print("PASS: no speedup regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
