"""Table 1: simulation settings (GV100 + GPS structures)."""

from conftest import run_once

from repro.harness import table1_simulation_settings
from repro.harness.report import format_table
from repro.units import fmt_bytes


def test_table1_simulation_settings(benchmark):
    result = run_once(benchmark, table1_simulation_settings)
    gpu, gps = result["gpu"], result["gps"]
    rows = [
        ["Cache block size", fmt_bytes(gpu["cache_block_bytes"])],
        ["Global memory", fmt_bytes(gpu["global_memory_bytes"])],
        ["Streaming multiprocessors (SM)", gpu["streaming_multiprocessors"]],
        ["CUDA cores/SM", gpu["cuda_cores_per_sm"]],
        ["L2 cache size", fmt_bytes(gpu["l2_cache_bytes"])],
        ["Warp size", gpu["warp_size"]],
        ["Maximum threads per SM", gpu["max_threads_per_sm"]],
        ["Maximum threads per CTA", gpu["max_threads_per_cta"]],
        ["Remote write queue", f"{gps['remote_write_queue_entries']} entries"],
        ["Remote write queue entry size", f"{gps['remote_write_queue_entry_bytes']} bytes"],
        ["TLB", f"{gps['tlb_assoc']}-way set associative"],
        ["TLB size", f"{gps['tlb_entries']} entries"],
        ["Virtual address", f"{gps['virtual_address_bits']} bits"],
        ["Physical address", f"{gps['physical_address_bits']} bits"],
    ]
    print()
    print(format_table(["parameter", "value"], rows, title="Table 1: simulation settings"))

    # Exact Table 1 values.
    assert gpu["cache_block_bytes"] == 128
    assert gpu["global_memory_bytes"] == 16 * 1024**3
    assert gpu["streaming_multiprocessors"] == 80
    assert gpu["cuda_cores_per_sm"] == 64
    assert gpu["l2_cache_bytes"] == 6 * 1024**2
    assert gpu["warp_size"] == 32
    assert gpu["max_threads_per_sm"] == 2048
    assert gpu["max_threads_per_cta"] == 1024
    assert gps["remote_write_queue_entries"] == 512
    assert gps["remote_write_queue_entry_bytes"] == 135
    assert gps["tlb_assoc"] == 8
    assert gps["tlb_entries"] == 32
    assert gps["virtual_address_bits"] == 49
    assert gps["physical_address_bits"] == 47
