"""Table 2: the application suite under study."""

from conftest import run_once

from repro.harness import table2_applications
from repro.harness.report import format_table


def test_table2_applications(benchmark):
    result = run_once(benchmark, table2_applications)
    rows = [[r["name"], r["description"], r["comm_pattern"]] for r in result["rows"]]
    print()
    print(
        format_table(
            ["application", "description", "communication pattern"],
            rows,
            title="Table 2: applications under study",
        )
    )

    by_name = {r["name"]: r for r in result["rows"]}
    assert set(by_name) == {
        "jacobi", "pagerank", "sssp", "als", "ct", "eqwp", "diffusion", "hit",
    }
    assert by_name["als"]["comm_pattern"] == "All-to-all"
    assert by_name["ct"]["comm_pattern"] == "All-to-all"
    assert by_name["sssp"]["comm_pattern"] == "Many-to-many"
    for stencil in ("jacobi", "eqwp", "diffusion", "hit"):
        assert by_name[stencil]["comm_pattern"].lower() == "peer-to-peer"
