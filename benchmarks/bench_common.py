"""Shared plumbing for the ``bench_*.py`` perf drivers.

These are *throughput* benchmarks of the simulator itself (how fast the
replay hot path runs), not the paper-artifact benchmarks in ``test_*.py``
(which regenerate figures). They emit the committed ``BENCH_*.json``
baselines documented in ``docs/BENCH.md`` and power the ``bench`` CI job.

Raw rates are machine-dependent, so the regression gate compares the
*speedup ratio* (vectorized vs scalar, both measured in the same run on the
same machine) against the committed baseline — a machine-independent
quantity up to noise.
"""

from __future__ import annotations

import contextlib
import json
import os
import time


@contextlib.contextmanager
def scoped_env(**values):
    """Set/unset environment variables, restoring the previous state."""
    saved = {name: os.environ.get(name) for name in values}
    try:
        for name, value in values.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


def measure(fn, min_time: float = 0.2, max_reps: int = 1000) -> "tuple[int, float]":
    """Run ``fn`` repeatedly until ``min_time`` seconds elapse.

    Returns ``(reps, best_seconds * reps)`` — i.e. rates derived from it are
    best-of-N, which is far more stable across runs than the mean (scheduler
    preemption and frequency dips only ever make reps slower, never faster).
    One warm-up call runs untimed.
    """
    fn()
    reps = 0
    best = float("inf")
    start = time.perf_counter()
    while True:
        rep_start = time.perf_counter()
        fn()
        rep_end = time.perf_counter()
        best = min(best, rep_end - rep_start)
        reps += 1
        if rep_end - start >= min_time or reps >= max_reps:
            return reps, best * reps


def model_version() -> str:
    from repro import __version__

    return __version__


def write_report(path: str, bench: str, results, summary: dict, config: dict) -> None:
    """Write one ``BENCH_*.json`` file in the documented envelope."""
    payload = {
        "bench": bench,
        "schema_version": 1,
        "model_version": model_version(),
        "config": config,
        "results": results,
        "summary": summary,
    }
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {path}")


def load_report(path: str) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def check_speedups(baseline: dict, fresh_results, key_fields, tolerance: float = 0.10) -> int:
    """Gate: fail if any matching cell's speedup regressed > ``tolerance``.

    Cells are matched on ``key_fields``; cells present in only one side are
    ignored (smoke runs measure a subset of the committed matrix). Returns
    the number of regressions found (0 = pass).
    """
    def cell_key(row):
        return tuple(row[field] for field in key_fields)

    committed = {cell_key(row): row for row in baseline["results"]}
    regressions = 0
    for row in fresh_results:
        base = committed.get(cell_key(row))
        if base is None:
            continue
        floor = base["speedup"] * (1.0 - tolerance)
        status = "ok" if row["speedup"] >= floor else "REGRESSED"
        if status != "ok":
            regressions += 1
        print(
            f"  {cell_key(row)}: speedup {row['speedup']:.1f}x "
            f"(baseline {base['speedup']:.1f}x, floor {floor:.1f}x) {status}"
        )
    return regressions
