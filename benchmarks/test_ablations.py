"""Ablations of GPS design choices called out in DESIGN.md.

Three studies beyond the paper's own figures:

* coalescing on/off — how much interconnect traffic the remote write
  queue's combining saves (isolates the Figure 14 mechanism end-to-end);
* watermark policy — the paper drains at capacity-1 to maximise
  coalescing opportunity; draining eagerly (low watermark) loses hits;
* the EQWP L2 capacity effect — the super-linear scaling mechanism of
  section 7.1 (hit rate rises when the per-GPU working set fits in L2).
"""

import dataclasses

from conftest import run_once

import repro
from repro.config import GPSConfig
from repro.core.write_queue import RemoteWriteQueue
from repro.harness.report import format_table
from repro.harness.runner import run_simulation
from repro.system.analysis import get_analysis


def test_ablation_coalescing(benchmark, bench_scale, bench_iterations):
    """GPS with the write queue's combining disabled moves more data."""

    def run():
        out = {}
        for workload in ("ct", "hit", "eqwp"):
            gps = run_simulation(workload, "gps", 4, scale=bench_scale, iterations=bench_iterations)
            nocoal = run_simulation(
                workload, "gps_nocoalesce", 4, scale=bench_scale, iterations=bench_iterations
            )
            out[workload] = {
                "bytes_ratio": nocoal.interconnect_bytes / gps.interconnect_bytes,
                "time_ratio": nocoal.total_time / gps.total_time,
            }
        return out

    result = run_once(benchmark, run)
    rows = [[w, d["bytes_ratio"], d["time_ratio"]] for w, d in result.items()]
    print()
    print(
        format_table(
            ["app", "traffic x", "time x"],
            rows,
            title="Ablation: GPS without write-queue coalescing",
        )
    )
    for workload, d in result.items():
        assert d["bytes_ratio"] > 1.05, workload
        assert d["time_ratio"] >= 0.999, workload


def test_ablation_watermark(benchmark, bench_scale):
    """Draining eagerly (low watermark) forfeits coalescing opportunity."""

    def run():
        config = repro.default_system(4)
        program = repro.get_workload("ct").build(4, scale=bench_scale, iterations=2)
        analysis = get_analysis(program, config)
        kernels = {k: None for k in program.iter_kernels() if k.gpu == 0}
        out = {}
        for watermark in (32, 128, 511):
            queue = RemoteWriteQueue(
                dataclasses.replace(GPSConfig(), high_watermark=watermark)
            )
            for kernel in kernels:
                for _, stream, atomic in analysis.store_streams(kernel):
                    queue.process_stream(stream.lines, stream.bytes_per_txn, atomic=atomic)
                queue.flush()
            out[watermark] = queue.stats.hit_rate
        return out

    result = run_once(benchmark, run)
    rows = [[w, 100 * r] for w, r in result.items()]
    print()
    print(
        format_table(
            ["watermark", "hit rate %"],
            rows,
            title="Ablation: CT write-queue hit rate vs drain watermark",
        )
    )
    series = [result[w] for w in (32, 128, 511)]
    assert series == sorted(series)
    assert series[-1] > series[0]


def test_ablation_eqwp_l2_capacity(benchmark, bench_scale):
    """EQWP's super-linear scaling comes from the L2 capacity effect.

    The effect requires the single-GPU working set to exceed the 6 MiB L2,
    so this study never scales below 0.7 even when the rest of the suite
    runs reduced.
    """
    scale = max(bench_scale, 0.7)

    def run():
        config = repro.default_system(4)
        out = {}
        for num_gpus in (1, 4):
            program = repro.get_workload("eqwp").build(
                num_gpus, scale=scale, iterations=2
            )
            analysis = get_analysis(program, config.with_num_gpus(num_gpus))
            kernel = program.phases_in_iteration(0)[0].kernels[0]
            out[num_gpus] = analysis.footprint(kernel).l2_hit_rate
        return out

    result = run_once(benchmark, run)
    print()
    print(
        format_table(
            ["GPUs", "warm L2 hit rate %"],
            [[n, 100 * r] for n, r in result.items()],
            title="Ablation: EQWP per-GPU L2 hit rate vs GPU count",
        )
    )
    # Section 7.1: the per-GPU working set shrinks into the L2 at 4 GPUs.
    assert result[4] > result[1] + 0.15
