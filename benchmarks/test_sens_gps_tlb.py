"""Section 7.4: GPS-TLB size sensitivity.

Paper claim: despite general-purpose GPU TLBs needing thousands of entries,
the GPS-TLB hit rate approaches 100% at just 32 entries, because it only
services coalesced remote writes to the GPS heap.
"""

from conftest import run_once

from repro.harness import gps_tlb_sensitivity
from repro.harness.report import format_table


def test_gps_tlb_sensitivity(benchmark, bench_scale):
    result = run_once(benchmark, gps_tlb_sensitivity, scale=bench_scale)
    sizes = result["tlb_sizes"]
    rows = [
        [w] + [100 * result["hit_rate"][w][s] for s in sizes]
        for w in result["workloads"]
    ]
    print()
    print(
        format_table(
            ["app"] + [str(s) for s in sizes],
            rows,
            title="GPS-TLB hit rate (%) vs entries (section 7.4)",
        )
    )
    benchmark.extra_info["hit_rate"] = {
        w: {str(s): result["hit_rate"][w][s] for s in sizes}
        for w in result["workloads"]
    }

    for workload in result["workloads"]:
        rates = result["hit_rate"][workload]
        # Monotonic within measurement tolerance.
        series = [rates[s] for s in sizes]
        assert all(b >= a - 1e-9 for a, b in zip(series, series[1:])), workload
        # The paper's headline: ~100% at just 32 entries. ALS's random
        # atomic scatter spreads drains across more pages than the rest of
        # the suite and saturates one notch later (see EXPERIMENTS.md).
        assert rates[32] > 0.80, workload
        assert rates[64] > 0.95, workload
    coalescing = [w for w in result["workloads"] if w != "als"]
    assert all(result["hit_rate"][w][32] > 0.95 for w in coalescing)
