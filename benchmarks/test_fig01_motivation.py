"""Figure 1: HPC programs strong-scale poorly on today's interconnects.

Paper claim: with naive (bulk-synchronous) partitioning on 4 GV100s,
PCIe 3.0 can be ~30% *slower* than one GPU, projected PCIe 6.0 reaches
~2x, and an infinite interconnect ~3x.
"""

from conftest import run_once

from repro.harness import fig1_motivation
from repro.harness.report import format_table


def test_fig1_motivation(benchmark, bench_scale, bench_iterations):
    result = run_once(
        benchmark, fig1_motivation, scale=bench_scale, iterations=bench_iterations
    )
    rows = [
        [w] + [result["speedups"][w][l] for l in result["interconnects"]]
        for w in result["workloads"]
    ]
    rows.append(["geomean"] + [result["geomean"][l] for l in result["interconnects"]])
    print()
    print(
        format_table(
            ["app", "pcie3", "pcie6", "infinite"],
            rows,
            title="Figure 1: 4-GPU speedup under bulk-synchronous partitioning",
        )
    )
    benchmark.extra_info["geomean"] = result["geomean"]

    assert result["geomean"]["pcie3"] < 1.3, "PCIe 3.0 should barely beat one GPU"
    assert 1.2 < result["geomean"]["pcie6"] < 3.0, "paper: ~2x at projected PCIe 6.0"
    assert result["geomean"]["infinite"] > 2.5, "paper: ~3x with infinite bandwidth"
    assert (
        result["geomean"]["pcie3"]
        < result["geomean"]["pcie6"]
        < result["geomean"]["infinite"]
    )
