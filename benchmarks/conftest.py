"""Benchmark-suite configuration.

Each benchmark regenerates one paper artifact at full scale and prints the
table the paper reports, so ``pytest benchmarks/ --benchmark-only -s``
reproduces the whole evaluation section. Results are deterministic; the
benchmark timer measures how long the simulation itself takes.

Environment knobs (for constrained machines):

* ``REPRO_BENCH_SCALE`` — workload scale factor (default 1.0);
* ``REPRO_BENCH_ITERATIONS`` — iterations per app (default 16);
* ``REPRO_CACHE_DIR`` — persistent simulation-result cache directory
  (default ``.repro-cache/``); repeat benchmark invocations reuse cached
  results across processes;
* ``REPRO_NO_CACHE`` — set to ``1`` to disable the persistent cache and
  re-simulate everything (use this when timing the simulator itself);
* ``REPRO_MAX_WORKERS`` — simulation worker processes for ``run_many``
  fan-out (default: all cores; ``1`` forces serial execution).
"""

from __future__ import annotations

import os

import pytest

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_ITERATIONS = int(os.environ.get("REPRO_BENCH_ITERATIONS", "16"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Workload scale shared by every figure benchmark."""
    return BENCH_SCALE


@pytest.fixture(scope="session")
def bench_iterations() -> int:
    """Iteration count shared by every figure benchmark."""
    return BENCH_ITERATIONS


def run_once(benchmark, fn, *args, **kwargs):
    """Run a deterministic experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
